//! # SLADE — Smart Large-scAle task DEcomposer
//!
//! Umbrella crate re-exporting the full SLADE stack:
//!
//! * [`core`] — the decomposition algorithms (Greedy, OPQ-Based,
//!   OPQ-Extended, the CIP baseline, exact and relaxed solvers).
//! * [`lp`] — the linear-programming substrate used by the baseline.
//! * [`crowd`] — a crowdsourcing-marketplace simulator used to
//!   calibrate task-bin parameters and execute decomposition plans.
//! * [`engine`] — the concurrent, caching decomposition service layer
//!   (worker pool, artifact cache, batched/sharded requests).
//! * [`obs`] — the lock-cheap observability substrate: sharded atomic
//!   metrics, log-bucketed latency histograms, request spans.
//! * [`server`] — the TCP network frontend over the engine: line-delimited
//!   JSON protocol, stateful resubmit sessions, graceful shutdown.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use slade_core as core;
pub use slade_crowd as crowd;
pub use slade_engine as engine;
pub use slade_lp as lp;
pub use slade_obs as obs;
pub use slade_server as server;

pub use slade_core::prelude;
pub use slade_core::prelude::*;
