//! `slade-cli` — drive the SLADE decomposer from the command line.
//!
//! ```text
//! slade-cli solve    [--algorithm NAME] [--tasks N] [--threshold T]
//!                    [--thresholds T1,T2,...] [--bins l:r:c,l:r:c,...]
//! slade-cli simulate [same flags] [--trials K] [--seed S]
//! slade-cli algorithms
//! ```
//!
//! Defaults: the paper's Table-1 bin menu, 4 tasks, threshold 0.95, the
//! OPQ-Based solver — i.e. Example 9 of the paper.

use slade_core::prelude::*;
use slade_crowd::{simulate, SimulationConfig};
use std::process::ExitCode;

const USAGE: &str = "\
slade-cli — SLADE: smart large-scale task decomposition in crowdsourcing

USAGE:
    slade-cli <COMMAND> [OPTIONS]

COMMANDS:
    solve        Decompose a workload and print the plan and its audit
    simulate     Solve, then execute the plan on the marketplace simulator
    algorithms   List available algorithms

OPTIONS:
    --algorithm NAME        Solver to use [default: opq-based]
    --tasks N               Homogeneous workload size [default: 4]
    --threshold T           Homogeneous reliability threshold [default: 0.95]
    --thresholds T1,T2,...  Per-task thresholds (overrides --tasks/--threshold)
    --bins l:r:c,...        Bin menu as cardinality:confidence:cost triples
                            [default: the paper's 1:0.9:0.1,2:0.85:0.18,3:0.8:0.24]
    --trials K              Simulation trials [default: 4000]
    --seed S                Simulation seed [default: 12648430]
    -h, --help              Print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Solve(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug, PartialEq)]
enum CliError {
    /// Bad invocation: exit code 2 plus usage.
    Usage(String),
    /// Well-formed invocation that failed while solving: exit code 1.
    Solve(String),
}

#[derive(Debug)]
struct Options {
    algorithm: Algorithm,
    bins: BinSet,
    workload: Workload,
    trials: u32,
    seed: u64,
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    // `--help` anywhere succeeds with usage, matching CLI convention.
    if args.iter().any(|a| a == "-h" || a == "--help") {
        return Ok(USAGE.to_string());
    }
    match command.as_str() {
        "algorithms" => {
            if let Some(extra) = args.get(1) {
                return Err(CliError::Usage(format!(
                    "`algorithms` takes no arguments, got `{extra}`"
                )));
            }
            Ok(Algorithm::ALL
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "solve" => {
            let opts = parse_options(&args[1..])?;
            let plan = solve(&opts)?;
            Ok(render_plan(&plan, &opts))
        }
        "simulate" => {
            let opts = parse_options(&args[1..])?;
            let plan = solve(&opts)?;
            let config = SimulationConfig {
                trials: opts.trials,
                seed: opts.seed,
                ..SimulationConfig::default()
            };
            let report = simulate(&plan, &opts.workload, &opts.bins, &config)
                .map_err(|e| CliError::Solve(e.to_string()))?;
            let mut out = render_plan(&plan, &opts);
            out.push_str(&format!(
                "\nsimulation: trials = {}, min empirical reliability = {:.4}, \
                 unreliable tasks = {}",
                report.trials, report.min_reliability, report.unreliable_tasks
            ));
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn solve(opts: &Options) -> Result<DecompositionPlan, CliError> {
    opts.algorithm
        .solve(&opts.workload, &opts.bins)
        .map_err(|e| CliError::Solve(e.to_string()))
}

fn render_plan(plan: &DecompositionPlan, opts: &Options) -> String {
    let audit = plan
        .validate(&opts.workload, &opts.bins)
        .expect("solver plans are structurally valid");
    let mut out = format!(
        "algorithm = {}\ntasks = {}\nbins posted = {}\ntotal cost = {:.4}\n\
         feasible = {}\nmin slack = {:.4}",
        plan.algorithm(),
        opts.workload.len(),
        audit.bins_posted,
        audit.total_cost,
        audit.feasible,
        audit.min_slack,
    );
    if !audit.unsatisfied.is_empty() {
        out.push_str(&format!("\nunsatisfied tasks = {:?}", audit.unsatisfied));
    }
    out
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut algorithm = Algorithm::OpqBased;
    let mut tasks: u32 = 4;
    let mut threshold: f64 = 0.95;
    let mut thresholds: Option<Vec<f64>> = None;
    let mut bins: Option<String> = None;
    let mut trials: u32 = 4_000;
    let mut seed: u64 = 0xC0FFEE;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--algorithm" => {
                algorithm = value("--algorithm")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("{e}")))?;
            }
            "--tasks" => {
                tasks = parse_num(&value("--tasks")?, "--tasks")?;
            }
            "--threshold" => {
                threshold = parse_num(&value("--threshold")?, "--threshold")?;
            }
            "--thresholds" => {
                let raw = value("--thresholds")?;
                thresholds = Some(
                    raw.split(',')
                        .map(|s| parse_num(s, "--thresholds"))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--bins" => {
                bins = Some(value("--bins")?);
            }
            "--trials" => {
                trials = parse_num(&value("--trials")?, "--trials")?;
            }
            "--seed" => {
                seed = parse_num(&value("--seed")?, "--seed")?;
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }

    let bins = match bins {
        Some(raw) => parse_bins(&raw)?,
        None => BinSet::paper_example(),
    };
    let workload = match thresholds {
        Some(ts) => Workload::heterogeneous(ts),
        None => Workload::homogeneous(tasks, threshold),
    }
    .map_err(|e| CliError::Usage(e.to_string()))?;

    Ok(Options {
        algorithm,
        bins,
        workload,
        trials,
        seed,
    })
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, CliError> {
    raw.trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse `{raw}`")))
}

/// Parses `l:r:c,l:r:c,...` into a validated bin set.
fn parse_bins(raw: &str) -> Result<BinSet, CliError> {
    let mut triples = Vec::new();
    for part in raw.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        let [l, r, c] = fields.as_slice() else {
            return Err(CliError::Usage(format!(
                "--bins: `{part}` is not a cardinality:confidence:cost triple"
            )));
        };
        triples.push((
            parse_num::<u32>(l, "--bins")?,
            parse_num::<f64>(r, "--bins")?,
            parse_num::<f64>(c, "--bins")?,
        ));
    }
    BinSet::new(triples).map_err(|e| CliError::Usage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn default_solve_reproduces_example9() {
        let out = run(&argv("solve")).unwrap();
        assert!(out.contains("algorithm = OpqBased"), "{out}");
        assert!(out.contains("total cost = 0.6800"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn explicit_flags_are_honored() {
        let out = run(&argv(
            "solve --algorithm greedy --tasks 7 --threshold 0.9 --bins 1:0.8:0.1,4:0.7:0.3",
        ))
        .unwrap();
        assert!(out.contains("algorithm = Greedy"), "{out}");
        assert!(out.contains("tasks = 7"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn heterogeneous_thresholds_flag() {
        let out = run(&argv(
            "solve --algorithm opq-extended --thresholds 0.5,0.6,0.7,0.86",
        ))
        .unwrap();
        assert!(out.contains("tasks = 4"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn simulate_reports_empirical_reliability() {
        let out = run(&argv("simulate --trials 500 --seed 7")).unwrap();
        assert!(out.contains("simulation: trials = 500"), "{out}");
        assert!(out.contains("unreliable tasks = 0"), "{out}");
    }

    #[test]
    fn algorithms_lists_all() {
        let out = run(&argv("algorithms")).unwrap();
        for a in Algorithm::ALL {
            assert!(out.contains(a.name()));
        }
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv("solve --algorithm simplex")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("solve --bins 1:0.9")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("solve --tasks")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solver_failures_use_the_solve_error_path() {
        // OPQ-Based rejects heterogeneous workloads.
        let err = run(&argv(
            "solve --algorithm opq-based --thresholds 0.5,0.9",
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }
}
