//! `slade-cli` — drive the SLADE decomposer from the command line.
//!
//! ```text
//! slade-cli solve    [--algorithm NAME] [--tasks N] [--threshold T]
//!                    [--thresholds T1,T2,...] [--bins l:r:c,l:r:c,...]
//! slade-cli simulate [same flags] [--trials K] [--seed S]
//! slade-cli batch    [--threads N] [--cache N]   (JSONL requests on stdin)
//! slade-cli serve    [--addr HOST:PORT] [--threads N] [--cache N]
//!                    [--max-inflight N] [--scheduler MODE]
//!                    [--cache-impl IMPL] [--trace-log FILE] [--slow-ms N]
//! slade-cli client   --connect HOST:PORT [--pipeline N]
//!                                                 (JSONL requests on stdin)
//! slade-cli top      --connect HOST:PORT [--interval-ms N] [--iterations N]
//! slade-cli algorithms
//! ```
//!
//! Defaults: the paper's Table-1 bin menu, 4 tasks, threshold 0.95, the
//! OPQ-Based solver — i.e. Example 9 of the paper.
//!
//! JSON parsing and printing live in `slade_server::json` (shared with the
//! server's wire protocol), so `batch` lines, `client` requests, and
//! server responses all speak one dialect.

use slade_core::prelude::*;
use slade_crowd::{simulate, SimulationConfig};
use slade_engine::{Engine, EngineConfig, EngineRequest};
use slade_server::json::{member, Json};
use slade_server::{protocol, Client, Server, ServerConfig};
use std::io::Read;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
slade-cli — SLADE: smart large-scale task decomposition in crowdsourcing

USAGE:
    slade-cli <COMMAND> [OPTIONS]

COMMANDS:
    solve        Decompose a workload and print the plan and its audit
    simulate     Solve, then execute the plan on the marketplace simulator
    batch        Solve a stream of JSONL requests from stdin concurrently
    serve        Run the decomposition server (line-delimited JSON over TCP)
    client       Send JSONL requests from stdin to a running server
    top          Live one-screen ops dashboard for a running server
    algorithms   List available algorithms

OPTIONS (solve, simulate):
    --algorithm NAME        Solver to use, case-insensitive [default: opq-based]
    --tasks N               Homogeneous workload size [default: 4]
    --threshold T           Homogeneous reliability threshold [default: 0.95]
    --thresholds T1,T2,...  Per-task thresholds (overrides --tasks/--threshold)
    --bins l:r:c,...        Bin menu as cardinality:confidence:cost triples
                            [default: the paper's 1:0.9:0.1,2:0.85:0.18,3:0.8:0.24]
    --trials K              Simulation trials [default: 4000]
    --seed S                Simulation seed [default: 12648430]
    -h, --help              Print this help

OPTIONS (batch):
    --threads N             Worker threads [default: available parallelism]
    --cache N               Artifact-cache capacity in entries, 0 disables
                            [default: 64]
    --reuse                 Append a final JSON line with artifact-reuse
                            statistics (cache hits/misses/entries)

OPTIONS (serve):
    --addr HOST:PORT        Address to bind [default: 127.0.0.1:7878];
                            port 0 picks an ephemeral port
    --threads N             Engine worker threads [default: available parallelism]
    --cache N               Artifact-cache capacity in entries, 0 disables
                            [default: 64]
    --timeout-secs S        Per-request solve deadline [default: 60]
    --max-inflight N        Cap on seq-tagged (pipelined) requests one
                            session may have in flight; the reader blocks
                            at the cap (TCP backpressure) [default: 32]
    --scheduler MODE        Engine worker scheduler: work-steal (per-worker
                            deques with stealing) or shared-queue (one
                            FIFO, for A/B comparison) [default: work-steal]
    --cache-impl IMPL       Artifact-cache implementation: sharded (lock-free
                            warm hits, single-flight misses) or mutex-lru
                            (one exact-LRU mutex, for A/B comparison)
                            [default: sharded]
    --trace-log FILE        Append every completed traced span (requests
                            sent with \"trace\":true) to FILE as JSON lines
    --slow-ms N             Log any traced request slower than N ms
                            end-to-end to stderr
    --metrics-addr HOST:PORT
                            Also serve Prometheus text metrics over HTTP
                            GET /metrics on this address; port 0 picks an
                            ephemeral port [default: off]
    --journal FILE          Append every stored plan to FILE as JSON lines
                            and replay it at boot, so retained plans (and
                            their resubmit chains) survive a crash or
                            restart [default: off]
    --lease-ttl-secs S      Reclaim a plan lease S seconds after its
                            holder's last touch; 0 expires immediately
                            [default: leases last until session end]

OPTIONS (client):
    --connect HOST:PORT     Server to talk to (required). Requests are read
                            from stdin (one JSON object per line — the same
                            lines `batch` accepts, plus the protocol verbs
                            solve/batch/resubmit/stats/shutdown); responses
                            print one per line in request order.
    --pipeline N            Keep up to N requests in flight on the one
                            connection (tagging them with `seq`); responses
                            still print in request order. stats/shutdown
                            lines act as barriers. [default: off]

OPTIONS (top):
    --connect HOST:PORT     Server to watch (required). Polls the `metrics`
                            and `health` verbs and repaints a one-screen
                            dashboard: status, windowed req/s and latency
                            quantiles per verb, queue/cache/session signals.
    --interval-ms N         Refresh interval in milliseconds [default: 2000]
    --iterations N          Stop after N frames; 0 runs until interrupted
                            (or the server goes away) [default: 0]

Each batch request is one JSON object per line; all fields optional:
    {\"algorithm\": \"opq-extended\", \"tasks\": 1000, \"threshold\": 0.95,
     \"thresholds\": [0.5, 0.9], \"bins\": [[1, 0.9, 0.1]], \"seed\": 7}
One JSON result per request is printed in input order, e.g.
    {\"request\":0,\"algorithm\":\"opq-based\",\"tasks\":1000,
     \"bins_posted\":667,\"cost\":160.1,\"feasible\":true}
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Solve(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug, PartialEq)]
enum CliError {
    /// Bad invocation: exit code 2 plus usage.
    Usage(String),
    /// Well-formed invocation that failed while solving: exit code 1.
    Solve(String),
}

#[derive(Debug)]
struct Options {
    algorithm: Algorithm,
    bins: BinSet,
    workload: Workload,
    trials: u32,
    seed: u64,
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    // `--help` anywhere succeeds with usage, matching CLI convention.
    if args.iter().any(|a| a == "-h" || a == "--help") {
        return Ok(USAGE.to_string());
    }
    match command.as_str() {
        "algorithms" => {
            if let Some(extra) = args.get(1) {
                return Err(CliError::Usage(format!(
                    "`algorithms` takes no arguments, got `{extra}`"
                )));
            }
            Ok(Algorithm::ALL
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "solve" => {
            let opts = parse_options(&args[1..])?;
            let plan = solve(&opts)?;
            Ok(render_plan(&plan, &opts))
        }
        "batch" => {
            // Validate flags before touching stdin, so a bad invocation on a
            // TTY errors immediately instead of blocking for EOF.
            parse_batch_options(&args[1..])?;
            run_batch(&args[1..], &read_stdin()?)
        }
        "serve" => run_serve(&args[1..], &|addr| {
            // Announced up front (run_serve blocks until shutdown), on
            // stderr so stdout stays clean for scripting.
            eprintln!("slade-server listening on {addr}");
        }),
        "client" => {
            parse_client_options(&args[1..])?;
            run_client(&args[1..], &read_stdin()?)
        }
        "top" => run_top(&args[1..]),
        "simulate" => {
            let opts = parse_options(&args[1..])?;
            let plan = solve(&opts)?;
            let config = SimulationConfig {
                trials: opts.trials,
                seed: opts.seed,
                ..SimulationConfig::default()
            };
            let report = simulate(&plan, &opts.workload, &opts.bins, &config)
                .map_err(|e| CliError::Solve(e.to_string()))?;
            let mut out = render_plan(&plan, &opts);
            out.push_str(&format!(
                "\nsimulation: trials = {}, min empirical reliability = {:.4}, \
                 unreliable tasks = {}",
                report.trials, report.min_reliability, report.unreliable_tasks
            ));
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Runs the `batch` subcommand over `input` (stdin, injectable for tests):
/// parse every JSONL request up front (malformed input aborts before any
/// solving), submit them all to a `slade-engine` pool, and print one JSON
/// result line per request in input order. Individual solver failures
/// become `{"request":i,"error":"..."}` lines rather than aborting the
/// stream.
fn run_batch(args: &[String], input: &str) -> Result<String, CliError> {
    let (threads, cache, reuse) = parse_batch_options(args)?;
    let default_bins = Arc::new(BinSet::paper_example());

    let mut requests: Vec<EngineRequest> = Vec::new();
    for (line_index, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        requests.push(parse_request(line_index + 1, line, &default_bins)?);
    }

    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: cache,
        ..EngineConfig::default()
    });
    let handles = engine.submit_batch(requests.iter().cloned());

    let mut out = String::new();
    for (i, (handle, request)) in handles.into_iter().zip(&requests).enumerate() {
        if i > 0 {
            out.push('\n');
        }
        // Result lines assemble from the same summary members (and print
        // through the same serializer) as the server's responses.
        let mut members = vec![member("request", Json::number(i as f64))];
        match handle.wait() {
            Ok(plan) => {
                let audit = plan
                    .validate(&request.workload, &request.bins)
                    .expect("engine plans are structurally valid");
                members.extend(protocol::plan_summary_members(
                    request.algorithm,
                    &request.workload,
                    &audit,
                ));
            }
            Err(e) => members.push(member("error", Json::string(e.to_string()))),
        }
        out.push_str(&Json::Object(members).to_string());
    }
    if reuse {
        // How much instance-independent work the two-phase pipeline shared
        // across the stream: every hit is one prepare step skipped.
        let stats = engine.cache_stats();
        if !requests.is_empty() {
            out.push('\n');
        }
        let line = Json::Object(vec![member(
            "reuse",
            Json::Object(vec![
                member("cache_hits", Json::number(stats.hits as f64)),
                member("cache_misses", Json::number(stats.misses as f64)),
                member("cache_entries", Json::number(stats.entries as f64)),
                member("cache_capacity", Json::number(stats.capacity as f64)),
                member("requests", Json::number(requests.len() as f64)),
            ]),
        )]);
        out.push_str(&line.to_string());
    }
    Ok(out)
}

fn read_stdin() -> Result<String, CliError> {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| CliError::Solve(format!("reading stdin: {e}")))?;
    Ok(input)
}

/// Runs the `serve` subcommand: bind, announce the (possibly ephemeral)
/// address through `announce`, then block in the accept loop until a
/// client sends the `shutdown` verb.
fn run_serve(args: &[String], announce: &dyn Fn(SocketAddr)) -> Result<String, CliError> {
    let config = parse_serve_options(args)?;
    let addr = config.addr.clone();
    let server =
        Server::bind(config).map_err(|e| CliError::Solve(format!("binding {addr}: {e}")))?;
    announce(server.local_addr());
    if let Some(metrics) = server.metrics_local_addr() {
        eprintln!("slade-server metrics on http://{metrics}/metrics");
    }
    server
        .run()
        .map_err(|e| CliError::Solve(format!("server error: {e}")))?;
    Ok("server: drained and shut down cleanly".to_string())
}

fn parse_serve_options(args: &[String]) -> Result<ServerConfig, CliError> {
    let defaults = EngineConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut threads = defaults.threads;
    let mut cache = defaults.cache_capacity;
    let mut timeout_secs: u64 = 60;
    let mut max_inflight = ServerConfig::default().max_inflight;
    let mut scheduler = defaults.scheduler;
    let mut cache_impl = defaults.cache_impl;
    let mut obs = slade_server::ObsOptions::default();
    let mut metrics_addr: Option<String> = None;
    let mut journal: Option<std::path::PathBuf> = None;
    let mut lease_ttl: Option<Duration> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--threads" => {
                threads = parse_num(&value("--threads")?, "--threads")?;
                if threads == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
            }
            "--cache" => cache = parse_num(&value("--cache")?, "--cache")?,
            "--timeout-secs" => {
                timeout_secs = parse_num(&value("--timeout-secs")?, "--timeout-secs")?;
                if timeout_secs == 0 {
                    return Err(CliError::Usage("--timeout-secs must be at least 1".into()));
                }
            }
            "--max-inflight" => {
                max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")?;
                if max_inflight == 0 {
                    return Err(CliError::Usage("--max-inflight must be at least 1".into()));
                }
            }
            "--scheduler" => {
                scheduler = value("--scheduler")?
                    .parse()
                    .map_err(|e: String| CliError::Usage(format!("--scheduler: {e}")))?;
            }
            "--cache-impl" => {
                cache_impl = value("--cache-impl")?
                    .parse()
                    .map_err(|e: String| CliError::Usage(format!("--cache-impl: {e}")))?;
            }
            "--trace-log" => {
                obs.trace_log = Some(std::path::PathBuf::from(value("--trace-log")?));
            }
            "--slow-ms" => {
                obs.slow_ms = Some(parse_num::<u64>(&value("--slow-ms")?, "--slow-ms")?);
            }
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")?),
            "--journal" => {
                journal = Some(std::path::PathBuf::from(value("--journal")?));
            }
            "--lease-ttl-secs" => {
                // 0 is allowed: it expires leases immediately, which is
                // how the recovery tests exercise reclamation.
                lease_ttl = Some(Duration::from_secs(parse_num::<u64>(
                    &value("--lease-ttl-secs")?,
                    "--lease-ttl-secs",
                )?));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{other}` for `serve`"
                )))
            }
        }
    }
    Ok(ServerConfig {
        addr,
        engine: EngineConfig {
            threads,
            cache_capacity: cache,
            scheduler,
            cache_impl,
            ..EngineConfig::default()
        },
        request_timeout: Duration::from_secs(timeout_secs),
        max_inflight,
        obs,
        metrics_addr,
        journal,
        lease_ttl,
        ..ServerConfig::default()
    })
}

fn parse_client_options(args: &[String]) -> Result<(String, Option<usize>), CliError> {
    let mut connect: Option<String> = None;
    let mut pipeline: Option<usize> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--pipeline" => {
                let window: usize = parse_num(&value("--pipeline")?, "--pipeline")?;
                if window == 0 {
                    return Err(CliError::Usage("--pipeline must be at least 1".into()));
                }
                pipeline = Some(window);
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{other}` for `client`"
                )))
            }
        }
    }
    let connect =
        connect.ok_or_else(|| CliError::Usage("`client` needs --connect HOST:PORT".into()))?;
    Ok((connect, pipeline))
}

/// Runs the `client` subcommand over `input` (stdin, injectable for
/// tests): every nonempty line goes to the server, every response line
/// prints in request order — the network twin of `batch`. With
/// `--pipeline N` the lines are seq-tagged and up to N kept in flight on
/// the one connection (the output order is unchanged; each response then
/// carries its echoed `seq`).
fn run_client(args: &[String], input: &str) -> Result<String, CliError> {
    let (addr, pipeline) = parse_client_options(args)?;
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Solve(format!("connecting to {addr}: {e}")))?;
    let lines: Vec<&str> = input
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .collect();
    let responses = match pipeline {
        Some(window) => client
            .pipeline(&lines, window)
            .map_err(|e| CliError::Solve(format!("talking to {addr}: {e}")))?,
        None => {
            let mut responses = Vec::with_capacity(lines.len());
            for line in &lines {
                responses.push(
                    client
                        .roundtrip(line)
                        .map_err(|e| CliError::Solve(format!("talking to {addr}: {e}")))?,
                );
            }
            responses
        }
    };
    Ok(responses.join("\n"))
}

fn parse_top_options(args: &[String]) -> Result<(String, Duration, u64), CliError> {
    let mut connect: Option<String> = None;
    let mut interval = Duration::from_millis(2000);
    let mut iterations: u64 = 0;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--interval-ms" => {
                let ms: u64 = parse_num(&value("--interval-ms")?, "--interval-ms")?;
                if ms == 0 {
                    return Err(CliError::Usage("--interval-ms must be at least 1".into()));
                }
                interval = Duration::from_millis(ms);
            }
            "--iterations" => {
                iterations = parse_num(&value("--iterations")?, "--iterations")?;
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}` for `top`"))),
        }
    }
    let connect =
        connect.ok_or_else(|| CliError::Usage("`top` needs --connect HOST:PORT".into()))?;
    Ok((connect, interval, iterations))
}

/// Runs the `top` subcommand: poll the `metrics` and `health` verbs on one
/// connection and repaint a one-screen dashboard every interval. With
/// `--iterations N` the loop stops after N frames and the final frame is
/// returned (so `--iterations 1` is a scriptable point-in-time snapshot);
/// the default runs until interrupted or the server goes away.
fn run_top(args: &[String]) -> Result<String, CliError> {
    let (addr, interval, iterations) = parse_top_options(args)?;
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Solve(format!("connecting to {addr}: {e}")))?;
    let mut frames: u64 = 0;
    loop {
        let mut poll = |line: &str| -> Result<Json, CliError> {
            let response = client
                .roundtrip(line)
                .map_err(|e| CliError::Solve(format!("talking to {addr}: {e}")))?;
            slade_server::json::parse(&response)
                .map_err(|e| CliError::Solve(format!("unparseable response from {addr}: {e}")))
        };
        let metrics = poll(r#"{"op":"metrics"}"#)?;
        let health = poll(r#"{"op":"health"}"#)?;
        let frame = render_top(&addr, &metrics, &health);
        frames += 1;
        if iterations != 0 && frames >= iterations {
            return Ok(frame);
        }
        // Live repaint: clear the screen, home the cursor, draw. The final
        // frame is printed by `main` when the loop ever ends.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

/// Renders one `top` frame from a `metrics` and a `health` response.
/// Missing members render as zeros/dashes rather than erroring, so a newer
/// CLI degrades gracefully against an older server.
fn render_top(addr: &str, metrics: &Json, health: &Json) -> String {
    let num = |root: &Json, path: &[&str]| -> f64 {
        let mut node = root;
        for key in path {
            match node.get(key) {
                Some(next) => node = next,
                None => return 0.0,
            }
        }
        node.as_f64().unwrap_or(0.0)
    };
    let status = health.get("status").and_then(Json::as_str).unwrap_or("?");
    let version = metrics
        .get("process")
        .and_then(|p| p.get("version"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let mut out = format!(
        "slade top — {addr} · status: {status} · v{version} · up {:.0}s\n",
        num(metrics, &["process", "uptime_seconds"])
    );
    out.push_str(&format!(
        "window {:.0}s: {:.0} req, {:.1} req/s · lifetime errors {:.0}, timeouts {:.0}\n",
        num(metrics, &["window", "seconds"]),
        num(metrics, &["window", "requests"]),
        num(metrics, &["window", "req_per_sec"]),
        num(metrics, &["ops", "errors"]),
        num(metrics, &["ops", "timeouts"]),
    ));
    out.push_str(&format!(
        "engine: queue {:.0}, threads {:.0}, steals {:.0} · cache: {:.0}/{:.0} entries, \
         hit rate {:.2}, evictions {:.0} · sessions {:.0}\n",
        num(metrics, &["engine", "queue_depth"]),
        num(metrics, &["engine", "threads"]),
        num(metrics, &["engine", "steals"]),
        num(metrics, &["cache", "entries"]),
        num(metrics, &["cache", "capacity"]),
        num(metrics, &["cache", "hit_rate"]),
        num(metrics, &["cache", "evictions"]),
        num(metrics, &["sessions", "active"]),
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10}\n",
        "verb", "total", "win", "win p50", "win p90", "win p99"
    ));
    if let Some(latency) = metrics.get("latency").and_then(Json::members) {
        for (verb, stats) in latency {
            let total = num(stats, &["count"]);
            let windowed = num(stats, &["window_count"]);
            if total == 0.0 && windowed == 0.0 {
                continue;
            }
            out.push_str(&format!(
                "{verb:<10} {total:>8.0} {windowed:>8.0} {:>10} {:>10} {:>10}\n",
                fmt_ns(num(stats, &["window_p50_ns"])),
                fmt_ns(num(stats, &["window_p90_ns"])),
                fmt_ns(num(stats, &["window_p99_ns"])),
            ));
        }
    }
    if let Some(signals) = health.get("signals").and_then(Json::members) {
        let line: Vec<String> = signals
            .iter()
            .map(|(name, signal)| {
                let status = signal.get("status").and_then(Json::as_str).unwrap_or("?");
                format!("{name}:{status}")
            })
            .collect();
        out.push_str(&format!("health: {}\n", line.join(" ")));
    }
    if let Some(reasons) = health.get("reasons").and_then(Json::as_array) {
        for reason in reasons.iter().filter_map(Json::as_str) {
            out.push_str(&format!("  ! {reason}\n"));
        }
    }
    out
}

/// Human-scaled duration for the dashboard: ns → µs → ms → s.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn parse_batch_options(args: &[String]) -> Result<(usize, usize, bool), CliError> {
    let defaults = EngineConfig::default();
    let mut threads = defaults.threads;
    let mut cache = defaults.cache_capacity;
    let mut reuse = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--threads" => {
                threads = parse_num(&value("--threads")?, "--threads")?;
                if threads == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
            }
            "--cache" => {
                cache = parse_num(&value("--cache")?, "--cache")?;
            }
            "--reuse" => {
                reuse = true;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{other}` for `batch`"
                )))
            }
        }
    }
    Ok((threads, cache, reuse))
}

/// Parses one JSONL request through the shared protocol parser
/// (`slade_server::protocol` — the same code the server runs). `line_no`
/// is 1-based and names the offending line in every error.
fn parse_request(
    line_no: usize,
    line: &str,
    default_bins: &Arc<BinSet>,
) -> Result<EngineRequest, CliError> {
    let value = slade_server::json::parse(line)
        .map_err(|e| CliError::Usage(format!("line {line_no}: invalid JSON: {e}")))?;
    protocol::parse_engine_request(&value, default_bins, &[])
        .map_err(|e| CliError::Usage(format!("line {line_no}: {e}")))
}

fn solve(opts: &Options) -> Result<DecompositionPlan, CliError> {
    opts.algorithm
        .solve(&opts.workload, &opts.bins)
        .map_err(|e| CliError::Solve(e.to_string()))
}

fn render_plan(plan: &DecompositionPlan, opts: &Options) -> String {
    let audit = plan
        .validate(&opts.workload, &opts.bins)
        .expect("solver plans are structurally valid");
    let mut out = format!(
        "algorithm = {}\ntasks = {}\nbins posted = {}\ntotal cost = {:.4}\n\
         feasible = {}\nmin slack = {:.4}",
        plan.algorithm(),
        opts.workload.len(),
        audit.bins_posted,
        audit.total_cost,
        audit.feasible,
        audit.min_slack,
    );
    if !audit.unsatisfied.is_empty() {
        out.push_str(&format!("\nunsatisfied tasks = {:?}", audit.unsatisfied));
    }
    out
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut algorithm = Algorithm::OpqBased;
    let mut tasks: u32 = 4;
    let mut threshold: f64 = 0.95;
    let mut thresholds: Option<Vec<f64>> = None;
    let mut bins: Option<String> = None;
    let mut trials: u32 = 4_000;
    let mut seed: u64 = 0xC0FFEE;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--algorithm" => {
                algorithm = value("--algorithm")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("{e}")))?;
            }
            "--tasks" => {
                tasks = parse_num(&value("--tasks")?, "--tasks")?;
            }
            "--threshold" => {
                threshold = parse_num(&value("--threshold")?, "--threshold")?;
            }
            "--thresholds" => {
                let raw = value("--thresholds")?;
                thresholds = Some(
                    raw.split(',')
                        .map(|s| parse_num(s, "--thresholds"))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--bins" => {
                bins = Some(value("--bins")?);
            }
            "--trials" => {
                trials = parse_num(&value("--trials")?, "--trials")?;
            }
            "--seed" => {
                seed = parse_num(&value("--seed")?, "--seed")?;
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }

    let bins = match bins {
        Some(raw) => parse_bins(&raw)?,
        None => BinSet::paper_example(),
    };
    let workload = match thresholds {
        Some(ts) => Workload::heterogeneous(ts),
        None => Workload::homogeneous(tasks, threshold),
    }
    .map_err(|e| CliError::Usage(e.to_string()))?;

    Ok(Options {
        algorithm,
        bins,
        workload,
        trials,
        seed,
    })
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, CliError> {
    raw.trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse `{raw}`")))
}

/// Parses `l:r:c,l:r:c,...` into a validated bin set.
fn parse_bins(raw: &str) -> Result<BinSet, CliError> {
    let mut triples = Vec::new();
    for part in raw.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        let [l, r, c] = fields.as_slice() else {
            return Err(CliError::Usage(format!(
                "--bins: `{part}` is not a cardinality:confidence:cost triple"
            )));
        };
        triples.push((
            parse_num::<u32>(l, "--bins")?,
            parse_num::<f64>(r, "--bins")?,
            parse_num::<f64>(c, "--bins")?,
        ));
    }
    BinSet::new(triples).map_err(|e| CliError::Usage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn default_solve_reproduces_example9() {
        let out = run(&argv("solve")).unwrap();
        assert!(out.contains("algorithm = OpqBased"), "{out}");
        assert!(out.contains("total cost = 0.6800"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn explicit_flags_are_honored() {
        let out = run(&argv(
            "solve --algorithm greedy --tasks 7 --threshold 0.9 --bins 1:0.8:0.1,4:0.7:0.3",
        ))
        .unwrap();
        assert!(out.contains("algorithm = Greedy"), "{out}");
        assert!(out.contains("tasks = 7"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn heterogeneous_thresholds_flag() {
        let out = run(&argv(
            "solve --algorithm opq-extended --thresholds 0.5,0.6,0.7,0.86",
        ))
        .unwrap();
        assert!(out.contains("tasks = 4"), "{out}");
        assert!(out.contains("feasible = true"), "{out}");
    }

    #[test]
    fn simulate_reports_empirical_reliability() {
        let out = run(&argv("simulate --trials 500 --seed 7")).unwrap();
        assert!(out.contains("simulation: trials = 500"), "{out}");
        assert!(out.contains("unreliable tasks = 0"), "{out}");
    }

    #[test]
    fn algorithms_lists_all() {
        let out = run(&argv("algorithms")).unwrap();
        for a in Algorithm::ALL {
            assert!(out.contains(a.name()));
        }
    }

    #[test]
    fn algorithm_flag_is_case_insensitive() {
        let out = run(&argv("solve --algorithm GREEDY --tasks 3")).unwrap();
        assert!(out.contains("algorithm = Greedy"), "{out}");
        let out = run(&argv("solve --algorithm Opq_Extended")).unwrap();
        assert!(out.contains("algorithm = OpqExtended"), "{out}");
    }

    #[test]
    fn unknown_algorithm_error_names_flag_and_lists_choices() {
        let err = run(&argv("solve --algorithm simplex")).unwrap_err();
        let CliError::Usage(msg) = err else {
            panic!("expected usage error");
        };
        assert!(msg.contains("`simplex`"), "{msg}");
        for a in Algorithm::ALL {
            assert!(msg.contains(a.name()), "missing {a} in: {msg}");
        }
    }

    #[test]
    fn unknown_flags_are_named() {
        let CliError::Usage(msg) = run(&argv("solve --frobnicate 3")).unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(msg.contains("`--frobnicate`"), "{msg}");
        let CliError::Usage(msg) = run_batch(&argv("--tasks 4"), "").unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(msg.contains("`--tasks`") && msg.contains("batch"), "{msg}");
    }

    #[test]
    fn batch_default_request_reproduces_example9() {
        // The cost prints in shortest-round-trip form — the exact
        // accumulated double (0.24+0.24+0.1+0.1), not a rounded 0.680000:
        // parse(output) gives back the bit-identical value.
        let out = run_batch(&argv("--threads 2"), "{}\n").unwrap();
        assert_eq!(
            out,
            "{\"request\":0,\"algorithm\":\"opq-based\",\"tasks\":4,\
             \"bins_posted\":4,\"cost\":0.6799999999999999,\"feasible\":true}"
        );
    }

    #[test]
    fn batch_mixed_stream_solves_in_input_order() {
        let input = r#"
            {"algorithm": "greedy", "tasks": 7, "threshold": 0.9}
            {"algorithm": "OPQ-EXTENDED", "thresholds": [0.5, 0.6, 0.7, 0.86]}
            {"tasks": 50, "threshold": 0.99, "bins": [[1, 0.8, 0.1], [4, 0.7, 0.3]], "seed": 3}
        "#;
        let out = run_batch(&argv("--threads 3 --cache 8"), input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"request\":0") && lines[0].contains("greedy"),
            "{out}"
        );
        assert!(lines[1].contains("\"request\":1") && lines[1].contains("opq-extended"));
        assert!(lines[2].contains("\"request\":2") && lines[2].contains("\"tasks\":50"));
        for line in &lines {
            assert!(line.contains("\"feasible\":true"), "{line}");
        }
    }

    #[test]
    fn batch_output_is_identical_across_thread_counts() {
        let input = r#"
            {"tasks": 300, "threshold": 0.95}
            {"algorithm": "opq-extended", "thresholds": [0.3, 0.55, 0.72, 0.9, 0.95]}
            {"algorithm": "baseline", "tasks": 25, "threshold": 0.9, "seed": 11}
            {"tasks": 300, "threshold": 0.95}
        "#;
        let one = run_batch(&argv("--threads 1"), input).unwrap();
        let eight = run_batch(&argv("--threads 8"), input).unwrap();
        assert_eq!(one, eight);
    }

    #[test]
    fn batch_solver_failures_become_error_lines() {
        // OPQ-Based rejects heterogeneous workloads; the stream continues.
        let input = "{\"thresholds\": [0.5, 0.9]}\n{\"tasks\": 2}\n";
        let out = run_batch(&argv(""), input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"error\""), "{out}");
        assert!(lines[0].contains("homogeneous"), "{out}");
        assert!(lines[1].contains("\"feasible\":true"), "{out}");
    }

    #[test]
    fn batch_rejects_malformed_input_with_line_numbers() {
        let not_json = run_batch(&argv(""), "{}\n{oops}\n").unwrap_err();
        let CliError::Usage(msg) = not_json else {
            panic!("expected usage error")
        };
        assert!(msg.contains("line 2"), "{msg}");

        let unknown_field = run_batch(&argv(""), "{\"task\": 4}").unwrap_err();
        let CliError::Usage(msg) = unknown_field else {
            panic!("expected usage error")
        };
        assert!(msg.contains("`task`") && msg.contains("line 1"), "{msg}");

        let bad_type = run_batch(&argv(""), "{\"tasks\": \"four\"}").unwrap_err();
        let CliError::Usage(msg) = bad_type else {
            panic!("expected usage error")
        };
        assert!(msg.contains("tasks"), "{msg}");

        let duplicate = run_batch(&argv(""), "{\"tasks\": 5, \"tasks\": 9}").unwrap_err();
        let CliError::Usage(msg) = duplicate else {
            panic!("expected usage error")
        };
        assert!(msg.contains("duplicate"), "{msg}");

        let conflict =
            run_batch(&argv(""), "{\"thresholds\": [0.5, 0.9], \"tasks\": 1000}").unwrap_err();
        let CliError::Usage(msg) = conflict else {
            panic!("expected usage error")
        };
        assert!(
            msg.contains("conflicts") && msg.contains("`tasks`"),
            "{msg}"
        );

        let not_object = run_batch(&argv(""), "[1, 2]").unwrap_err();
        assert!(matches!(not_object, CliError::Usage(_)));
    }

    #[test]
    fn batch_parser_edge_cases_carry_precise_line_numbers() {
        // Overflowing exponent on line 3 of a stream.
        let overflow = "{}\n{\"tasks\": 2}\n{\"threshold\": 1e999}\n";
        let CliError::Usage(msg) = run_batch(&argv(""), overflow).unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(msg.contains("line 3") && msg.contains("overflows"), "{msg}");

        // Pathologically nested bins payload on line 2: a depth error, not
        // a stack overflow.
        let deep = format!(
            "{{}}\n{{\"bins\": {}1{}}}\n",
            "[".repeat(5_000),
            "]".repeat(5_000)
        );
        let CliError::Usage(msg) = run_batch(&argv(""), &deep).unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(
            msg.contains("line 2") && msg.contains("nesting deeper"),
            "{msg}"
        );

        // Lone surrogate in a string on line 1.
        let surrogate = "{\"algorithm\": \"\\ud800\"}\n";
        let CliError::Usage(msg) = run_batch(&argv(""), surrogate).unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(msg.contains("line 1") && msg.contains("surrogate"), "{msg}");

        // Duplicate key at top level on line 2; blank lines do not advance
        // the reported number past the physical line.
        let duplicate = "\n{\"seed\": 1, \"seed\": 2}\n";
        let CliError::Usage(msg) = run_batch(&argv(""), duplicate).unwrap_err() else {
            panic!("expected usage error");
        };
        assert!(msg.contains("line 2") && msg.contains("duplicate"), "{msg}");
    }

    #[test]
    fn batch_reuse_flag_appends_cache_statistics() {
        // Three requests sharing one (BinSet, θ) fingerprint: one miss, the
        // rest hits, all visible in the trailing stats line. One thread, so
        // the stats are deterministic (two workers racing the same cold
        // fingerprint may legitimately both record a miss).
        let input = "{\"tasks\": 10}\n{\"tasks\": 40}\n{\"tasks\": 25}\n";
        let out = run_batch(&argv("--threads 1 --reuse"), input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        let stats = lines[3];
        assert!(stats.contains("\"reuse\""), "{stats}");
        assert!(stats.contains("\"cache_misses\":1"), "{stats}");
        assert!(stats.contains("\"cache_hits\":2"), "{stats}");
        assert!(stats.contains("\"requests\":3"), "{stats}");
        // Without the flag the stream is unchanged.
        let plain = run_batch(&argv("--threads 2"), input).unwrap();
        assert_eq!(plain.lines().count(), 3);
        // An empty stream still reports (empty) stats.
        let empty = run_batch(&argv("--reuse"), "").unwrap();
        assert!(empty.starts_with("{\"reuse\""), "{empty}");
    }

    #[test]
    fn serve_and_client_round_trip_over_a_real_socket() {
        use std::sync::mpsc;
        use std::thread;
        use std::time::Duration;

        // Start the server through the CLI path on an ephemeral port; the
        // announce hook hands the bound address to the test.
        let (tx, rx) = mpsc::channel();
        let serving = thread::spawn(move || {
            run_serve(
                &argv("--addr 127.0.0.1:0 --threads 2 --cache 8"),
                &move |a| {
                    tx.send(a).unwrap();
                },
            )
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server must announce its address");

        // The same JSONL lines `batch` accepts, plus protocol verbs; the
        // shutdown verb also stops the server, so `run_serve` returns.
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            r#"{"tasks": 4, "threshold": 0.95}"#,
            r#"{"op":"solve","id":"w","algorithm":"greedy","tasks":6}"#,
            r#"{"op":"resubmit","id":"w","delta":{"resize":12}}"#,
            r#"{"op":"shutdown"}"#,
        );
        let out = run_client(&argv(&format!("--connect {addr}")), &input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(
            lines[0].contains("\"tasks\":4") && lines[0].contains("\"feasible\":true"),
            "{out}"
        );
        assert!(lines[1].contains("\"id\":\"w\"") && lines[1].contains("greedy"));
        assert!(lines[2].contains("\"tasks\":12"), "{out}");
        assert!(lines[3].contains("\"op\":\"shutdown\""), "{out}");

        let summary = serving.join().unwrap().unwrap();
        assert!(summary.contains("shut down cleanly"), "{summary}");
    }

    #[test]
    fn serve_and_client_pipeline_round_trip_over_a_real_socket() {
        use std::sync::mpsc;
        use std::thread;
        use std::time::Duration;

        let (tx, rx) = mpsc::channel();
        let serving = thread::spawn(move || {
            run_serve(
                &argv("--addr 127.0.0.1:0 --threads 2 --cache 8 --max-inflight 4"),
                &move |a| {
                    tx.send(a).unwrap();
                },
            )
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server must announce its address");

        // Eight pipelined solves, then the shutdown barrier: responses
        // print in request order with their echoed seq tags.
        let mut input = String::new();
        for n in 1..=8u32 {
            input.push_str(&format!("{{\"tasks\":{n},\"threshold\":0.9}}\n"));
        }
        input.push_str("{\"op\":\"shutdown\"}\n");
        let out = run_client(&argv(&format!("--connect {addr} --pipeline 4")), &input).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 9, "{out}");
        for (i, line) in lines[..8].iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i}")), "{i}: {line}");
            assert!(line.contains(&format!("\"tasks\":{}", i + 1)), "{line}");
            assert!(line.contains("\"feasible\":true"), "{line}");
        }
        assert!(lines[8].contains("\"op\":\"shutdown\""), "{out}");

        let summary = serving.join().unwrap().unwrap();
        assert!(summary.contains("shut down cleanly"), "{summary}");
    }

    #[test]
    fn serve_trace_log_round_trip_writes_jsonl_spans() {
        use std::sync::mpsc;
        use std::thread;
        use std::time::Duration;

        let log_path =
            std::env::temp_dir().join(format!("slade-cli-trace-log-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&log_path);

        let (tx, rx) = mpsc::channel();
        let flags = format!(
            "--addr 127.0.0.1:0 --threads 2 --cache 8 --trace-log {}",
            log_path.display()
        );
        let serving = thread::spawn(move || {
            run_serve(&argv(&flags), &move |a| {
                tx.send(a).unwrap();
            })
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server must announce its address");

        let input = concat!(
            "{\"op\":\"solve\",\"tasks\":4,\"threshold\":0.95,\"trace\":true}\n",
            "{\"op\":\"shutdown\"}\n"
        );
        let out = run_client(&argv(&format!("--connect {addr}")), input).unwrap();
        assert!(
            out.contains("\"trace\":1"),
            "trace id must be echoed: {out}"
        );
        serving.join().unwrap().unwrap();

        let log = std::fs::read_to_string(&log_path).expect("trace log must exist");
        let spans: Vec<&str> = log.lines().collect();
        assert_eq!(spans.len(), 1, "one traced request, one JSONL span: {log}");
        let span = slade_server::json::parse(spans[0]).expect("span lines are JSON");
        assert_eq!(span.get("op").and_then(Json::as_str), Some("solve"));
        let events = span
            .get("events")
            .and_then(Json::as_array)
            .expect("span has events");
        let stages: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("stage").and_then(Json::as_str))
            .collect();
        assert!(stages.contains(&"queued"), "{stages:?}");
        assert!(stages.contains(&"written"), "{stages:?}");
        let _ = std::fs::remove_file(&log_path);
    }

    #[test]
    fn serve_and_client_flag_errors_are_usage_errors() {
        for bad in [
            "serve --frobnicate",
            "serve --threads 0",
            "serve --timeout-secs 0",
            "serve --max-inflight 0",
            "serve --scheduler bogus",
            "serve --scheduler",
            "serve --cache-impl bogus",
            "serve --cache-impl",
            "serve --addr",
            "serve --trace-log",
            "serve --slow-ms",
            "serve --slow-ms fast",
            "serve --journal",
            "serve --lease-ttl-secs",
            "serve --lease-ttl-secs x",
            "client",
            "client --port 80",
            "client --connect 127.0.0.1:9 --pipeline 0",
            "client --pipeline",
            "top",
            "top --connect",
            "top --connect 127.0.0.1:9 --interval-ms 0",
            "top --connect 127.0.0.1:9 --interval-ms",
            "top --connect 127.0.0.1:9 --iterations x",
            "top --frobnicate",
        ] {
            assert!(
                matches!(run(&argv(bad)), Err(CliError::Usage(_))),
                "`{bad}` must be a usage error"
            );
        }
        // A client pointed at nothing is a solve-stage failure, not usage.
        let err = run_client(&argv("--connect 127.0.0.1:9"), "{}\n").unwrap_err();
        assert!(matches!(err, CliError::Solve(_)), "{err:?}");
    }

    #[test]
    fn top_renders_a_dashboard_frame_from_canned_responses() {
        let metrics = slade_server::json::parse(
            r#"{"ok":true,"op":"metrics",
                "ops":{"solve":12,"errors":1,"timeouts":0},
                "cache":{"entries":3,"capacity":64,"hit_rate":0.5,"evictions":2},
                "engine":{"queue_depth":1,"threads":4,"steals":9},
                "sessions":{"active":2},
                "latency":{"solve":{"count":12,"window_count":5,
                    "window_p50_ns":1500,"window_p90_ns":2000000,
                    "window_p99_ns":3000000000},
                  "claim":{"count":0,"window_count":0}},
                "window":{"enabled":true,"seconds":60,"requests":5,"req_per_sec":0.25},
                "process":{"uptime_seconds":42,"version":"0.1.0"}}"#,
        )
        .unwrap();
        let health = slade_server::json::parse(
            r#"{"ok":true,"op":"health","status":"degraded",
                "reasons":["queue saturation 0.50 (depth 1 of capacity 2)"],
                "signals":{"queue":{"status":"degraded"},"timeouts":{"status":"ok"},
                           "errors":{"status":"ok"},"cache":{"status":"ok"},
                           "sessions":{"status":"ok"}}}"#,
        )
        .unwrap();
        let frame = render_top("127.0.0.1:7878", &metrics, &health);
        assert!(frame.contains("status: degraded"), "{frame}");
        assert!(frame.contains("v0.1.0"), "{frame}");
        assert!(frame.contains("window 60s: 5 req, 0.2 req/s"), "{frame}");
        assert!(frame.contains("queue 1, threads 4, steals 9"), "{frame}");
        // The per-verb table scales units and hides all-zero verbs.
        assert!(frame.contains("1.5µs"), "{frame}");
        assert!(frame.contains("2.0ms"), "{frame}");
        assert!(frame.contains("3.00s"), "{frame}");
        assert!(!frame.contains("claim"), "{frame}");
        assert!(frame.contains("health: queue:degraded"), "{frame}");
        assert!(frame.contains("! queue saturation 0.50"), "{frame}");
    }

    #[test]
    fn top_snapshots_a_live_server_and_metrics_addr_serves_prometheus() {
        use std::sync::mpsc;
        use std::thread;
        use std::time::Duration;

        let (tx, rx) = mpsc::channel();
        let serving = thread::spawn(move || {
            run_serve(
                &argv("--addr 127.0.0.1:0 --threads 2 --metrics-addr 127.0.0.1:0"),
                &move |a| {
                    tx.send(a).unwrap();
                },
            )
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server must announce its address");

        // Some traffic, then a point-in-time dashboard frame.
        run_client(
            &argv(&format!("--connect {addr}")),
            "{\"tasks\":4,\"threshold\":0.95}\n",
        )
        .unwrap();
        let frame = run_top(&argv(&format!("--connect {addr} --iterations 1"))).unwrap();
        assert!(frame.contains("slade top"), "{frame}");
        assert!(frame.contains("status: ok"), "{frame}");
        assert!(frame.contains("solve"), "{frame}");
        assert!(frame.contains("health: queue:ok"), "{frame}");

        // The ephemeral metrics port is announced on stderr (not capturable
        // here); the HTTP responder itself is pinned by the server's e2e
        // tests. This test verifies the flag threads through `serve` and
        // the server runs and shuts down cleanly with the listener up.
        run_client(
            &argv(&format!("--connect {addr}")),
            "{\"op\":\"shutdown\"}\n",
        )
        .unwrap();
        let summary = serving.join().unwrap().unwrap();
        assert!(summary.contains("shut down cleanly"), "{summary}");
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv("solve --algorithm simplex")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("solve --bins 1:0.9")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("solve --tasks")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solver_failures_use_the_solve_error_path() {
        // OPQ-Based rejects heterogeneous workloads.
        let err = run(&argv("solve --algorithm opq-based --thresholds 0.5,0.9")).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }
}
