//! Kill-and-restart recovery, end to end on the real binary: a `slade
//! serve --journal` process is SIGKILLed mid-resubmit-chain, restarted
//! on the same journal file, and the resumed chain must answer
//! byte-identically to the same chain run uninterrupted on one server.
//! This is the durability contract at its harshest — no flush hook, no
//! drop handler, no clean shutdown runs on SIGKILL; only the journal's
//! already-appended records survive.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const STEP: Duration = Duration::from_secs(20);

/// The resubmit chain under test: link `i` resizes the workload to
/// `4 + i` tasks. `KILL_AFTER` links run on the first process (their
/// responses read back fully, so the kill point is deterministic); the
/// rest run on the restarted one.
const LINKS: u32 = 6;
const KILL_AFTER: u32 = 3;

fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "slade-recovery-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns `slade-cli serve` on an ephemeral port and parses the bound
/// address from its stderr announcement.
fn spawn_server(journal: &PathBuf) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_slade-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--journal",
        ])
        .arg(journal)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning the slade-cli binary");
    let stderr = child.stderr.take().expect("stderr is piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("the server announces before exiting")
            .expect("reading the announcement");
        if let Some(rest) = line.strip_prefix("slade-server listening on ") {
            break rest.trim().parse().expect("announced address parses");
        }
    };
    // Keep stderr drained so the child can never block on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connecting to the spawned server");
    stream.set_read_timeout(Some(STEP)).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("cloning the stream"));
    (stream, reader)
}

/// One strict request/response round trip; asserts success and returns
/// the raw response line for byte-identity comparison.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("writing the request");
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .expect("reading the response");
    assert!(
        response.contains("\"ok\":true"),
        "expected success for {line}, got {response}"
    );
    response.trim_end().to_string()
}

fn solve_line() -> String {
    "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}".to_string()
}

fn link_line(i: u32) -> String {
    // The final link asks for the full plan so the identity check covers
    // every serialized byte, not just the summary.
    let plan = if i == LINKS { ",\"plan\":true" } else { "" };
    format!(
        "{{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{{\"resize\":{}}}{plan}}}",
        4 + i
    )
}

#[test]
fn sigkill_mid_chain_then_restart_resumes_byte_identically() {
    // Control: the whole chain, one process, no interruptions.
    let control_journal = journal_path("control");
    let (mut control, addr) = spawn_server(&control_journal);
    let (mut stream, mut reader) = connect(addr);
    roundtrip(&mut stream, &mut reader, &solve_line());
    let expected: Vec<String> = (1..=LINKS)
        .map(|i| roundtrip(&mut stream, &mut reader, &link_line(i)))
        .collect();
    roundtrip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert!(control.wait().expect("control exits").success());

    // The run under test: SIGKILL once link KILL_AFTER's response is read
    // back — its record is on disk (or in the page cache, which survives
    // a process kill), nothing about the store is in flight.
    let journal = journal_path("killed");
    let (mut first, addr) = spawn_server(&journal);
    let (mut stream, mut reader) = connect(addr);
    roundtrip(&mut stream, &mut reader, &solve_line());
    for i in 1..=KILL_AFTER {
        roundtrip(&mut stream, &mut reader, &link_line(i));
    }
    first.kill().expect("SIGKILL the serving process");
    first.wait().expect("reaping the killed process");

    // Restart on the same journal and run the remaining links. Replayed
    // plans come back unleased, so the resubmit claims implicitly — no
    // `claim` verb, no operator intervention.
    let (mut second, addr) = spawn_server(&journal);
    let (mut stream, mut reader) = connect(addr);
    let resumed: Vec<String> = (KILL_AFTER + 1..=LINKS)
        .map(|i| roundtrip(&mut stream, &mut reader, &link_line(i)))
        .collect();
    assert_eq!(
        resumed,
        expected[KILL_AFTER as usize..],
        "the resumed chain must answer byte-identically to the uninterrupted run"
    );
    roundtrip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert!(second.wait().expect("second server exits").success());

    let _ = std::fs::remove_file(control_journal);
    let _ = std::fs::remove_file(journal);
}
