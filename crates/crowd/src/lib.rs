//! # slade-crowd — a minimal crowdsourcing-marketplace simulator
//!
//! The SLADE optimizer treats a task bin `<l, r_l, c_l>` as an abstraction:
//! post it, pay `c_l`, and each contained task is answered correctly with
//! probability `r_l`. This crate closes the loop by *executing* a
//! [`DecompositionPlan`] against a simulated marketplace:
//!
//! * [`simulate`] runs Monte-Carlo trials of a plan and reports the
//!   empirical per-task reliability — the ground-truth check that a feasible
//!   plan's `1 - Π(1 - r)` math actually delivers the promised rates;
//! * [`estimate_confidence`] / [`calibrate`] go the other way, rebuilding a
//!   [`BinSet`] from observed answer outcomes the way a deployment would
//!   calibrate bin parameters from marketplace probes.
//!
//! Everything is deterministic under a caller-supplied seed.
//!
//! ```
//! use slade_core::prelude::*;
//! use slade_crowd::{simulate, SimulationConfig};
//!
//! let bins = BinSet::paper_example();
//! let workload = Workload::homogeneous(4, 0.95).unwrap();
//! let plan = OpqBased::default().solve(&workload, &bins).unwrap();
//!
//! let report = simulate(&plan, &workload, &bins, &SimulationConfig::default()).unwrap();
//! // A feasible plan's worst task still clears ~0.95 empirically.
//! assert!(report.min_reliability > 0.90);
//! assert_eq!(report.unreliable_tasks, 0);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slade_core::bin_set::BinSet;
use slade_core::error::SladeError;
use slade_core::plan::DecompositionPlan;
use slade_core::task::Workload;

/// Monte-Carlo settings for [`simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Number of independent marketplace trials.
    pub trials: u32,
    /// RNG seed; identical seeds reproduce identical reports.
    pub seed: u64,
    /// Slack subtracted from each threshold before counting a task as
    /// unreliable, absorbing Monte-Carlo noise, in thousandths. With
    /// `trials` samples the empirical rate has standard error
    /// `≈ 0.5/√trials`; the default pairs 4 000 trials with a 0.03 margin
    /// (≈ 3.8σ).
    pub tolerance_millis: u32,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            trials: 4_000,
            seed: 0xC0FFEE,
            tolerance_millis: 30,
        }
    }
}

/// The outcome of executing a plan against the simulated marketplace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Trials executed.
    pub trials: u32,
    /// Empirical per-task reliability (fraction of trials in which at least
    /// one covering bin answered the task correctly), indexed by task id.
    pub empirical_reliability: Vec<f64>,
    /// Smallest entry of [`SimulationReport::empirical_reliability`].
    pub min_reliability: f64,
    /// Tasks whose empirical reliability fell short of threshold minus the
    /// configured tolerance.
    pub unreliable_tasks: u32,
    /// Cost paid per trial — identical to the plan's total cost.
    pub total_cost: f64,
}

/// Executes `plan` against the simulated marketplace; see the module docs.
///
/// The plan is structurally validated first, so the same
/// [`SladeError::InvalidPlan`] conditions as
/// [`DecompositionPlan::validate`] apply. Infeasible-but-well-formed plans
/// simulate fine — the report simply shows the shortfall.
pub fn simulate(
    plan: &DecompositionPlan,
    workload: &Workload,
    bins: &BinSet,
    config: &SimulationConfig,
) -> Result<SimulationReport, SladeError> {
    plan.validate(workload, bins)?;
    if config.trials == 0 {
        return Err(SladeError::InvalidWorkload(
            "simulation needs at least one trial".into(),
        ));
    }

    let n = workload.len() as usize;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut successes = vec![0u32; n];
    let mut answered = vec![false; n];
    for _ in 0..config.trials {
        answered.fill(false);
        for posted in plan.bins() {
            let confidence = bins
                .get(posted.cardinality())
                .expect("validated plan references known bins")
                .confidence();
            for &t in posted.tasks() {
                if !answered[t as usize] && rng.random_bool(confidence) {
                    answered[t as usize] = true;
                }
            }
        }
        for (s, &hit) in successes.iter_mut().zip(&answered) {
            *s += u32::from(hit);
        }
    }

    let empirical: Vec<f64> = successes
        .iter()
        .map(|&s| f64::from(s) / f64::from(config.trials))
        .collect();
    let tolerance = f64::from(config.tolerance_millis) / 1_000.0;
    let unreliable = (0..n)
        .filter(|&i| empirical[i] < workload.threshold(i as u32) - tolerance)
        .count() as u32;
    let min_reliability = empirical.iter().copied().fold(f64::INFINITY, f64::min);

    Ok(SimulationReport {
        trials: config.trials,
        empirical_reliability: empirical,
        min_reliability,
        unreliable_tasks: unreliable,
        total_cost: plan.total_cost(),
    })
}

/// Laplace-smoothed confidence estimate from `correct` answers in `total`
/// probes: `(correct + 1) / (total + 2)`, which always lands strictly inside
/// `(0, 1)` as [`slade_core::bin_set::TaskBin`] requires. Returns `None` when
/// `total == 0` or `correct > total`.
pub fn estimate_confidence(correct: u64, total: u64) -> Option<f64> {
    if total == 0 || correct > total {
        return None;
    }
    Some((correct as f64 + 1.0) / (total as f64 + 2.0))
}

/// One bin type's marketplace probe statistics, input to [`calibrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinProbe {
    /// Bin cardinality being probed.
    pub cardinality: u32,
    /// Correct answers observed across probes.
    pub correct: u64,
    /// Total probe answers observed.
    pub total: u64,
    /// Posting cost in milli-units (costs are exact, not estimated).
    pub cost_millis: u64,
}

/// Builds a calibrated [`BinSet`] from probe statistics, the way a
/// deployment bootstraps its bin menu from a sampling phase. Probes with no
/// observations fall back to a 0.5 confidence prior.
pub fn calibrate(probes: &[BinProbe]) -> Result<BinSet, SladeError> {
    BinSet::new(probes.iter().map(|p| {
        let confidence = estimate_confidence(p.correct, p.total).unwrap_or(0.5);
        (p.cardinality, confidence, p.cost_millis as f64 / 1_000.0)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_core::prelude::*;

    fn example9() -> (Workload, BinSet, DecompositionPlan) {
        let bins = BinSet::paper_example();
        let workload = Workload::homogeneous(4, 0.95).unwrap();
        let plan = OpqBased::default().solve(&workload, &bins).unwrap();
        (workload, bins, plan)
    }

    #[test]
    fn feasible_plans_deliver_their_thresholds_empirically() {
        let (w, b, plan) = example9();
        let report = simulate(&plan, &w, &b, &SimulationConfig::default()).unwrap();
        assert_eq!(report.unreliable_tasks, 0);
        assert!(report.min_reliability > 0.90);
        assert!((report.total_cost - 0.68).abs() < 1e-9);
        assert_eq!(report.empirical_reliability.len(), 4);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (w, b, plan) = example9();
        let a = simulate(&plan, &w, &b, &SimulationConfig::default()).unwrap();
        let c = simulate(&plan, &w, &b, &SimulationConfig::default()).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn under_covered_plan_is_reported_unreliable() {
        let b = BinSet::paper_example();
        let w = Workload::homogeneous(2, 0.95).unwrap();
        // One b1 per task: reliability 0.90 < 0.95 - 0.03.
        let mut plan = DecompositionPlan::empty("hand");
        plan.push(b.get(1).unwrap(), vec![0]);
        plan.push(b.get(1).unwrap(), vec![1]);
        let report = simulate(&plan, &w, &b, &SimulationConfig::default()).unwrap();
        assert_eq!(report.unreliable_tasks, 2);
        assert!(report.min_reliability < 0.95);
    }

    #[test]
    fn empirical_rates_track_the_analytic_reliability() {
        let b = BinSet::paper_example();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        let plan = Greedy.solve(&w, &b).unwrap();
        let audit = plan.validate(&w, &b).unwrap();
        assert!(audit.feasible);
        let config = SimulationConfig {
            trials: 20_000,
            ..SimulationConfig::default()
        };
        let report = simulate(&plan, &w, &b, &config).unwrap();
        // Every empirical rate within 2% of satisfying its threshold band.
        for (i, &rate) in report.empirical_reliability.iter().enumerate() {
            assert!(rate >= 0.8 - 0.02, "task {i}: {rate}");
        }
    }

    #[test]
    fn structural_errors_propagate() {
        let b = BinSet::paper_example();
        let w = Workload::homogeneous(2, 0.9).unwrap();
        let mut plan = DecompositionPlan::empty("hand");
        plan.push(b.get(1).unwrap(), vec![7]); // out of range
        assert!(matches!(
            simulate(&plan, &w, &b, &SimulationConfig::default()),
            Err(SladeError::InvalidPlan(_))
        ));
    }

    #[test]
    fn zero_trials_is_rejected() {
        let (w, b, plan) = example9();
        let config = SimulationConfig {
            trials: 0,
            ..SimulationConfig::default()
        };
        assert!(simulate(&plan, &w, &b, &config).is_err());
    }

    #[test]
    fn confidence_estimates_stay_in_open_interval() {
        assert_eq!(estimate_confidence(0, 0), None);
        assert_eq!(estimate_confidence(5, 4), None);
        let all_wrong = estimate_confidence(0, 1_000).unwrap();
        let all_right = estimate_confidence(1_000, 1_000).unwrap();
        assert!(all_wrong > 0.0);
        assert!(all_right < 1.0);
        assert!((estimate_confidence(9, 10).unwrap() - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_round_trips_through_the_solvers() {
        let probes = [
            BinProbe {
                cardinality: 1,
                correct: 900,
                total: 1_000,
                cost_millis: 100,
            },
            BinProbe {
                cardinality: 2,
                correct: 850,
                total: 1_000,
                cost_millis: 180,
            },
            BinProbe {
                cardinality: 3,
                correct: 800,
                total: 1_000,
                cost_millis: 240,
            },
        ];
        let bins = calibrate(&probes).unwrap();
        assert_eq!(bins.len(), 3);
        // Estimates land within smoothing distance of the true rates.
        assert!((bins.get(1).unwrap().confidence() - 0.9).abs() < 0.01);
        let w = Workload::homogeneous(5, 0.95).unwrap();
        let plan = OpqBased::default().solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn calibration_rejects_duplicate_cardinalities() {
        let probes = [
            BinProbe {
                cardinality: 2,
                correct: 1,
                total: 2,
                cost_millis: 100,
            },
            BinProbe {
                cardinality: 2,
                correct: 1,
                total: 2,
                cost_millis: 200,
            },
        ];
        assert!(calibrate(&probes).is_err());
    }
}
