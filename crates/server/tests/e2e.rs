//! End-to-end tests over a real loopback socket, pinning the server's two
//! core contracts:
//!
//! 1. a session's over-the-wire `solve → resubmit → resubmit` chain
//!    returns a plan **byte-identical** to a cold in-process solve of the
//!    final workload;
//! 2. malformed requests get structured error responses and never cost
//!    the connection.
//!
//! Every blocking step is bounded — client reads carry timeouts and the
//! server thread is joined through `recv_timeout` — so a hung accept loop
//! or a wedged session fails the test instead of stalling it.

use slade_core::prelude::*;
use slade_engine::{Engine, EngineConfig, EngineRequest};
use slade_server::json::Json;
use slade_server::{protocol, Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 3,
        cache_capacity: 32,
        ..EngineConfig::default()
    }
}

/// Starts a server on an ephemeral port; returns its address, a shutdown
/// handle, and the channel `run()`'s result lands on.
fn start_server() -> (
    SocketAddr,
    slade_server::ShutdownHandle,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: engine_config(),
        request_timeout: STEP,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, shutdown, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

/// Sends `line`, expects an `ok: true` response, and returns it parsed.
fn ok_roundtrip(client: &mut Client, line: &str) -> Json {
    let response = client.roundtrip(line).expect("protocol round trip");
    let value = slade_server::json::parse(&response).expect("responses are valid JSON");
    assert_eq!(
        value.get("ok"),
        Some(&Json::Bool(true)),
        "expected success for {line}, got {response}"
    );
    value
}

fn field_f64(value: &Json, key: &str) -> f64 {
    value
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {value}"))
}

/// Joins the server thread with a deadline and asserts a clean exit.
fn expect_clean_exit(done: &mpsc::Receiver<std::io::Result<()>>) {
    done.recv_timeout(STEP)
        .expect("server must shut down within the deadline")
        .expect("server run() must exit cleanly");
}

#[test]
fn wire_resubmit_chain_is_byte_identical_to_cold_solve_of_final_workload() {
    let (addr, _shutdown, done) = start_server();
    let mut client = connect(addr);

    // Four well-separated threshold levels (same shape the engine's own
    // reuse tests pin): θ_max stays put across the deltas below, so
    // untouched buckets must be reused rather than recomputed.
    let solve = ok_roundtrip(
        &mut client,
        concat!(
            r#"{"op":"solve","id":"w","algorithm":"opq-extended","#,
            r#""thresholds":[0.95,0.95,0.72,0.72,0.3,0.3,0.11,0.11]}"#
        ),
    );
    assert_eq!(field_f64(&solve, "tasks"), 8.0);
    assert_eq!(field_f64(&solve, "reused_shards"), 0.0);
    assert!(field_f64(&solve, "shards") >= 3.0, "{solve}");

    // Grow one bucket in place; the others ride along untouched.
    let appended = ok_roundtrip(
        &mut client,
        r#"{"op":"resubmit","id":"w","delta":{"append":[0.3]}}"#,
    );
    assert_eq!(field_f64(&appended, "tasks"), 9.0);
    assert!(
        field_f64(&appended, "reused_shards") >= 1.0,
        "append must reuse untouched buckets over the wire: {appended}"
    );

    // Move a task between the two bottom buckets and fetch the full plan.
    let retargeted = ok_roundtrip(
        &mut client,
        r#"{"op":"resubmit","id":"w","delta":{"set_thresholds":[[6,0.3]]},"plan":true}"#,
    );
    assert!(
        field_f64(&retargeted, "reused_shards") >= 1.0,
        "{retargeted}"
    );
    let wire_plan = retargeted.get("plan").expect("plan requested").clone();

    // Cold in-process solve of the final workload on a fresh engine.
    let final_thresholds = vec![0.95, 0.95, 0.72, 0.72, 0.3, 0.3, 0.3, 0.11, 0.3];
    let engine = Engine::new(engine_config());
    let cold = engine
        .solve_resolved(EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(final_thresholds).unwrap(),
            Arc::new(BinSet::paper_example()),
        ))
        .unwrap();
    let cold_json = protocol::plan_to_json(cold.plan());

    // Identical as JSON values AND as serialized bytes: the wire format
    // round-trips floats exactly, so this is the full byte-identity pin.
    assert_eq!(wire_plan, cold_json);
    assert_eq!(wire_plan.to_string(), cold_json.to_string());

    ok_roundtrip(&mut client, r#"{"op":"shutdown"}"#);
    expect_clean_exit(&done);
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let (addr, shutdown, done) = start_server();
    let mut client = connect(addr);

    let cases = [
        ("{not json", "invalid JSON"),
        (r#"{"op":"frobnicate"}"#, "unknown op `frobnicate`"),
        (r#"{"op":"solve","frob":1}"#, "unknown field `frob`"),
        (
            r#"{"op":"resubmit","id":"ghost","delta":{"resize":10}}"#,
            "unknown plan id `ghost`",
        ),
        // Well-formed but unsolvable: OPQ-Based rejects heterogeneous
        // workloads; the solver error comes back structured too.
        (r#"{"thresholds":[0.5,0.9]}"#, "homogeneous"),
    ];
    for (line, needle) in cases {
        let response = client.roundtrip(line).expect("connection must survive");
        let value = slade_server::json::parse(&response).expect("errors are valid JSON");
        assert_eq!(value.get("ok"), Some(&Json::Bool(false)), "{response}");
        let error = value.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(needle), "{line} → {error}");
    }

    // After all that abuse the same connection still solves.
    let solved = ok_roundtrip(&mut client, "{}");
    assert_eq!(field_f64(&solved, "tasks"), 4.0);
    assert_eq!(solved.get("feasible"), Some(&Json::Bool(true)), "{solved}");

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn batch_and_stats_verbs_work_over_the_wire() {
    let (addr, shutdown, done) = start_server();
    let mut client = connect(addr);

    let batch = ok_roundtrip(
        &mut client,
        concat!(
            r#"{"op":"batch","requests":[{"tasks":30,"threshold":0.95},"#,
            r#"{"algorithm":"greedy","tasks":7,"threshold":0.9},"#,
            r#"{"tasks":30,"threshold":0.95}]}"#
        ),
    );
    let results = batch.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 3);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(field_f64(result, "request") as usize, i);
        assert_eq!(result.get("feasible"), Some(&Json::Bool(true)), "{result}");
    }
    // A sequential replay of request 0's fingerprint after the batch has
    // fully drained must hit the artifact cache (batch-internal repeats
    // may legitimately race the same cold key instead).
    ok_roundtrip(&mut client, r#"{"tasks":30,"threshold":0.95}"#);
    let stats = ok_roundtrip(&mut client, r#"{"op":"stats"}"#);
    let cache = stats.get("cache").unwrap();
    assert!(field_f64(cache, "hits") >= 1.0, "{stats}");
    let ops = stats.get("ops").unwrap();
    assert_eq!(field_f64(ops, "batch"), 1.0);
    assert_eq!(field_f64(ops, "solve"), 1.0);
    assert_eq!(field_f64(ops, "stats"), 1.0, "stats counts itself");
    let algorithms = stats.get("algorithms").unwrap();
    assert_eq!(field_f64(algorithms, "opq-based"), 3.0);
    assert_eq!(field_f64(algorithms, "greedy"), 1.0);

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn plan_ids_are_shared_but_leased_to_their_producing_session() {
    let (addr, shutdown, done) = start_server();
    let mut alice = connect(addr);
    let mut bob = connect(addr);

    ok_roundtrip(&mut alice, r#"{"op":"solve","id":"w","tasks":10}"#);
    // The plan lives in the server-wide store, but producing it leased the
    // id to Alice: Bob's resubmit is a structured lease conflict, never a
    // race on Alice's retained state.
    let response = bob
        .roundtrip(r#"{"op":"resubmit","id":"w","delta":{"resize":20}}"#)
        .unwrap();
    assert!(
        response.contains("\"ok\":false")
            && response.contains("\"code\":\"lease_conflict\"")
            && response.contains("is leased by session"),
        "{response}"
    );
    // Alice still can.
    let grown = ok_roundtrip(
        &mut alice,
        r#"{"op":"resubmit","id":"w","delta":{"resize":20}}"#,
    );
    assert_eq!(field_f64(&grown, "tasks"), 20.0);

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn shutdown_handle_unblocks_an_idle_accept_loop() {
    let (_addr, shutdown, done) = start_server();
    // No client ever connects; the handle alone must stop the server.
    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn in_band_shutdown_drains_other_connected_sessions() {
    let (addr, _shutdown, done) = start_server();
    let mut worker = connect(addr);
    ok_roundtrip(&mut worker, r#"{"op":"solve","id":"w","tasks":50}"#);

    let mut admin = connect(addr);
    ok_roundtrip(&mut admin, r#"{"op":"shutdown"}"#);
    expect_clean_exit(&done);
}
