//! End-to-end tests of the cross-session plan store (DESIGN seam #12)
//! over real loopback sockets:
//!
//! 1. **cross-session resubmit** — a plan produced on connection A,
//!    released, claimed by connection B, and resubmitted there returns a
//!    plan **byte-identical** to a cold in-process solve of the final
//!    workload;
//! 2. **structured conflicts** — touching a plan leased by another session
//!    is a `lease_conflict`, touching one whose producer is still in
//!    flight (on *another* connection) is a `pending_producer`, and both
//!    carry machine-readable `code` members, never races;
//! 3. **session teardown** — dropping a connection releases its leases
//!    (the plans survive), so another session can claim its ids.
//!
//! Fault injection reuses the pipeline suite's middleware: a sentinel
//! request (`greedy` with exactly 13 tasks) is wrapped with a slow solver.

use slade_core::bin_set::BinSet;
use slade_core::plan::DecompositionPlan;
use slade_core::solver::{Algorithm, DecompositionSolver, PreparedSolver};
use slade_core::task::Workload;
use slade_core::SladeError;
use slade_engine::{Engine, EngineConfig, EngineRequest};
use slade_server::json::{self, Json};
use slade_server::{protocol, Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

#[derive(Debug)]
struct SlowSolver {
    delay: Duration,
}

impl DecompositionSolver for SlowSolver {
    fn name(&self) -> &'static str {
        "SlowGreedy"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        thread::sleep(self.delay);
        slade_core::greedy::Greedy.solve(workload, bins)
    }
}

impl PreparedSolver for SlowSolver {}

fn slow_sentinel_middleware(delay: Duration) -> slade_server::RequestMiddleware {
    Arc::new(move |request: EngineRequest| {
        if request.algorithm == Algorithm::Greedy && request.workload.len() == 13 {
            request.with_solver(Arc::new(SlowSolver { delay }))
        } else {
            request
        }
    })
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 3,
            cache_capacity: 32,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        ..ServerConfig::default()
    }
}

fn start_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    slade_server::ShutdownHandle,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, shutdown, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

fn ok_roundtrip(client: &mut Client, line: &str) -> Json {
    let response = client.roundtrip(line).expect("protocol round trip");
    let value = json::parse(&response).expect("responses are valid JSON");
    assert_eq!(
        value.get("ok"),
        Some(&Json::Bool(true)),
        "expected success for {line}, got {response}"
    );
    value
}

/// Asserts an `ok:false` response carrying the given `code`, returning the
/// `error` message.
fn expect_code(client: &mut Client, line: &str, code: &str) -> String {
    let response = client.roundtrip(line).expect("protocol round trip");
    let value = json::parse(&response).expect("errors are valid JSON");
    assert_eq!(value.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert_eq!(
        value.get("code").and_then(Json::as_str),
        Some(code),
        "expected code `{code}`: {response}"
    );
    value
        .get("error")
        .and_then(Json::as_str)
        .expect("coded errors carry a message")
        .to_string()
}

fn expect_clean_exit(done: &mpsc::Receiver<std::io::Result<()>>) {
    done.recv_timeout(STEP)
        .expect("server must shut down within the deadline")
        .expect("server run() must exit cleanly");
}

#[test]
fn released_plan_resubmitted_from_another_session_equals_cold_solve() {
    let (addr, shutdown, done) = start_server(test_config());
    let mut alice = connect(addr);
    let mut bob = connect(addr);

    // Alice produces the plan; the id now lives in the server-wide store,
    // leased to her.
    ok_roundtrip(
        &mut alice,
        concat!(
            r#"{"op":"solve","id":"w","algorithm":"opq-extended","#,
            r#""thresholds":[0.95,0.95,0.72,0.72,0.3,0.3,0.11,0.11]}"#
        ),
    );
    // Explicit hand-over: Alice releases, Bob claims. Both report the
    // acting session so a client can log who holds what.
    let released = ok_roundtrip(&mut alice, r#"{"op":"release","id":"w"}"#);
    assert_eq!(released.get("op"), Some(&Json::string("release")));
    let claimed = ok_roundtrip(&mut bob, r#"{"op":"claim","id":"w"}"#);
    assert_eq!(claimed.get("id"), Some(&Json::string("w")));
    assert!(claimed.get("session").is_some(), "{claimed}");

    // Bob evolves the plan he never produced.
    let retargeted = ok_roundtrip(
        &mut bob,
        r#"{"op":"resubmit","id":"w","delta":{"set_thresholds":[[6,0.3]]},"plan":true}"#,
    );
    assert!(
        retargeted
            .get("reused_shards")
            .and_then(Json::as_f64)
            .unwrap()
            >= 1.0,
        "cross-session resubmit must reuse Alice's untouched shards: {retargeted}"
    );
    let wire_plan = retargeted.get("plan").expect("plan requested").clone();

    // Byte-identity against a cold in-process solve of the final workload.
    let final_thresholds = vec![0.95, 0.95, 0.72, 0.72, 0.3, 0.3, 0.3, 0.11];
    let engine = Engine::new(test_config().engine);
    let cold = engine
        .solve_resolved(EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(final_thresholds).unwrap(),
            Arc::new(BinSet::paper_example()),
        ))
        .unwrap();
    let cold_json = protocol::plan_to_json(cold.plan());
    assert_eq!(wire_plan, cold_json);
    assert_eq!(wire_plan.to_string(), cold_json.to_string());

    // And now the lease is Bob's: Alice gets the conflict.
    expect_code(
        &mut alice,
        r#"{"op":"resubmit","id":"w","delta":{"resize":9}}"#,
        "lease_conflict",
    );

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn lease_and_pending_conflicts_are_coded_errors_across_sessions() {
    let mut config = test_config();
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_secs(2)));
    let (addr, shutdown, done) = start_server(config);
    let mut alice = connect(addr);
    let mut bob = connect(addr);

    ok_roundtrip(&mut alice, r#"{"op":"solve","id":"w","tasks":10}"#);

    // Every verb that would move or evolve Alice's id from Bob's session is
    // the same typed conflict.
    for line in [
        r#"{"op":"resubmit","id":"w","delta":{"resize":20}}"#,
        r#"{"op":"claim","id":"w"}"#,
        r#"{"op":"release","id":"w"}"#,
    ] {
        let message = expect_code(&mut bob, line, "lease_conflict");
        assert!(
            message.contains("is leased by session"),
            "{line}: {message}"
        );
    }
    // Unknown ids name themselves and the store's population.
    let message = expect_code(&mut bob, r#"{"op":"claim","id":"ghost"}"#, "unknown_plan");
    assert!(message.contains("unknown plan id `ghost`"), "{message}");

    // Lease moves are idempotent for their holder: claiming a held id and
    // releasing an unleased one both succeed.
    ok_roundtrip(&mut alice, r#"{"op":"claim","id":"w"}"#);
    ok_roundtrip(&mut alice, r#"{"op":"release","id":"w"}"#);
    ok_roundtrip(&mut alice, r#"{"op":"release","id":"w"}"#);
    ok_roundtrip(&mut alice, r#"{"op":"claim","id":"w"}"#);

    // A producer still in flight on Alice's connection: Bob's touch is a
    // `pending_producer` naming her session, not a race. The sentinel
    // (greedy, 13 tasks) is slowed 2 s by the middleware; Alice pipelines
    // it so the test can talk to Bob while it runs.
    alice
        .send_line(r#"{"algorithm":"greedy","tasks":13,"id":"p","seq":"slow-1"}"#)
        .expect("sending the pipelined slow solve");
    // Give the server a beat to admit the request and mark the id pending.
    let deadline = Instant::now() + STEP;
    loop {
        let response = bob
            .roundtrip(r#"{"op":"resubmit","id":"p","delta":{"resize":20}}"#)
            .expect("bob's probe");
        if response.contains("\"code\":\"pending_producer\"") {
            assert!(
                response.contains("is still being produced by session"),
                "{response}"
            );
            break;
        }
        // Not admitted yet: the only acceptable other answer is unknown.
        assert!(response.contains("\"code\":\"unknown_plan\""), "{response}");
        assert!(Instant::now() < deadline, "pending state never observed");
        thread::yield_now();
    }
    let message = expect_code(&mut bob, r#"{"op":"claim","id":"p"}"#, "pending_producer");
    assert!(message.contains("by session"), "{message}");

    // Alice's slow solve lands fine; the id is hers afterwards.
    let response = alice.recv_line().expect("the slow solve completes");
    assert!(response.contains("\"ok\":true"), "{response}");
    ok_roundtrip(
        &mut alice,
        r#"{"op":"resubmit","id":"p","delta":{"resize":26}}"#,
    );

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn dropping_a_session_releases_its_leases_but_keeps_its_plans() {
    let (addr, shutdown, done) = start_server(test_config());
    let mut alice = connect(addr);
    ok_roundtrip(&mut alice, r#"{"op":"solve","id":"w","tasks":12}"#);
    drop(alice);

    // The disconnect races the store cleanup; retry until the lease frees.
    let mut bob = connect(addr);
    let deadline = Instant::now() + STEP;
    loop {
        let response = bob
            .roundtrip(r#"{"op":"claim","id":"w"}"#)
            .expect("bob's claim");
        if response.contains("\"ok\":true") {
            break;
        }
        assert!(
            response.contains("\"code\":\"lease_conflict\""),
            "{response}"
        );
        assert!(Instant::now() < deadline, "alice's lease never released");
        thread::sleep(Duration::from_millis(10));
    }
    // The plan itself survived its producing connection.
    let grown = ok_roundtrip(
        &mut bob,
        r#"{"op":"resubmit","id":"w","delta":{"resize":30}}"#,
    );
    assert_eq!(grown.get("tasks").and_then(Json::as_f64), Some(30.0));

    // Stats agree: one plan retained, one lease (Bob's).
    let stats = ok_roundtrip(&mut bob, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("plans").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("leases").and_then(Json::as_f64), Some(1.0));

    shutdown.shutdown();
    expect_clean_exit(&done);
}
