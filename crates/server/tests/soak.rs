//! Multi-connection soak: N concurrent sessions, each pipelining windows
//! of solves, resubmits, batches, and lease moves against the shared
//! engine and plan store, with **every** response pinned byte-for-byte
//! (modulo the session-specific `seq`/`id`/`session` members) against a
//! sequential single-connection baseline of the same script.
//!
//! The script is windowed: each session first solves its own ids
//! sequentially, then runs the same window script three times at widening
//! pipeline windows (2, 4, 8). Within a window every tagged line touches a
//! distinct plan id, so responses are deterministic — pending-producer
//! races are pinned separately in `pipeline.rs`. Across windows the plans
//! evolve (a resize recomputes in window one and fully reuses in window
//! two), so the baseline records each window separately.
//!
//! Everything is deadline-bounded: client reads time out, worker threads
//! report through a channel with a timeout, and the whole soak asserts a
//! wall-clock budget — a wedged session fails fast instead of hanging CI.

use slade_engine::EngineConfig;
use slade_server::json::{self, Json};
use slade_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);
/// Concurrent worker sessions.
const WORKERS: usize = 4;
/// Pipeline window sizes, one soak round per entry.
const WINDOWS: [usize; 3] = [2, 4, 8];

fn start_server() -> (
    SocketAddr,
    slade_server::ShutdownHandle,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 3,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, shutdown, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

/// Sequential per-session setup: four plans under the session's own ids.
fn setup_lines(prefix: &str) -> Vec<String> {
    vec![
        format!(r#"{{"op":"solve","id":"{prefix}0","tasks":10,"threshold":0.95}}"#),
        format!(
            r#"{{"op":"solve","id":"{prefix}1","algorithm":"opq-extended","thresholds":[0.95,0.72,0.3,0.11,0.3,0.72]}}"#
        ),
        format!(
            r#"{{"op":"solve","id":"{prefix}2","algorithm":"greedy","tasks":9,"threshold":0.9}}"#
        ),
        format!(r#"{{"op":"solve","id":"{prefix}3","tasks":25,"threshold":0.8}}"#),
    ]
}

/// One pipelined window: every tagged line touches a distinct id, plus
/// id-less solves and a batch riding along, plus lease-move barriers.
fn window_lines(prefix: &str) -> Vec<String> {
    vec![
        format!(r#"{{"op":"resubmit","id":"{prefix}0","delta":{{"resize":40}}}}"#),
        r#"{"tasks":30,"threshold":0.9}"#.to_string(),
        format!(r#"{{"op":"resubmit","id":"{prefix}1","delta":{{"set_thresholds":[[0,0.3]]}}}}"#),
        r#"{"op":"batch","requests":[{"tasks":5,"threshold":0.9},{"algorithm":"greedy","tasks":7,"threshold":0.9}]}"#
            .to_string(),
        // Lease moves are un-pipelinable: the client runs them as barriers,
        // draining the window first — exactly like stats.
        format!(r#"{{"op":"claim","id":"{prefix}0"}}"#),
        format!(r#"{{"op":"resubmit","id":"{prefix}2","delta":{{"resize":18}}}}"#),
        // Appending per-task thresholds to an OpqBased plan is a
        // deterministic error response; errors soak like plans do.
        format!(r#"{{"op":"resubmit","id":"{prefix}3","delta":{{"append":[0.5,0.9]}}}}"#),
        format!(r#"{{"op":"release","id":"{prefix}0"}}"#),
        format!(r#"{{"op":"claim","id":"{prefix}0"}}"#),
        format!(r#"{{"algorithm":"greedy","tasks":11,"threshold":0.85}}"#),
    ]
}

/// Strips the members that legitimately differ between sessions running
/// the same script — the pipelining tag, the session-scoped plan id, and
/// the acting session number — and re-serializes.
fn comparable(line: &str) -> String {
    let value = json::parse(line).expect("responses are valid JSON");
    let Json::Object(members) = value else {
        panic!("response is not an object: {line}");
    };
    Json::Object(
        members
            .into_iter()
            .filter(|(k, _)| k != "seq" && k != "id" && k != "session")
            .collect(),
    )
    .to_string()
}

#[test]
fn soak_pipelined_sessions_match_the_sequential_baseline() {
    let started = Instant::now();
    let (addr, shutdown, done) = start_server();

    // Baseline: one connection runs the whole script sequentially,
    // recording each window's responses separately (plans evolve across
    // windows, deterministically).
    let mut baseline_conn = connect(addr);
    for line in setup_lines("b") {
        let response = baseline_conn.roundtrip(&line).expect("baseline setup");
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let mut baseline: Vec<Vec<String>> = Vec::new();
    for _ in WINDOWS {
        baseline.push(
            window_lines("b")
                .iter()
                .map(|line| comparable(&baseline_conn.roundtrip(line).expect("baseline window")))
                .collect(),
        );
    }
    let baseline = Arc::new(baseline);

    // Workers: pipelined sessions running the same script under their own
    // id prefixes, all concurrently.
    let (tx, rx) = mpsc::channel();
    for worker in 0..WORKERS {
        let tx = tx.clone();
        let baseline = Arc::clone(&baseline);
        thread::spawn(move || {
            let run = || -> Result<(), String> {
                let prefix = format!("c{worker}-");
                let mut conn = connect(addr);
                for line in setup_lines(&prefix) {
                    let response = conn
                        .roundtrip(&line)
                        .map_err(|e| format!("worker {worker} setup: {e}"))?;
                    if !response.contains("\"ok\":true") {
                        return Err(format!("worker {worker} setup failed: {response}"));
                    }
                }
                for (round, window) in WINDOWS.iter().enumerate() {
                    let lines = window_lines(&prefix);
                    let responses = conn
                        .pipeline(&lines, *window)
                        .map_err(|e| format!("worker {worker} window {window}: {e}"))?;
                    for (i, response) in responses.iter().enumerate() {
                        let got = comparable(response);
                        let want = &baseline[round][i];
                        if got != *want {
                            return Err(format!(
                                "worker {worker} window {window} line {i} diverged:\n  \
                                 got  {got}\n  want {want}"
                            ));
                        }
                    }
                }
                Ok(())
            };
            let _ = tx.send(run());
        });
    }
    drop(tx);
    for _ in 0..WORKERS {
        rx.recv_timeout(STEP * 3)
            .expect("every worker must finish within the deadline")
            .unwrap_or_else(|e| panic!("{e}"));
    }

    shutdown.shutdown();
    done.recv_timeout(STEP)
        .expect("server must shut down within the deadline")
        .expect("server run() must exit cleanly");
    // The whole soak is budgeted: a scheduler regression that serializes
    // sessions or wedges parking shows up as a blown deadline, not a hang.
    assert!(
        started.elapsed() < STEP * 6,
        "soak exceeded its wall-clock budget: {:?}",
        started.elapsed()
    );
}
