//! Fuzz-style corpus tests of the workspace's one JSON implementation
//! (`slade_server::json`), driven by the deterministic in-tree `rand`
//! shim:
//!
//! * **no panics** — the parser must reject, never crash, on thousands of
//!   seeded mutations of valid documents (truncations, byte flips,
//!   insertions, duplications, deep nesting wraps, pathological numbers);
//! * **exact round-trips** — every document the parser *accepts* must
//!   satisfy `parse(to_string(x)) == x`, with numbers compared by bit
//!   pattern (signed zero included) and the serialized form stable under a
//!   second round trip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slade_server::json::{self, Json};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Structural equality with numbers by bit pattern (plain `==` would let
/// `-0.0 == 0.0` mask a lost sign bit).
fn bits_equal(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Number(x), Json::Number(y)) => x.to_bits() == y.to_bits(),
        (Json::Array(xs), Json::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bits_equal(x, y))
        }
        (Json::Object(xs), Json::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && bits_equal(va, vb))
        }
        _ => a == b,
    }
}

/// Asserts the full round-trip contract on an accepted document.
fn assert_round_trips(value: &Json, origin: &str) {
    let printed = value.to_string();
    let back = json::parse(&printed)
        .unwrap_or_else(|e| panic!("serialized form of {origin} rejected: {e}\n{printed}"));
    assert!(
        bits_equal(value, &back),
        "{origin} did not round-trip bit-exactly:\n  value: {value}\n  back:  {back}"
    );
    // The printed form is a fixed point: printing the re-parse changes
    // nothing.
    assert_eq!(back.to_string(), printed, "{origin} print not stable");
}

/// Hand-picked corpus of valid documents covering every grammar corner the
/// protocol exercises (and several it doesn't).
fn corpus() -> Vec<String> {
    vec![
        "{}".to_string(),
        "[]".to_string(),
        "null".to_string(),
        "true".to_string(),
        "-0".to_string(),
        "0.30000000000000004".to_string(),
        "1e308".to_string(),
        "1e-999".to_string(),
        "-1.7976931348623157e308".to_string(),
        "9007199254740991".to_string(),
        r#""""#.to_string(),
        r#""a\nb\t\"c\"\\d\u00e9""#.to_string(),
        r#""π ≠ \u03c0? yes it is""#.to_string(),
        r#"[1,-2.5,"x",null,true,false,[[]],{}]"#.to_string(),
        r#"{"algorithm":"opq-based","tasks":100,"threshold":0.95,"bins":[[1,0.9,0.1],[3,0.8,0.24]],"seed":7}"#
            .to_string(),
        r#"{"op":"resubmit","id":"w","delta":{"set_thresholds":[[0,0.9],[2,0.7]]},"seq":"r-1"}"#
            .to_string(),
        r#"{"op":"batch","requests":[{"tasks":6},{"algorithm":"greedy","tasks":3}],"seq":0}"#
            .to_string(),
        format!("{}0{}", "[".repeat(120), "]".repeat(120)),
        r#"{"a":{"a":{"a":{"a":1}}},"b":[{"a":2},{"a":3}]}"#.to_string(),
        r#"{"cost":0.6799999999999999,"feasible":true,"seq":18446744073709551615}"#.to_string(),
    ]
}

/// A random JSON value tree, with numbers drawn from the awkward corners
/// (integers at the f64 edge, tiny/huge magnitudes, signed zero).
fn random_value(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth >= 5 {
        rng.random_range(0..4u32) // leaves only
    } else {
        rng.random_range(0..6u32)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.random()),
        2 => Json::Number(random_number(rng)),
        3 => Json::String(random_string(rng)),
        4 => Json::Array(
            (0..rng.random_range(0..5usize))
                .map(|_| random_value(rng, depth + 1))
                .collect(),
        ),
        _ => {
            let mut members: Vec<(String, Json)> = Vec::new();
            for _ in 0..rng.random_range(0..5usize) {
                let key = random_string(rng);
                if members.iter().all(|(k, _)| *k != key) {
                    members.push((key, random_value(rng, depth + 1)));
                }
            }
            Json::Object(members)
        }
    }
}

fn random_number(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..6u32) {
        0 => f64::from(rng.random::<u32>()) - f64::from(u32::MAX) / 2.0,
        1 => rng.random::<f64>(),
        2 => -0.0,
        3 => 9.007_199_254_740_991e15,
        4 => rng.random::<f64>() * 1e-300,
        _ => (rng.random::<f64>() - 0.5) * 1e300,
    }
}

fn random_string(rng: &mut StdRng) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'b', 'z', '0', '9', ' ', '"', '\\', '\n', '\t', '\u{1}', 'é', 'π', '🦀', ':', ',',
    ];
    (0..rng.random_range(0..8usize))
        .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
        .collect()
}

/// One seeded mutation of a document's bytes. The result may or may not be
/// valid UTF-8 / valid JSON — the parser must classify, not crash.
fn mutate(rng: &mut StdRng, doc: &str) -> Option<String> {
    const INTERESTING: &[u8] = b"{}[]\",:\\0123456789eE+-. truefalsnu\n\r\t\x00\x7f\xff";
    let mut bytes = doc.as_bytes().to_vec();
    match rng.random_range(0..6u32) {
        // Truncate at a random position.
        0 => {
            if bytes.is_empty() {
                return None;
            }
            let at = rng.random_range(0..bytes.len());
            bytes.truncate(at);
        }
        // Flip one random byte to an interesting value.
        1 => {
            if bytes.is_empty() {
                return None;
            }
            let at = rng.random_range(0..bytes.len());
            bytes[at] = INTERESTING[rng.random_range(0..INTERESTING.len())];
        }
        // Insert an interesting byte.
        2 => {
            let at = rng.random_range(0..bytes.len() + 1);
            bytes.insert(at, INTERESTING[rng.random_range(0..INTERESTING.len())]);
        }
        // Duplicate a random slice in place.
        3 => {
            if bytes.is_empty() {
                return None;
            }
            let start = rng.random_range(0..bytes.len());
            let end = rng.random_range(start..bytes.len());
            let slice: Vec<u8> = bytes[start..=end.min(bytes.len() - 1)].to_vec();
            let at = rng.random_range(0..bytes.len() + 1);
            for (i, b) in slice.into_iter().enumerate() {
                bytes.insert(at + i, b);
            }
        }
        // Wrap in many array levels (sometimes past MAX_DEPTH).
        4 => {
            let levels = rng.random_range(1..300usize);
            let mut wrapped = "[".repeat(levels).into_bytes();
            wrapped.extend_from_slice(&bytes);
            wrapped.extend_from_slice("]".repeat(levels).as_bytes());
            bytes = wrapped;
        }
        // Splice in a pathological number token.
        _ => {
            const NUMBERS: [&str; 8] = [
                "1e999",
                "-1e999",
                "1e-999",
                "-0",
                "0.0000000000000000000000001",
                "1e+",
                "-",
                "9999999999999999999999999999",
            ];
            let token = NUMBERS[rng.random_range(0..NUMBERS.len())];
            let at = rng.random_range(0..bytes.len() + 1);
            for (i, b) in token.bytes().enumerate() {
                bytes.insert(at + i, b);
            }
        }
    }
    // parse() takes &str; non-UTF-8 mutants can't reach it by construction.
    String::from_utf8(bytes).ok()
}

#[test]
fn corpus_documents_round_trip_exactly() {
    for doc in corpus() {
        let value = json::parse(&doc).unwrap_or_else(|e| panic!("corpus doc rejected: {e}\n{doc}"));
        assert_round_trips(&value, &doc);
    }
    // Signed zero specifically: the sign bit survives the trip.
    let Json::Number(zero) = json::parse("-0").unwrap() else {
        panic!("-0 must parse as a number");
    };
    assert!(zero.is_sign_negative(), "-0 lost its sign bit");
}

#[test]
fn randomly_generated_values_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for i in 0..500 {
        let value = random_value(&mut rng, 0);
        assert_round_trips(&value, &format!("random value {i}"));
    }
}

#[test]
fn seeded_mutations_never_panic_and_accepted_mutants_round_trip() {
    let corpus = corpus();
    let mut rng = StdRng::seed_from_u64(2019);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for round in 0..4_000 {
        let base = &corpus[rng.random_range(0..corpus.len())];
        // Mutations stack: later rounds mutate already-mutated documents.
        let mut doc = base.clone();
        for _ in 0..rng.random_range(1..4u32) {
            match mutate(&mut rng, &doc) {
                Some(next) => doc = next,
                None => break,
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| json::parse(&doc)));
        match outcome {
            Err(_) => panic!("parser panicked on round {round}: {doc:?}"),
            Ok(Ok(value)) => {
                accepted += 1;
                assert_round_trips(&value, &format!("mutant (round {round})"));
            }
            Ok(Err(error)) => {
                rejected += 1;
                assert!(
                    !error.is_empty(),
                    "rejections must carry a message: {doc:?}"
                );
            }
        }
    }
    // The mutator must exercise both sides of the grammar meaningfully.
    assert!(accepted >= 100, "only {accepted} mutants accepted");
    assert!(rejected >= 1_000, "only {rejected} mutants rejected");
}
