//! End-to-end tests of the durable plan journal over real loopback
//! sockets:
//!
//! 1. **restart recovery** — a resubmit chain continued on a restarted
//!    server (same journal file) returns bytes identical to the same
//!    chain run uninterrupted on one server;
//! 2. **replay idempotence** — a journal concatenated with itself
//!    replays to the same store as the original (last record wins);
//! 3. **torn-tail tolerance** — a partial final record (the SIGKILL
//!    shape) is skipped on replay and truncated away by the boot-time
//!    compaction;
//! 4. **corruption fuzz** — seeded byte flips and truncations of a real
//!    journal must never panic the boot replay;
//! 5. **lease TTL** — an expired lease is reclaimable by a second
//!    session while the first is still connected, and the expiry counts;
//! 6. **compaction** — re-landing one id hundreds of times leaves a
//!    journal bounded by [`COMPACT_EVERY`], not by the append count;
//! 7. **exposition** — store and journal gauges reach the Prometheus
//!    text endpoint and the `health`/`metrics` verbs.

use slade_server::json::{self, Json};
use slade_server::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

/// A fresh journal path in the temp dir, unique per test and process;
/// stale files from a previous run are removed so replays start clean.
fn journal_path(name: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("slade-journal-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    let _ = std::fs::remove_file(PathBuf::from(tmp));
    path
}

fn config(journal: Option<PathBuf>, lease_ttl: Option<Duration>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: slade_engine::EngineConfig {
            threads: 2,
            cache_capacity: 16,
            ..slade_engine::EngineConfig::default()
        },
        request_timeout: STEP,
        journal,
        lease_ttl,
        ..ServerConfig::default()
    }
}

fn start_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    Option<SocketAddr>,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_local_addr();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, metrics_addr, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

/// Round-trips `line` expecting success; returns the raw response string
/// (for byte-identity comparisons) and its parsed form.
fn ok_roundtrip(client: &mut Client, line: &str) -> (String, Json) {
    let response = client.roundtrip(line).expect("protocol round trip");
    let value = json::parse(&response).expect("responses are valid JSON");
    assert_eq!(
        value.get("ok"),
        Some(&Json::Bool(true)),
        "expected success for {line}, got {response}"
    );
    (response, value)
}

fn shutdown(client: &mut Client, done: &mpsc::Receiver<std::io::Result<()>>) {
    client.roundtrip("{\"op\":\"shutdown\"}").expect("shutdown");
    done.recv_timeout(STEP)
        .expect("server must shut down within the deadline")
        .expect("server run() must exit cleanly");
}

/// Digs a numeric member out of a nested metrics object.
fn metric(value: &Json, section: &str, key: &str) -> f64 {
    value
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("metrics member {section}.{key} in {value}"))
}

#[test]
fn restarted_server_resumes_the_resubmit_chain_byte_identically() {
    // Control: the whole chain on one uninterrupted server.
    let (addr, _, done) = start_server(config(None, None));
    let mut control = connect(addr);
    ok_roundtrip(
        &mut control,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );
    ok_roundtrip(
        &mut control,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":9}}",
    );
    let (expected, _) = ok_roundtrip(
        &mut control,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":100},\"plan\":true}",
    );
    shutdown(&mut control, &done);

    // Journaled: the first two links, then a restart on the same file.
    let path = journal_path("restart");
    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut first = connect(addr);
    ok_roundtrip(
        &mut first,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );
    ok_roundtrip(
        &mut first,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":9}}",
    );
    shutdown(&mut first, &done);

    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut resumed = connect(addr);
    // Replayed plans are unleased: the resubmit claims implicitly.
    let (actual, _) = ok_roundtrip(
        &mut resumed,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":100},\"plan\":true}",
    );
    assert_eq!(
        actual, expected,
        "the resumed chain must be byte-identical to the uninterrupted one"
    );

    // The replay is visible: two land records recovered into one plan,
    // compacted back down to one record at boot.
    let (_, metrics) = ok_roundtrip(&mut resumed, "{\"op\":\"metrics\"}");
    assert_eq!(metric(&metrics, "journal", "replayed"), 2.0, "{metrics}");
    assert!(
        metric(&metrics, "journal", "compactions") >= 1.0,
        "{metrics}"
    );
    shutdown(&mut resumed, &done);
    let _ = std::fs::remove_file(path);
}

#[test]
fn doubled_journal_replays_idempotently() {
    let path = journal_path("idempotent");
    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut client = connect(addr);
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"v\",\"tasks\":7,\"threshold\":0.9}",
    );
    shutdown(&mut client, &done);

    // Replaying the journal twice over must land exactly the same store.
    let bytes = std::fs::read(&path).expect("journal exists after shutdown");
    let doubled = journal_path("idempotent-doubled");
    let mut twice = bytes.clone();
    twice.extend_from_slice(&bytes);
    std::fs::write(&doubled, &twice).unwrap();

    let (addr, _, done) = start_server(config(Some(doubled.clone()), None));
    let mut client = connect(addr);
    let (_, metrics) = ok_roundtrip(&mut client, "{\"op\":\"metrics\"}");
    assert_eq!(metric(&metrics, "store", "plans"), 2.0, "{metrics}");
    assert_eq!(metric(&metrics, "journal", "replayed"), 4.0, "{metrics}");
    // Boot-time compaction rewrote the doubled file to the two live plans.
    assert_eq!(metric(&metrics, "journal", "records"), 2.0, "{metrics}");
    ok_roundtrip(
        &mut client,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":9}}",
    );
    shutdown(&mut client, &done);
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(doubled);
}

#[test]
fn torn_final_record_is_skipped_and_truncated_at_boot() {
    let path = journal_path("torn");
    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut client = connect(addr);
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"v\",\"tasks\":7,\"threshold\":0.9}",
    );
    shutdown(&mut client, &done);

    // The SIGKILL shape: a final record cut off mid-write.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"{\"record\":\"land\",\"id\":\"torn\",\"plan\":{\"v\":1,\"alg")
            .unwrap();
    }

    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut client = connect(addr);
    let (_, metrics) = ok_roundtrip(&mut client, "{\"op\":\"metrics\"}");
    assert_eq!(metric(&metrics, "store", "plans"), 2.0, "{metrics}");
    assert_eq!(metric(&metrics, "journal", "replayed"), 2.0, "{metrics}");
    shutdown(&mut client, &done);

    // Boot-time compaction truncated the torn tail: every line in the
    // rewritten journal parses as a complete record.
    let rewritten = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = rewritten.lines().collect();
    assert_eq!(lines.len(), 2, "{rewritten}");
    for line in lines {
        json::parse(line).expect("compacted journals hold only whole records");
    }
    let _ = std::fs::remove_file(path);
}

/// The deterministic LCG the engine's property tests use; failures quote
/// their seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn corrupt_journal_bytes_never_panic_the_boot_replay() {
    // A real journal to mutate: three plans, shut down cleanly.
    let path = journal_path("fuzz-seed");
    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut client = connect(addr);
    for (id, tasks) in [("a", 4), ("b", 7), ("c", 9)] {
        ok_roundtrip(
            &mut client,
            &format!("{{\"op\":\"solve\",\"id\":\"{id}\",\"tasks\":{tasks},\"threshold\":0.9}}"),
        );
    }
    shutdown(&mut client, &done);
    let bytes = std::fs::read(&path).unwrap();
    assert!(!bytes.is_empty());

    let target = journal_path("fuzz-target");
    let mut rng = Lcg(0x5EED_F00D);
    for round in 0..40 {
        let mut mutant = bytes.clone();
        match rng.pick(3) {
            // Truncate anywhere — mid-record, mid-number, mid-escape.
            0 => mutant.truncate(rng.pick(bytes.len() as u64) as usize),
            // Flip one byte anywhere.
            1 => {
                let at = rng.pick(bytes.len() as u64) as usize;
                mutant[at] ^= 1 << rng.pick(8);
            }
            // Both: flip then truncate after the flip.
            _ => {
                let at = rng.pick(bytes.len() as u64) as usize;
                mutant[at] = rng.next() as u8;
                let keep = at + rng.pick((bytes.len() - at) as u64 + 1) as usize;
                mutant.truncate(keep);
            }
        }
        std::fs::write(&target, &mutant).unwrap();
        let mut corrupted = config(Some(target.clone()), None);
        corrupted.engine.threads = 1;
        // Bind replays (and compacts) the mutant; it must come up clean —
        // possibly with fewer plans, never with a panic or an error.
        let server = Server::bind(corrupted)
            .unwrap_or_else(|e| panic!("round {round}: bind must survive corruption: {e}"));
        drop(server);
    }
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(target);
}

#[test]
fn expired_lease_is_reclaimable_by_a_second_session() {
    // TTL zero: every lease expires the instant its holder goes idle.
    let (addr, _, done) = start_server(config(None, Some(Duration::ZERO)));
    let mut alice = connect(addr);
    ok_roundtrip(
        &mut alice,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );

    // Alice is still connected and never released — Bob takes the id
    // anyway, because the lease aged out.
    let mut bob = connect(addr);
    ok_roundtrip(&mut bob, "{\"op\":\"claim\",\"id\":\"w\"}");
    ok_roundtrip(
        &mut bob,
        "{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{\"resize\":9}}",
    );

    let (_, metrics) = ok_roundtrip(&mut bob, "{\"op\":\"metrics\"}");
    assert!(
        metric(&metrics, "store", "lease_expiries") >= 1.0,
        "{metrics}"
    );
    drop(alice);
    shutdown(&mut bob, &done);
}

#[test]
fn compaction_bounds_the_journal_by_live_plans_not_appends() {
    let path = journal_path("compact");
    let (addr, _, done) = start_server(config(Some(path.clone()), None));
    let mut client = connect(addr);
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.9}",
    );
    // Re-land the one id well past the compaction budget.
    for round in 0..300 {
        let tasks = 4 + (round % 2);
        ok_roundtrip(
            &mut client,
            &format!("{{\"op\":\"resubmit\",\"id\":\"w\",\"delta\":{{\"resize\":{tasks}}}}}"),
        );
    }

    let (_, metrics) = ok_roundtrip(&mut client, "{\"op\":\"metrics\"}");
    let records = metric(&metrics, "journal", "records");
    assert!(
        records < 300.0,
        "301 appends must have compacted, journal still holds {records} records"
    );
    assert!(
        metric(&metrics, "journal", "compactions") >= 2.0,
        "boot + automatic: {metrics}"
    );
    assert_eq!(metric(&metrics, "store", "plans"), 1.0, "{metrics}");
    shutdown(&mut client, &done);

    let lines = std::fs::read_to_string(&path).unwrap().lines().count();
    assert_eq!(lines as f64, records, "file and counter must agree");
    let _ = std::fs::remove_file(path);
}

#[test]
fn store_and_journal_gauges_reach_health_and_prometheus() {
    let path = journal_path("gauges");
    let mut cfg = config(Some(path.clone()), None);
    cfg.metrics_addr = Some("127.0.0.1:0".to_string());
    let (addr, metrics_addr, done) = start_server(cfg);
    let metrics_addr = metrics_addr.expect("a metrics listener must bind when configured");
    let mut client = connect(addr);
    ok_roundtrip(
        &mut client,
        "{\"op\":\"solve\",\"id\":\"w\",\"tasks\":4,\"threshold\":0.95}",
    );

    // The health verb grew a `store` signal.
    let (_, health) = ok_roundtrip(&mut client, "{\"op\":\"health\"}");
    let store_signal = health
        .get("signals")
        .and_then(|s| s.get("store"))
        .unwrap_or_else(|| panic!("health carries a store signal: {health}"));
    assert_eq!(
        store_signal.get("status").and_then(Json::as_str),
        Some("ok"),
        "{health}"
    );

    // Prometheus sees the same numbers under sanitized names.
    let mut stream = TcpStream::connect(metrics_addr).expect("metrics listener");
    stream.set_read_timeout(Some(STEP)).unwrap();
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    for expected in [
        "slade_store_plans 1",
        "slade_store_leases 1",
        "slade_store_lease_conflicts 0",
        "slade_store_lease_expiries 0",
        "slade_journal_records 1",
        "slade_journal_append_errors 0",
    ] {
        assert!(body.contains(expected), "missing `{expected}` in:\n{body}");
    }
    shutdown(&mut client, &done);
    let _ = std::fs::remove_file(path);
}
