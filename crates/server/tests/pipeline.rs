//! End-to-end tests of session pipelining (DESIGN seam #11) over real
//! loopback sockets, pinning the multiplexer's contracts:
//!
//! 1. **byte determinism** — every tagged response, with its echoed `seq`
//!    member stripped, is byte-identical to the same request's sequential
//!    (untagged) response, regardless of completion order, window size, or
//!    how the tags are shuffled;
//! 2. **out-of-order completion** — a slow request does not block the
//!    responses of fast requests pipelined behind it;
//! 3. **no wedging** — a slow (fault-injected) solver costs at most its
//!    deadline: the session keeps serving, concurrently and afterwards;
//! 4. **ordering hazards** — `resubmit` against a plan id whose producing
//!    `seq` has not completed is a structured error (not a race), `stats`
//!    rejects `seq` and answers in stream position, and `shutdown` drains
//!    every tagged in-flight request before acking and closing.
//!
//! Fault injection goes through [`ServerConfig::request_middleware`]: a
//! sentinel request (`greedy` with exactly 13 tasks) is wrapped with a
//! deliberately slow solver override.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slade_core::bin_set::BinSet;
use slade_core::plan::DecompositionPlan;
use slade_core::solver::{DecompositionSolver, PreparedSolver};
use slade_core::task::Workload;
use slade_core::SladeError;
use slade_engine::EngineConfig;
use slade_server::json::{self, Json};
use slade_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

/// A solver that sleeps before delegating to the greedy — the
/// fault-injection vehicle for the slow-request tests.
#[derive(Debug)]
struct SlowSolver {
    delay: Duration,
}

impl DecompositionSolver for SlowSolver {
    fn name(&self) -> &'static str {
        "SlowGreedy"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        thread::sleep(self.delay);
        slade_core::greedy::Greedy.solve(workload, bins)
    }
}

impl PreparedSolver for SlowSolver {}

/// Middleware wrapping the sentinel request (greedy, exactly 13 tasks)
/// with a [`SlowSolver`] of the given delay.
fn slow_sentinel_middleware(delay: Duration) -> slade_server::RequestMiddleware {
    Arc::new(move |request: slade_engine::EngineRequest| {
        if request.algorithm == slade_core::solver::Algorithm::Greedy
            && request.workload.len() == 13
        {
            request.with_solver(Arc::new(SlowSolver { delay }))
        } else {
            request
        }
    })
}

/// The sentinel request line the middleware slows down.
fn slow_line(seq: &str) -> String {
    format!(r#"{{"algorithm":"greedy","tasks":13,"seq":"{seq}"}}"#)
}

fn start_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    slade_server::ShutdownHandle,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, shutdown, rx)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 3,
            cache_capacity: 32,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

/// Parses a response line and removes the echoed `seq` member, returning
/// the re-serialized bytes — what the same request's untagged response
/// must equal, byte for byte.
fn strip_seq(line: &str) -> String {
    let value = json::parse(line).expect("responses are valid JSON");
    let Json::Object(members) = value else {
        panic!("response is not an object: {line}");
    };
    Json::Object(members.into_iter().filter(|(k, _)| k != "seq").collect()).to_string()
}

/// The echoed `seq` of a response line, serialized.
fn seq_of(line: &str) -> String {
    json::parse(line)
        .expect("responses are valid JSON")
        .get("seq")
        .unwrap_or_else(|| panic!("response without seq: {line}"))
        .to_string()
}

fn expect_clean_exit(done: &mpsc::Receiver<std::io::Result<()>>) {
    done.recv_timeout(STEP)
        .expect("server must shut down within the deadline")
        .expect("server run() must exit cleanly");
}

/// A mixed bag of pipelinable request lines (no ids — stateless, so their
/// responses are position-independent).
fn mixed_solve_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for n in [1u32, 4, 17, 40] {
        lines.push(format!(r#"{{"tasks":{n},"threshold":0.95}}"#));
    }
    lines.push(r#"{"algorithm":"greedy","tasks":9,"threshold":0.9}"#.to_string());
    lines.push(r#"{"algorithm":"opq-extended","thresholds":[0.95,0.72,0.3,0.11]}"#.to_string());
    lines.push(r#"{"algorithm":"baseline","tasks":25,"threshold":0.9,"seed":11}"#.to_string());
    lines.push(r#"{"algorithm":"opq-extended","tasks":30,"threshold":0.99}"#.to_string());
    lines.push(
        r#"{"op":"batch","requests":[{"tasks":6},{"algorithm":"greedy","tasks":3}]}"#.to_string(),
    );
    lines.push(r#"{"tasks":17,"threshold":0.95,"plan":true}"#.to_string());
    lines
}

#[test]
fn pipelined_responses_are_byte_identical_to_sequential_ones() {
    let (addr, shutdown, done) = start_server(test_config());
    let lines = mixed_solve_lines();

    // Sequential baseline on one connection.
    let mut sequential = connect(addr);
    let baseline: Vec<String> = lines
        .iter()
        .map(|line| sequential.roundtrip(line).expect("sequential round trip"))
        .collect();

    // The same lines pipelined on a fresh connection, in a seeded shuffle,
    // across several window sizes.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for window in [2usize, 8, 64] {
        let mut order: Vec<usize> = (0..lines.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..i + 1));
        }
        let shuffled: Vec<&str> = order.iter().map(|&i| lines[i].as_str()).collect();
        let mut pipelined = connect(addr);
        let responses = pipelined
            .pipeline(&shuffled, window)
            .expect("pipelined round trips");
        for (slot, &orig) in order.iter().enumerate() {
            assert_eq!(
                strip_seq(&responses[slot]),
                baseline[orig],
                "window {window}: response {slot} (request {orig}) diverged"
            );
        }
    }

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn server_rejected_tagged_lines_become_per_slot_errors_not_aborts() {
    let (addr, shutdown, done) = start_server(test_config());
    let mut client = connect(addr);

    // Line 1 is JSON-valid (so the client tags and streams it) but the
    // server rejects its engine fields; the structured error must land in
    // its slot — with the echoed tag — while the rest of the window
    // completes normally.
    let lines = [
        r#"{"tasks":4,"threshold":0.95}"#,
        r#"{"algorithm":"frobnicate","tasks":4}"#,
        r#"{"tasks":4,"frob":1}"#,
        r#"{"tasks":7,"threshold":0.9}"#,
    ];
    let responses = client.pipeline(&lines, 4).expect("pipeline must not abort");
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    assert!(
        responses[1].contains("\"ok\":false")
            && responses[1].contains("\"seq\":1")
            && responses[1].contains("unknown algorithm"),
        "{}",
        responses[1]
    );
    assert!(
        responses[2].contains("\"ok\":false")
            && responses[2].contains("\"seq\":2")
            && responses[2].contains("unknown field `frob`"),
        "{}",
        responses[2]
    );
    assert!(
        responses[3].contains("\"ok\":true") && responses[3].contains("\"tasks\":7"),
        "{}",
        responses[3]
    );

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn concurrency_soak_many_connections_interleaving_solves_and_resubmits() {
    let (addr, shutdown, done) = start_server(test_config());

    // Per-connection script: retain PLANS ids untagged, then resubmit each
    // (tagged, shuffled seqs) interleaved with tagged solves and an
    // untagged stats probe. Plan ids live in the server-wide store now, so
    // every connection prefixes its ids with its own tag — a shared id
    // would be a lease conflict, which cross_session.rs pins separately —
    // and comparisons against the baseline strip the id echo along with
    // the seq. Resubmits still target distinct ids, so each id sees
    // exactly one producer and the responses are order-independent.
    const PLANS: usize = 4;
    const DELTAS: [&str; PLANS] = [
        r#"{"resize":30}"#,
        r#"{"append":[0.5,0.9]}"#,
        r#"{"set_thresholds":[[0,0.6]]}"#,
        r#"{"resize":3}"#,
    ];
    fn resubmit(prefix: &str, j: usize, seq: &str) -> String {
        format!(
            r#"{{"op":"resubmit","id":"{prefix}{j}","delta":{},"seq":"{seq}"}}"#,
            DELTAS[j]
        )
    }
    fn setup_lines(prefix: &str) -> Vec<String> {
        (0..PLANS)
            .map(|j| {
                format!(
                    r#"{{"op":"solve","id":"{prefix}{j}","tasks":{},"threshold":0.95}}"#,
                    10 + j
                )
            })
            .collect()
    }
    /// Strips the echoed `seq` and the connection-specific `id` before a
    /// cross-connection comparison.
    fn comparable(line: &str) -> String {
        let value = json::parse(line).expect("responses are valid JSON");
        let Json::Object(members) = value else {
            panic!("response is not an object: {line}");
        };
        Json::Object(
            members
                .into_iter()
                .filter(|(k, _)| k != "seq" && k != "id")
                .collect(),
        )
        .to_string()
    }

    // Baseline, untagged, on its own connection (same session shape).
    let mut baseline_conn = connect(addr);
    for line in &setup_lines("b") {
        let response = baseline_conn.roundtrip(line).expect("baseline setup");
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let mut baseline_resubmits = Vec::new();
    for (j, delta) in DELTAS.iter().enumerate() {
        let line = format!(r#"{{"op":"resubmit","id":"b{j}","delta":{delta}}}"#);
        // Some deltas intentionally produce error responses (appending
        // per-task thresholds to an OpqBased plan); those are part of the
        // baseline too — errors must be as deterministic as plans.
        let response = baseline_conn.roundtrip(&line).expect("baseline resubmit");
        baseline_resubmits.push(comparable(&response));
    }
    let solve_line = r#"{"tasks":21,"threshold":0.9}"#;
    let baseline_solve = comparable(&baseline_conn.roundtrip(solve_line).expect("baseline solve"));

    let workers: Vec<_> = (0..3u64)
        .map(|worker| {
            let baseline_resubmits = baseline_resubmits.clone();
            let baseline_solve = baseline_solve.clone();
            thread::spawn(move || {
                let prefix = format!("c{worker}-");
                let mut client = connect(addr);
                for line in &setup_lines(&prefix) {
                    let response = client.roundtrip(line).expect("soak setup");
                    assert!(response.contains("\"ok\":true"), "{response}");
                }
                // Interleave tagged resubmits and tagged solves with
                // shuffled string seqs; drive the wire manually so the tag
                // values (not just the order) are scrambled.
                let mut rng = StdRng::seed_from_u64(2019 + worker);
                let mut requests: Vec<(String, String)> = Vec::new(); // (seq, expected)
                for (j, expected) in baseline_resubmits.iter().enumerate() {
                    let seq = format!("r{worker}-{j}");
                    requests.push((resubmit(&prefix, j, &seq), expected.clone()));
                }
                for k in 0..PLANS {
                    let seq = format!("s{worker}-{k}");
                    requests.push((
                        format!(r#"{{"tasks":21,"threshold":0.9,"seq":"{seq}"}}"#),
                        baseline_solve.clone(),
                    ));
                }
                for i in (1..requests.len()).rev() {
                    requests.swap(i, rng.random_range(0..i + 1));
                }
                for (line, _) in &requests {
                    client.send_line(line).expect("soak send");
                }
                // An untagged stats at the end of the stream: answered in
                // stream position? No — tagged responses interleave freely;
                // just assert it arrives and is well-formed.
                client.send_line(r#"{"op":"stats"}"#).expect("stats send");
                let mut seen = std::collections::HashMap::new();
                let mut stats_seen = false;
                for _ in 0..=requests.len() {
                    let line = client.recv_line().expect("soak recv");
                    if line.contains("\"op\":\"stats\"") {
                        stats_seen = true;
                        continue;
                    }
                    seen.insert(seq_of(&line), comparable(&line));
                }
                assert!(stats_seen, "stats response must arrive");
                for (line, expected) in &requests {
                    let request = json::parse(line).unwrap();
                    let seq = request.get("seq").unwrap().to_string();
                    let got = seen
                        .get(&seq)
                        .unwrap_or_else(|| panic!("no response for seq {seq}"));
                    assert_eq!(got, expected, "seq {seq} diverged from baseline");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("soak worker must not panic");
    }

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn fast_requests_overtake_a_slow_one_and_nothing_wedges() {
    let mut config = test_config();
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_secs(2)));
    let (addr, shutdown, done) = start_server(config);
    let mut client = connect(addr);

    client.send_line(&slow_line("slow")).unwrap();
    for i in 0..3 {
        client
            .send_line(&format!(r#"{{"tasks":4,"seq":"fast{i}"}}"#))
            .unwrap();
    }
    let order: Vec<String> = (0..4)
        .map(|_| seq_of(&client.recv_line().unwrap()))
        .collect();
    assert_eq!(
        order[3], "\"slow\"",
        "the slow request must complete last, after the fast ones overtook it: {order:?}"
    );
    for fast in &order[..3] {
        assert!(fast.starts_with("\"fast"), "{order:?}");
    }

    // The session still serves strict request/response traffic.
    let after = client.roundtrip(r#"{"tasks":4}"#).unwrap();
    assert!(after.contains("\"ok\":true"), "{after}");

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn a_stuck_solver_costs_its_deadline_not_the_session() {
    let mut config = test_config();
    config.request_timeout = Duration::from_millis(300);
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_secs(5)));
    let (addr, shutdown, done) = start_server(config);
    let mut client = connect(addr);

    client.send_line(&slow_line("stuck")).unwrap();
    let response = client.recv_line().unwrap();
    assert_eq!(seq_of(&response), "\"stuck\"");
    assert!(
        response.contains("\"ok\":false") && response.contains("did not finish within"),
        "{response}"
    );

    // The deadline freed the in-flight slot and the session keeps serving
    // (the abandoned shard finishes in the pool, invisible here).
    let after = client.roundtrip(r#"{"tasks":4}"#).unwrap();
    assert!(after.contains("\"ok\":true"), "{after}");

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn resubmit_against_a_pending_producer_is_a_structured_error_not_a_race() {
    let mut config = test_config();
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_secs(2)));
    let (addr, shutdown, done) = start_server(config);
    let mut client = connect(addr);

    // The slow tagged solve will retain its plan under "w" — eventually.
    client
        .send_line(r#"{"op":"solve","id":"w","algorithm":"greedy","tasks":13,"seq":1}"#)
        .unwrap();
    // Tagged and untagged requests racing the pending id both get
    // structured errors naming the producing seq.
    client
        .send_line(r#"{"op":"resubmit","id":"w","delta":{"resize":20},"seq":2}"#)
        .unwrap();
    let race = client.recv_line().unwrap();
    assert_eq!(
        seq_of(&race),
        "2",
        "the race must be answered first: {race}"
    );
    assert!(
        race.contains("\"ok\":false") && race.contains("still being produced by in-flight seq 1"),
        "{race}"
    );
    let untagged_race = client
        .roundtrip(r#"{"op":"resubmit","id":"w","delta":{"resize":20}}"#)
        .unwrap();
    assert!(
        untagged_race.contains("still being produced by in-flight seq 1"),
        "{untagged_race}"
    );
    let untagged_solve_race = client
        .roundtrip(r#"{"op":"solve","id":"w","tasks":4}"#)
        .unwrap();
    assert!(
        untagged_solve_race.contains("still being produced by in-flight seq 1"),
        "{untagged_solve_race}"
    );

    // Once the producer answers, the id resolves normally.
    let produced = client.recv_line().unwrap();
    assert_eq!(seq_of(&produced), "1");
    assert!(produced.contains("\"ok\":true"), "{produced}");
    let resubmit = client
        .roundtrip(r#"{"op":"resubmit","id":"w","delta":{"resize":20}}"#)
        .unwrap();
    assert!(
        resubmit.contains("\"ok\":true") && resubmit.contains("\"tasks\":20"),
        "{resubmit}"
    );

    shutdown.shutdown();
    expect_clean_exit(&done);
}

#[test]
fn shutdown_drains_tagged_inflight_work_before_acking_and_closing() {
    let mut config = test_config();
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_millis(800)));
    let (addr, _shutdown, done) = start_server(config);
    let mut client = connect(addr);

    for i in 0..3 {
        client.send_line(&slow_line(&format!("d{i}"))).unwrap();
    }
    client.send_line(r#"{"op":"shutdown"}"#).unwrap();

    // All three tagged responses arrive (ok, not timeouts), and the
    // shutdown ack comes strictly last.
    let mut seqs = Vec::new();
    for _ in 0..3 {
        let line = client.recv_line().unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        seqs.push(seq_of(&line));
    }
    seqs.sort();
    assert_eq!(seqs, ["\"d0\"", "\"d1\"", "\"d2\""]);
    let ack = client.recv_line().unwrap();
    assert!(
        ack.contains("\"op\":\"shutdown\"") && ack.contains("\"ok\":true"),
        "drained responses must precede the ack: {ack}"
    );
    // Then the connection closes and the server exits.
    assert!(
        client.recv_line().is_err(),
        "connection must close after the ack"
    );
    expect_clean_exit(&done);
}

#[test]
fn inflight_cap_backpressure_and_duplicate_seqs() {
    let mut config = test_config();
    config.max_inflight = 2;
    config.request_middleware = Some(slow_sentinel_middleware(Duration::from_millis(200)));
    let (addr, shutdown, done) = start_server(config);
    let mut client = connect(addr);

    // Six slow tagged requests through a cap of 2: the reader blocks at
    // the cap (TCP backpressure), everything still completes correctly.
    for i in 0..6 {
        client.send_line(&slow_line(&format!("c{i}"))).unwrap();
    }
    let mut seqs: Vec<String> = (0..6)
        .map(|_| {
            let line = client.recv_line().unwrap();
            assert!(line.contains("\"ok\":true"), "{line}");
            seq_of(&line)
        })
        .collect();
    seqs.sort();
    assert_eq!(
        seqs,
        ["\"c0\"", "\"c1\"", "\"c2\"", "\"c3\"", "\"c4\"", "\"c5\""]
    );

    // A duplicate of an in-flight seq is rejected with a structured error.
    client.send_line(&slow_line("dup")).unwrap();
    client.send_line(&slow_line("dup")).unwrap();
    let first = client.recv_line().unwrap();
    let second = client.recv_line().unwrap();
    let (rejected, completed) = if first.contains("\"ok\":false") {
        (first, second)
    } else {
        (second, first)
    };
    assert!(
        rejected.contains("already in flight"),
        "duplicate must be named: {rejected}"
    );
    assert!(completed.contains("\"ok\":true"), "{completed}");

    // The stats verb reports the pipelining counters and rejects seq.
    let stats = client.roundtrip(r#"{"op":"stats"}"#).unwrap();
    let value = json::parse(&stats).unwrap();
    let ops = value.get("ops").unwrap();
    // 6 capped + the first "dup": the rejected duplicate never counts as
    // admitted pipelined work.
    assert_eq!(
        ops.get("pipelined").and_then(Json::as_f64),
        Some(7.0),
        "{stats}"
    );
    assert_eq!(
        value.get("max_inflight").and_then(Json::as_f64),
        Some(2.0),
        "{stats}"
    );
    let tagged_stats = client.roundtrip(r#"{"op":"stats","seq":9}"#).unwrap();
    assert!(
        tagged_stats.contains("\"ok\":false") && tagged_stats.contains("unknown field `seq`"),
        "{tagged_stats}"
    );

    shutdown.shutdown();
    expect_clean_exit(&done);
}
