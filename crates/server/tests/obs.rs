//! End-to-end observability tests over a real loopback socket:
//!
//! 1. the `metrics` snapshot is **self-consistent** after a
//!    multi-connection soak — for every latency-tracked verb, the
//!    histogram's derived count equals the verb's op counter (the one
//!    structural exception: the reporting `metrics` request itself is
//!    still in flight when the snapshot is taken, so its own histogram
//!    trails its op counter by exactly one);
//! 2. a traced, pipelined request's span comes back over the `trace` verb
//!    with monotone stage timestamps, the full queued → … → written
//!    lifecycle, per-shard worker/steal provenance, and a `stolen_shards`
//!    count that agrees with the engine's `steals` counter delta.

use slade_engine::EngineConfig;
use slade_server::json::Json;
use slade_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

fn start_server(engine: EngineConfig) -> (SocketAddr, mpsc::Receiver<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        request_timeout: STEP,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

fn parse(response: &str) -> Json {
    slade_server::json::parse(response).expect("responses are valid JSON")
}

fn field_f64(value: &Json, key: &str) -> f64 {
    value
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {value}"))
}

#[test]
fn metrics_snapshot_is_self_consistent_after_a_multi_connection_soak() {
    let (addr, done) = start_server(EngineConfig {
        threads: 3,
        cache_capacity: 16,
        ..EngineConfig::default()
    });

    // Four concurrent connections, each mixing untagged, tagged, and
    // traced requests, plus store traffic and read-only verbs — every
    // response is consumed, so each client quiesces before it exits.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            thread::spawn(move || {
                let mut client = connect(addr);
                for i in 0..3 {
                    let line = format!("{{\"tasks\":{},\"threshold\":0.9}}", 2 + i);
                    client.roundtrip(&line).expect("untagged solve");
                }
                // A traced solve retained under a per-connection plan id,
                // then an (also traced) resubmit against it.
                let id = format!("plan-{c}");
                client
                    .roundtrip(&format!(
                        "{{\"op\":\"solve\",\"id\":\"{id}\",\"tasks\":4,\"trace\":true}}"
                    ))
                    .expect("traced solve");
                client
                    .roundtrip(&format!(
                        "{{\"op\":\"resubmit\",\"id\":\"{id}\",\"delta\":{{\"resize\":8}},\"trace\":true}}"
                    ))
                    .expect("traced resubmit");
                // Pipelined window (tagged solves answered out of line).
                let lines: Vec<String> = (1..=4)
                    .map(|n| format!("{{\"tasks\":{n},\"threshold\":0.85}}"))
                    .collect();
                client.pipeline(&lines, 4).expect("pipelined solves");
                // Read-only verbs and a deliberate error (unknown plan id).
                client.roundtrip("{\"op\":\"stats\"}").expect("stats");
                client.roundtrip("{\"op\":\"trace\"}").expect("trace");
                client
                    .roundtrip("{\"op\":\"claim\",\"id\":\"nope\"}")
                    .expect("claim error response");
                let batch = "{\"op\":\"batch\",\"requests\":[{\"tasks\":2},{\"tasks\":3}]}";
                client.roundtrip(batch).expect("batch");
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let mut client = connect(addr);
    // Session teardown is asynchronous (a reader notices EOF on its poll),
    // so wait until the four soak sessions have counted themselves out
    // before pinning the snapshot. Polling is safe for the consistency
    // check below: each poll's sample is recorded before its response is
    // read, so the metrics off-by-one stays exactly one.
    let deadline = std::time::Instant::now() + STEP;
    let metrics = loop {
        let metrics = parse(&client.roundtrip("{\"op\":\"metrics\"}").unwrap());
        let sessions = metrics.get("sessions").expect("sessions section");
        if field_f64(sessions, "active") == 1.0 {
            break metrics;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "soak sessions never drained: {metrics}"
        );
        thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)), "{metrics}");
    let ops = metrics.get("ops").expect("metrics carries ops");
    let latency = metrics.get("latency").expect("metrics carries latency");

    // The soak is quiescent: every earlier response was read by its
    // client, and the writer records the latency sample *before* the
    // response bytes go out — so every counted request has its histogram
    // sample. The `metrics` verb reporting this snapshot is the one
    // structural exception: its own sample lands only when its response
    // is written, after the snapshot.
    for verb in [
        "solve", "batch", "resubmit", "claim", "release", "stats", "metrics", "trace",
    ] {
        let counted = field_f64(ops, verb);
        let sampled = field_f64(latency.get(verb).expect(verb), "count");
        let expected = if verb == "metrics" {
            counted - 1.0
        } else {
            counted
        };
        assert_eq!(
            sampled, expected,
            "latency.{verb}.count vs ops.{verb} in {metrics}"
        );
    }
    assert_eq!(
        field_f64(ops, "solve"),
        4.0 * (3.0 + 1.0 + 4.0),
        "{metrics}"
    );
    assert_eq!(
        field_f64(ops, "timeouts"),
        0.0,
        "nothing expired: {metrics}"
    );
    assert_eq!(field_f64(ops, "errors"), 4.0, "one claim error per client");

    // The cache section carries the sharded-cache fields, consistent with
    // each other: occupancy sums over the per-shard array, and the registry
    // gauges the verb mirrors agree with the section.
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(
        cache.get("impl").and_then(Json::as_str),
        Some("sharded"),
        "{metrics}"
    );
    assert_eq!(field_f64(cache, "capacity"), 16.0, "{metrics}");
    let per_shard = cache
        .get("shard_occupancy")
        .and_then(Json::as_array)
        .expect("per-shard occupancy array");
    assert_eq!(per_shard.len() as f64, field_f64(cache, "shards"));
    let occupancy_sum: f64 = per_shard.iter().filter_map(Json::as_f64).sum();
    assert_eq!(occupancy_sum, field_f64(cache, "entries"), "{metrics}");
    assert!(
        field_f64(cache, "hits") > 0.0,
        "repeated (bins, θ) pairs must hit: {metrics}"
    );

    // Engine/store/session/trace sections are present and sane.
    let engine = metrics.get("engine").expect("engine section");
    assert_eq!(field_f64(engine, "threads"), 3.0);
    assert!(field_f64(engine, "parks") >= 1.0, "idle workers park");
    let store = metrics.get("store").expect("store section");
    assert_eq!(
        field_f64(store, "plans"),
        4.0,
        "one retained plan per client"
    );
    let sessions = metrics.get("sessions").expect("sessions section");
    assert_eq!(field_f64(sessions, "opened"), 5.0);
    let traces = metrics.get("traces").expect("traces section");
    assert_eq!(field_f64(traces, "recorded"), 8.0, "two traced per client");

    // Latency quantiles come off real samples: p50 ≤ p99 and both > 0
    // for a verb that did work.
    let solve = latency.get("solve").unwrap();
    assert!(field_f64(solve, "p50_ns") > 0.0, "{metrics}");
    assert!(field_f64(solve, "p50_ns") <= field_f64(solve, "p99_ns"));

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}

#[test]
fn traced_pipelined_request_reports_its_full_lifecycle_and_steal_provenance() {
    // 64 homogeneous tasks shard into 8 jobs on 2 workers: every job is
    // submitted from the session reader, so workers must pull — and
    // frequently steal — to run them.
    let (addr, done) = start_server(EngineConfig {
        threads: 2,
        homogeneous_shard: Some(8),
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let mut client = connect(addr);

    let stats_before = parse(&client.roundtrip("{\"op\":\"stats\"}").unwrap());
    let steals_before = field_f64(&stats_before, "steals");

    let response = parse(
        &client
            .roundtrip("{\"op\":\"solve\",\"tasks\":64,\"threshold\":0.9,\"seq\":7,\"trace\":true}")
            .unwrap(),
    );
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    assert_eq!(field_f64(&response, "seq"), 7.0, "tag echoed");
    let trace_id = field_f64(&response, "trace");
    assert!(trace_id >= 1.0, "a minted trace id is echoed: {response}");

    let stats_after = parse(&client.roundtrip("{\"op\":\"stats\"}").unwrap());
    let steal_delta = field_f64(&stats_after, "steals") - steals_before;

    // The client has read the solve response, so its span is already in
    // the ring (the writer sinks the span before writing the response).
    let traces = parse(&client.roundtrip("{\"op\":\"trace\",\"limit\":1}").unwrap());
    let spans = traces
        .get("spans")
        .and_then(Json::as_array)
        .expect("trace returns spans");
    assert_eq!(spans.len(), 1, "{traces}");
    let span = &spans[0];
    assert_eq!(field_f64(span, "id"), trace_id);
    assert_eq!(span.get("op").and_then(Json::as_str), Some("solve"));
    assert_eq!(span.get("seq").and_then(Json::as_str), Some("7"));

    let events = span.get("events").and_then(Json::as_array).unwrap();
    let stages: Vec<&str> = events
        .iter()
        .map(|e| e.get("stage").and_then(Json::as_str).unwrap())
        .collect();
    // Lifecycle order: the plain stages appear exactly once, in order,
    // with the 8 shard start/finish pairs in between.
    for stage in ["queued", "admitted", "dispatched", "merged", "written"] {
        assert_eq!(
            stages.iter().filter(|s| **s == stage).count(),
            1,
            "stage {stage} in {stages:?}"
        );
    }
    let position = |stage: &str| stages.iter().position(|s| *s == stage).unwrap();
    assert!(position("queued") < position("admitted"));
    assert!(position("admitted") < position("dispatched"));
    assert!(position("dispatched") < position("merged"));
    assert!(position("merged") < position("written"));
    assert_eq!(*stages.last().unwrap(), "written");
    assert_eq!(stages.iter().filter(|s| **s == "shard_start").count(), 8);
    assert_eq!(stages.iter().filter(|s| **s == "shard_finish").count(), 8);

    // Timestamps are monotone across all threads that stamped them.
    let at_ns: Vec<f64> = events.iter().map(|e| field_f64(e, "at_ns")).collect();
    assert!(
        at_ns.windows(2).all(|w| w[0] <= w[1]),
        "stage timestamps must be monotone: {at_ns:?}"
    );

    // Every shard stage carries provenance, and the span's stolen count
    // agrees with both its own events and the engine's steal counter
    // delta (this request was the only work in the pool).
    let stolen_starts = events
        .iter()
        .filter(|e| {
            e.get("stage").and_then(Json::as_str) == Some("shard_start")
                && e.get("stolen") == Some(&Json::Bool(true))
        })
        .count() as f64;
    for event in events
        .iter()
        .filter(|e| e.get("stage").and_then(Json::as_str) == Some("shard_start"))
    {
        assert!(event.get("shard").is_some() && event.get("worker").is_some());
    }
    assert_eq!(field_f64(span, "stolen_shards"), stolen_starts, "{span}");
    assert_eq!(steal_delta, stolen_starts, "span vs engine steal counter");

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}
