//! End-to-end observability tests over a real loopback socket:
//!
//! 1. the `metrics` snapshot is **self-consistent** after a
//!    multi-connection soak — for every latency-tracked verb, the
//!    histogram's derived count equals the verb's op counter (the one
//!    structural exception: the reporting `metrics` request itself is
//!    still in flight when the snapshot is taken, so its own histogram
//!    trails its op counter by exactly one);
//! 2. a traced, pipelined request's span comes back over the `trace` verb
//!    with monotone stage timestamps, the full queued → … → written
//!    lifecycle, per-shard worker/steal provenance, and a `stolen_shards`
//!    count that agrees with the engine's `steals` counter delta;
//! 3. the windowed metrics demonstrably decay: a burst shows up in the
//!    sliding-window view, and after idling past the window the windowed
//!    counts read zero while the lifetime numbers hold;
//! 4. the `health` verb flips `ok` → `degraded` → `ok` under injected
//!    queue saturation (a condvar-gated solver on a one-worker engine);
//! 5. the HTTP `GET /metrics` responder serves parseable Prometheus text
//!    (every line a `# TYPE` comment or a `name value` sample) and 404s
//!    anything else.

use slade_core::bin_set::BinSet;
use slade_core::plan::DecompositionPlan;
use slade_core::solver::{DecompositionSolver, PreparedSolver};
use slade_core::task::Workload;
use slade_core::SladeError;
use slade_engine::EngineConfig;
use slade_server::json::Json;
use slade_server::{Client, ObsOptions, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How long any single test step may block before the test fails.
const STEP: Duration = Duration::from_secs(20);

fn start_server_with(
    config: ServerConfig,
) -> (
    SocketAddr,
    Option<SocketAddr>,
    mpsc::Receiver<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("binding an ephemeral loopback port");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_local_addr();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    (addr, metrics_addr, rx)
}

fn start_server(engine: EngineConfig) -> (SocketAddr, mpsc::Receiver<std::io::Result<()>>) {
    let (addr, _, rx) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        request_timeout: STEP,
        ..ServerConfig::default()
    });
    (addr, rx)
}

fn connect(addr: SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the test server");
    client.set_read_timeout(Some(STEP)).unwrap();
    client
}

fn parse(response: &str) -> Json {
    slade_server::json::parse(response).expect("responses are valid JSON")
}

fn field_f64(value: &Json, key: &str) -> f64 {
    value
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {value}"))
}

#[test]
fn metrics_snapshot_is_self_consistent_after_a_multi_connection_soak() {
    let (addr, done) = start_server(EngineConfig {
        threads: 3,
        cache_capacity: 16,
        ..EngineConfig::default()
    });

    // Four concurrent connections, each mixing untagged, tagged, and
    // traced requests, plus store traffic and read-only verbs — every
    // response is consumed, so each client quiesces before it exits.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            thread::spawn(move || {
                let mut client = connect(addr);
                for i in 0..3 {
                    let line = format!("{{\"tasks\":{},\"threshold\":0.9}}", 2 + i);
                    client.roundtrip(&line).expect("untagged solve");
                }
                // A traced solve retained under a per-connection plan id,
                // then an (also traced) resubmit against it.
                let id = format!("plan-{c}");
                client
                    .roundtrip(&format!(
                        "{{\"op\":\"solve\",\"id\":\"{id}\",\"tasks\":4,\"trace\":true}}"
                    ))
                    .expect("traced solve");
                client
                    .roundtrip(&format!(
                        "{{\"op\":\"resubmit\",\"id\":\"{id}\",\"delta\":{{\"resize\":8}},\"trace\":true}}"
                    ))
                    .expect("traced resubmit");
                // Pipelined window (tagged solves answered out of line).
                let lines: Vec<String> = (1..=4)
                    .map(|n| format!("{{\"tasks\":{n},\"threshold\":0.85}}"))
                    .collect();
                client.pipeline(&lines, 4).expect("pipelined solves");
                // Read-only verbs and a deliberate error (unknown plan id).
                client.roundtrip("{\"op\":\"stats\"}").expect("stats");
                client.roundtrip("{\"op\":\"trace\"}").expect("trace");
                client
                    .roundtrip("{\"op\":\"claim\",\"id\":\"nope\"}")
                    .expect("claim error response");
                let batch = "{\"op\":\"batch\",\"requests\":[{\"tasks\":2},{\"tasks\":3}]}";
                client.roundtrip(batch).expect("batch");
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let mut client = connect(addr);
    // Session teardown is asynchronous (a reader notices EOF on its poll),
    // so wait until the four soak sessions have counted themselves out
    // before pinning the snapshot. Polling is safe for the consistency
    // check below: each poll's sample is recorded before its response is
    // read, so the metrics off-by-one stays exactly one.
    let deadline = std::time::Instant::now() + STEP;
    let metrics = loop {
        let metrics = parse(&client.roundtrip("{\"op\":\"metrics\"}").unwrap());
        let sessions = metrics.get("sessions").expect("sessions section");
        if field_f64(sessions, "active") == 1.0 {
            break metrics;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "soak sessions never drained: {metrics}"
        );
        thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)), "{metrics}");
    let ops = metrics.get("ops").expect("metrics carries ops");
    let latency = metrics.get("latency").expect("metrics carries latency");

    // The soak is quiescent: every earlier response was read by its
    // client, and the writer records the latency sample *before* the
    // response bytes go out — so every counted request has its histogram
    // sample. The `metrics` verb reporting this snapshot is the one
    // structural exception: its own sample lands only when its response
    // is written, after the snapshot.
    for verb in [
        "solve", "batch", "resubmit", "claim", "release", "stats", "metrics", "trace",
    ] {
        let counted = field_f64(ops, verb);
        let sampled = field_f64(latency.get(verb).expect(verb), "count");
        let expected = if verb == "metrics" {
            counted - 1.0
        } else {
            counted
        };
        assert_eq!(
            sampled, expected,
            "latency.{verb}.count vs ops.{verb} in {metrics}"
        );
    }
    assert_eq!(
        field_f64(ops, "solve"),
        4.0 * (3.0 + 1.0 + 4.0),
        "{metrics}"
    );
    assert_eq!(
        field_f64(ops, "timeouts"),
        0.0,
        "nothing expired: {metrics}"
    );
    assert_eq!(field_f64(ops, "errors"), 4.0, "one claim error per client");

    // The cache section carries the sharded-cache fields, consistent with
    // each other: occupancy sums over the per-shard array, and the registry
    // gauges the verb mirrors agree with the section.
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(
        cache.get("impl").and_then(Json::as_str),
        Some("sharded"),
        "{metrics}"
    );
    assert_eq!(field_f64(cache, "capacity"), 16.0, "{metrics}");
    let per_shard = cache
        .get("shard_occupancy")
        .and_then(Json::as_array)
        .expect("per-shard occupancy array");
    assert_eq!(per_shard.len() as f64, field_f64(cache, "shards"));
    let occupancy_sum: f64 = per_shard.iter().filter_map(Json::as_f64).sum();
    assert_eq!(occupancy_sum, field_f64(cache, "entries"), "{metrics}");
    assert!(
        field_f64(cache, "hits") > 0.0,
        "repeated (bins, θ) pairs must hit: {metrics}"
    );

    // Engine/store/session/trace sections are present and sane.
    let engine = metrics.get("engine").expect("engine section");
    assert_eq!(field_f64(engine, "threads"), 3.0);
    assert!(field_f64(engine, "parks") >= 1.0, "idle workers park");
    let store = metrics.get("store").expect("store section");
    assert_eq!(
        field_f64(store, "plans"),
        4.0,
        "one retained plan per client"
    );
    let sessions = metrics.get("sessions").expect("sessions section");
    assert_eq!(field_f64(sessions, "opened"), 5.0);
    let traces = metrics.get("traces").expect("traces section");
    assert_eq!(field_f64(traces, "recorded"), 8.0, "two traced per client");

    // Latency quantiles come off real samples: p50 ≤ p99 and both > 0
    // for a verb that did work.
    let solve = latency.get("solve").unwrap();
    assert!(field_f64(solve, "p50_ns") > 0.0, "{metrics}");
    assert!(field_f64(solve, "p50_ns") <= field_f64(solve, "p99_ns"));

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}

#[test]
fn traced_pipelined_request_reports_its_full_lifecycle_and_steal_provenance() {
    // 64 homogeneous tasks shard into 8 jobs on 2 workers: every job is
    // submitted from the session reader, so workers must pull — and
    // frequently steal — to run them.
    let (addr, done) = start_server(EngineConfig {
        threads: 2,
        homogeneous_shard: Some(8),
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let mut client = connect(addr);

    let stats_before = parse(&client.roundtrip("{\"op\":\"stats\"}").unwrap());
    let steals_before = field_f64(&stats_before, "steals");

    let response = parse(
        &client
            .roundtrip("{\"op\":\"solve\",\"tasks\":64,\"threshold\":0.9,\"seq\":7,\"trace\":true}")
            .unwrap(),
    );
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    assert_eq!(field_f64(&response, "seq"), 7.0, "tag echoed");
    let trace_id = field_f64(&response, "trace");
    assert!(trace_id >= 1.0, "a minted trace id is echoed: {response}");

    let stats_after = parse(&client.roundtrip("{\"op\":\"stats\"}").unwrap());
    let steal_delta = field_f64(&stats_after, "steals") - steals_before;

    // The client has read the solve response, so its span is already in
    // the ring (the writer sinks the span before writing the response).
    let traces = parse(&client.roundtrip("{\"op\":\"trace\",\"limit\":1}").unwrap());
    let spans = traces
        .get("spans")
        .and_then(Json::as_array)
        .expect("trace returns spans");
    assert_eq!(spans.len(), 1, "{traces}");
    let span = &spans[0];
    assert_eq!(field_f64(span, "id"), trace_id);
    assert_eq!(span.get("op").and_then(Json::as_str), Some("solve"));
    assert_eq!(span.get("seq").and_then(Json::as_str), Some("7"));

    let events = span.get("events").and_then(Json::as_array).unwrap();
    let stages: Vec<&str> = events
        .iter()
        .map(|e| e.get("stage").and_then(Json::as_str).unwrap())
        .collect();
    // Lifecycle order: the plain stages appear exactly once, in order,
    // with the 8 shard start/finish pairs in between.
    for stage in ["queued", "admitted", "dispatched", "merged", "written"] {
        assert_eq!(
            stages.iter().filter(|s| **s == stage).count(),
            1,
            "stage {stage} in {stages:?}"
        );
    }
    let position = |stage: &str| stages.iter().position(|s| *s == stage).unwrap();
    assert!(position("queued") < position("admitted"));
    assert!(position("admitted") < position("dispatched"));
    assert!(position("dispatched") < position("merged"));
    assert!(position("merged") < position("written"));
    assert_eq!(*stages.last().unwrap(), "written");
    assert_eq!(stages.iter().filter(|s| **s == "shard_start").count(), 8);
    assert_eq!(stages.iter().filter(|s| **s == "shard_finish").count(), 8);

    // Timestamps are monotone across all threads that stamped them.
    let at_ns: Vec<f64> = events.iter().map(|e| field_f64(e, "at_ns")).collect();
    assert!(
        at_ns.windows(2).all(|w| w[0] <= w[1]),
        "stage timestamps must be monotone: {at_ns:?}"
    );

    // Every shard stage carries provenance, and the span's stolen count
    // agrees with both its own events and the engine's steal counter
    // delta (this request was the only work in the pool).
    let stolen_starts = events
        .iter()
        .filter(|e| {
            e.get("stage").and_then(Json::as_str) == Some("shard_start")
                && e.get("stolen") == Some(&Json::Bool(true))
        })
        .count() as f64;
    for event in events
        .iter()
        .filter(|e| e.get("stage").and_then(Json::as_str) == Some("shard_start"))
    {
        assert!(event.get("shard").is_some() && event.get("worker").is_some());
    }
    assert_eq!(field_f64(span, "stolen_shards"), stolen_starts, "{span}");
    assert_eq!(steal_delta, stolen_starts, "span vs engine steal counter");

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}

#[test]
fn windowed_metrics_decay_while_lifetime_numbers_hold() {
    // A short 400ms window so the test can outlive it: burst ten solves,
    // see them in the windowed view, idle past the window, see the
    // windowed counts at zero with the lifetime histogram untouched.
    let window = Duration::from_millis(400);
    let (addr, _, done) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 2,
            cache_capacity: 16,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        obs: ObsOptions {
            window,
            window_slots: 8,
            ..ObsOptions::default()
        },
        ..ServerConfig::default()
    });
    let mut client = connect(addr);
    for i in 0..10u32 {
        let line = format!("{{\"tasks\":{},\"threshold\":0.9}}", 2 + i);
        client.roundtrip(&line).expect("burst solve");
    }

    let metrics = parse(&client.roundtrip("{\"op\":\"metrics\"}").unwrap());
    let latency = metrics.get("latency").expect("latency section");
    let solve = latency.get("solve").expect("solve row");
    assert_eq!(field_f64(solve, "count"), 10.0, "{metrics}");
    // The whole burst just happened; on a grossly overloaded machine the
    // oldest samples may already have aged, but some must be visible.
    assert!(
        field_f64(solve, "window_count") > 0.0,
        "burst must show in the window: {metrics}"
    );
    assert!(field_f64(solve, "window_p50_ns") > 0.0, "{metrics}");
    let window_section = metrics.get("window").expect("window section");
    assert_eq!(
        window_section.get("enabled"),
        Some(&Json::Bool(true)),
        "{metrics}"
    );
    assert!(field_f64(window_section, "requests") > 0.0, "{metrics}");

    // Idle past the window (plus a sub-window of slack for boundary skew).
    thread::sleep(window + Duration::from_millis(200));

    let metrics = parse(&client.roundtrip("{\"op\":\"metrics\"}").unwrap());
    let solve = metrics
        .get("latency")
        .expect("latency section")
        .get("solve")
        .expect("solve row");
    assert_eq!(
        field_f64(solve, "count"),
        10.0,
        "lifetime count holds: {metrics}"
    );
    assert!(
        field_f64(solve, "p50_ns") > 0.0,
        "lifetime quantiles hold: {metrics}"
    );
    assert_eq!(
        field_f64(solve, "window_count"),
        0.0,
        "the burst aged out of the window: {metrics}"
    );
    assert_eq!(
        field_f64(solve, "window_per_sec"),
        0.0,
        "no windowed rate without windowed samples: {metrics}"
    );

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}

/// A solver that parks on a test-controlled gate: it announces it started,
/// then blocks until the test releases it — the vehicle for holding the
/// engine's one worker busy while a second request saturates the queue.
#[derive(Debug)]
struct GatedSolver {
    gate: Arc<(Mutex<(usize, bool)>, Condvar)>,
}

impl DecompositionSolver for GatedSolver {
    fn name(&self) -> &'static str {
        "GatedGreedy"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        let (lock, condvar) = &*self.gate;
        let mut state = lock.lock().unwrap();
        state.0 += 1;
        condvar.notify_all();
        while !state.1 {
            state = condvar.wait(state).unwrap();
        }
        drop(state);
        slade_core::greedy::Greedy.solve(workload, bins)
    }
}

impl PreparedSolver for GatedSolver {}

#[test]
fn health_flips_to_degraded_under_queue_saturation_and_recovers() {
    // One worker, queue capacity 2: one gated solve occupies the worker,
    // a second waits in the queue — depth 1 of capacity 2 is exactly the
    // 0.5 degraded threshold. Releasing the gate drains the queue and
    // health returns to ok.
    let gate: Arc<(Mutex<(usize, bool)>, Condvar)> =
        Arc::new((Mutex::new((0, false)), Condvar::new()));
    let middleware_gate = Arc::clone(&gate);
    let (addr, _, done) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 1,
            queue_capacity: 2,
            cache_capacity: 16,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        request_middleware: Some(Arc::new(move |request: slade_engine::EngineRequest| {
            if request.algorithm == slade_core::solver::Algorithm::Greedy
                && request.workload.len() == 13
            {
                request.with_solver(Arc::new(GatedSolver {
                    gate: Arc::clone(&middleware_gate),
                }))
            } else {
                request
            }
        })),
        ..ServerConfig::default()
    });

    let mut watcher = connect(addr);
    let health = parse(&watcher.roundtrip("{\"op\":\"health\"}").unwrap());
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)), "{health}");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("ok"),
        "an idle server is ready: {health}"
    );

    // Two gated solves pipelined on their own connection (the client tags
    // them with seq itself — a pre-tagged line would be a pipeline
    // barrier): the first parks in the solver, the second sits in the
    // engine queue.
    let solver_thread = thread::spawn(move || {
        let mut client = connect(addr);
        let lines = [
            r#"{"algorithm":"greedy","tasks":13}"#,
            r#"{"algorithm":"greedy","tasks":13}"#,
        ];
        client.pipeline(&lines, 2).expect("gated solves")
    });
    // Wait until the first solve actually occupies the worker.
    {
        let (lock, condvar) = &*gate;
        let state = lock.lock().unwrap();
        let (state, timeout) = condvar
            .wait_timeout_while(state, STEP, |(started, _)| *started == 0)
            .unwrap();
        assert!(!timeout.timed_out(), "gated solver never started");
        drop(state);
    }

    // The queued second request pushes saturation to 0.5: degraded, with
    // the queue signal named in the reasons.
    let deadline = std::time::Instant::now() + STEP;
    let degraded = loop {
        let health = parse(&watcher.roundtrip("{\"op\":\"health\"}").unwrap());
        if health.get("status").and_then(Json::as_str) == Some("degraded") {
            break health;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health never degraded: {health}"
        );
        thread::sleep(Duration::from_millis(10));
    };
    let queue = degraded
        .get("signals")
        .and_then(|s| s.get("queue"))
        .expect("queue signal");
    assert_eq!(
        queue.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{degraded}"
    );
    assert_eq!(field_f64(queue, "depth"), 1.0, "{degraded}");
    assert_eq!(field_f64(queue, "capacity"), 2.0, "{degraded}");
    let reasons = degraded
        .get("reasons")
        .and_then(Json::as_array)
        .expect("reasons array");
    assert!(
        reasons
            .iter()
            .filter_map(Json::as_str)
            .any(|r| r.contains("queue saturation")),
        "{degraded}"
    );

    // Release the gate: both solves complete and health recovers.
    {
        let (lock, condvar) = &*gate;
        lock.lock().unwrap().1 = true;
        condvar.notify_all();
    }
    let responses = solver_thread.join().expect("solver client thread");
    assert_eq!(responses.len(), 2);
    for response in &responses {
        assert!(response.contains("\"ok\":true"), "{response}");
    }

    let deadline = std::time::Instant::now() + STEP;
    loop {
        let health = parse(&watcher.roundtrip("{\"op\":\"health\"}").unwrap());
        if health.get("status").and_then(Json::as_str) == Some("ok") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health never recovered: {health}"
        );
        thread::sleep(Duration::from_millis(10));
    }

    watcher.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}

/// One raw HTTP GET against the metrics responder; returns (status line,
/// headers, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the metrics listener");
    stream.set_read_timeout(Some(STEP)).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("writing the request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("reading the response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn prometheus_exposition_serves_parseable_text_over_http() {
    let (addr, metrics_addr, done) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            threads: 2,
            cache_capacity: 16,
            ..EngineConfig::default()
        },
        request_timeout: STEP,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    });
    let metrics_addr = metrics_addr.expect("a metrics listener must bind when configured");

    let mut client = connect(addr);
    client
        .roundtrip("{\"tasks\":4,\"threshold\":0.95}")
        .expect("solve");

    let (status, headers, body) = http_get(metrics_addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(
        headers.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {headers}"
    );
    for expected in [
        "# TYPE slade_build_info gauge",
        "slade_build_info{version=\"",
        "slade_ops_solve_total 1",
        "# TYPE slade_latency_solve histogram",
        "slade_latency_solve_bucket{le=\"+Inf\"} 1",
        "slade_latency_solve_count 1",
        "# TYPE slade_health_status gauge",
        "slade_health_status 0",
        "slade_process_uptime_seconds",
        "slade_ops_solve_window",
        "slade_latency_solve_window_p99_ns",
    ] {
        assert!(body.contains(expected), "missing `{expected}` in:\n{body}");
    }
    // Parseability: every line is a `# TYPE` comment or a `name value`
    // sample with a sanitized name and a numeric value.
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            assert!(parts.next().is_some(), "TYPE line names a metric: {line}");
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                "known kind: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line: `name value`");
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.starts_with("slade_")
                && bare
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "sanitized slade_-prefixed name: {line}"
        );
        assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
    }

    // A second scrape works (connections are one-shot), and anything but
    // GET /metrics is a 404.
    let (status, _, _) = http_get(metrics_addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    let (status, _, _) = http_get(metrics_addr, "/nope");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");

    client.roundtrip("{\"op\":\"shutdown\"}").unwrap();
    done.recv_timeout(STEP)
        .expect("server must shut down")
        .expect("clean exit");
}
