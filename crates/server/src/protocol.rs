//! The line-delimited JSON protocol: request parsing and response shapes.
//!
//! Every request is one JSON object per line. The `op` member selects the
//! verb (defaulting to `"solve"`, so the plain JSONL request lines that
//! feed `slade-cli batch` work over the wire unchanged):
//!
//! | verb | request members | response |
//! |------|-----------------|----------|
//! | `solve` | the engine fields (`algorithm`, `tasks`, `threshold`, `thresholds`, `bins`, `seed`), optional `id` (retain the resolved plan in the session), optional `plan` (include the full plan), optional `seq` (pipeline the request) | summary + shard/reuse counters |
//! | `batch` | `requests`: array of engine-field objects, optional `seq` | per-request summaries, in order |
//! | `resubmit` | `id`, `delta` (one of `resize` / `set_thresholds` / `append`), optional `plan`, optional `seq` | summary + reuse counters for the re-solve |
//! | `claim` | `id` (`seq` is rejected: leases move in line, at their position in the request stream) | ack; this session now holds the plan id's lease |
//! | `release` | `id` (`seq` is rejected, as for `claim`) | ack; the plan id is unleased and claimable by any session |
//! | `stats` | — (`seq` is rejected: stats answer in line, at their position in the request stream) | cache, per-op and per-algorithm counters |
//! | `metrics` | — (`seq` is rejected, as for `stats`) | full observability snapshot: op counters, cache rates, engine/scheduler gauges, store contention, per-verb latency histogram quantiles |
//! | `trace` | optional `limit` (`seq` is rejected, as for `stats`) | the newest completed request spans, oldest first |
//! | `health` | — (`seq` is rejected, as for `stats`) | readiness from live signals: `ok`/`degraded`/`unhealthy` with per-signal detail and reasons |
//! | `profile` | optional `limit` (`seq` is rejected, as for `stats`) | per-phase wall-time breakdown aggregated from the newest completed spans |
//! | `shutdown` | — (`seq` is rejected: shutdown first drains every tagged in-flight request, then acks) | ack; the server then drains and exits |
//!
//! ## Tracing (`trace: true`)
//!
//! A `solve`/`batch`/`resubmit` request may carry `"trace": true` to opt
//! into end-to-end tracing: the server mints a trace id, records stage
//! timestamps (queued, admitted, dispatched, per-shard start/finish with
//! worker and steal provenance, merged, written) as the request moves
//! through the stack, echoes the id back as a `trace` member on the
//! response, and retains the completed span in a bounded ring readable via
//! the `trace` verb. Tracing changes nothing about the plan bytes.
//!
//! ## Plan ids, leases, and `code`
//!
//! Plan ids name entries in the **server-wide** plan store: a plan
//! retained by one connection can be resubmitted from another once it
//! holds the id's lease. Producing under an id (a `solve` with `id`, or a
//! `resubmit`) leases it to the producing session implicitly; `claim` and
//! `release` move the lease explicitly; a session's leases are released
//! when it disconnects (the plans stay). Conflicts come back as error
//! responses carrying a machine-readable `code` member alongside the
//! human-readable `error`:
//!
//! | `code` | meaning |
//! |--------|---------|
//! | `unknown_plan` | the id names no stored plan |
//! | `lease_conflict` | another session holds the id's lease |
//! | `pending_producer` | a solve/resubmit producing the id is still in flight |
//!
//! ## Pipelining (`seq`)
//!
//! A `solve`/`batch`/`resubmit` request may carry a client-chosen `seq`
//! tag (a string or a non-negative integer). Tagged requests are
//! dispatched to the engine **without blocking the session's read loop**
//! and answered *as they complete* — possibly out of request order — with
//! the response echoing the tag verbatim as its own `seq` member. Untagged
//! requests keep the strict request/response semantics: the session
//! executes them in line, so a client that never sends `seq` observes
//! exactly the pre-pipelining protocol. Response *bytes* are unaffected by
//! tagging: a tagged response equals its untagged counterpart plus the
//! echoed `seq` member.
//!
//! Responses always carry `"ok": true` or `"ok": false` with an `"error"`
//! string; a failed request never costs the connection. The full-plan
//! payload ([`plan_to_json`]) serializes through the shared shortest-
//! round-trip [`json`] serializer, which is what makes the
//! server's "resubmit ≡ cold solve, byte-identical" contract testable over
//! the wire.

use crate::json::{self, member, Json};
use slade_core::bin_set::BinSet;
use slade_core::plan::{DecompositionPlan, PlanAudit};
use slade_core::solver::Algorithm;
use slade_core::task::Workload;
use slade_engine::{EngineRequest, WorkloadDelta};
use std::sync::Arc;

/// The protocol verbs, for error messages and dispatch tables.
pub const VERBS: [&str; 11] = [
    "solve", "batch", "resubmit", "claim", "release", "stats", "metrics", "trace", "health",
    "profile", "shutdown",
];

/// One parsed protocol request.
#[derive(Debug)]
pub enum Request {
    /// Solve one instance; optionally retain the resolved plan under `id`.
    Solve {
        /// The engine request to run.
        request: EngineRequest,
        /// Session-scoped plan id to retain the result under, for
        /// follow-up `resubmit`s.
        id: Option<String>,
        /// Whether the response should embed the full plan.
        want_plan: bool,
        /// Pipelining tag; `Some` makes this request non-blocking (see the
        /// module docs).
        seq: Option<Json>,
        /// Whether the client opted into end-to-end tracing.
        trace: bool,
    },
    /// Solve several instances concurrently, summaries in request order.
    Batch {
        /// The engine requests, in order.
        requests: Vec<EngineRequest>,
        /// Pipelining tag; `Some` makes this request non-blocking.
        seq: Option<Json>,
        /// Whether the client opted into end-to-end tracing.
        trace: bool,
    },
    /// Re-solve a retained plan under a workload delta.
    Resubmit {
        /// The plan id chosen at `solve` time.
        id: String,
        /// The workload change to apply.
        delta: WorkloadDelta,
        /// Whether the response should embed the full plan.
        want_plan: bool,
        /// Pipelining tag; `Some` makes this request non-blocking.
        seq: Option<Json>,
        /// Whether the client opted into end-to-end tracing.
        trace: bool,
    },
    /// Take the lease on a stored plan id for this session.
    Claim {
        /// The plan id to lease.
        id: String,
    },
    /// Give up this session's lease on a stored plan id.
    Release {
        /// The plan id to unlease.
        id: String,
    },
    /// Report server counters.
    Stats,
    /// Report the full observability snapshot (counters, gauges, latency
    /// histogram quantiles).
    Metrics,
    /// Report the newest completed request spans, oldest first.
    Trace {
        /// Cap on the number of spans returned (the newest ones win).
        limit: Option<usize>,
    },
    /// Report readiness computed from live signals (queue saturation,
    /// windowed timeout/error rate, cache-eviction pressure, sessions).
    Health,
    /// Report the per-phase wall-time breakdown aggregated from the newest
    /// completed request spans.
    Profile {
        /// Cap on the number of spans aggregated (the newest ones win).
        limit: Option<usize>,
    },
    /// Drain and stop the server.
    Shutdown,
}

/// Parses one request line. Errors are plain strings; the caller decides
/// how to frame them (the server as an error response, the CLI with a line
/// number prefix).
pub fn parse_request(line: &str, default_bins: &Arc<BinSet>) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(members) = value.members() else {
        return Err(format!("expected a JSON object, got {}", value.type_name()));
    };
    let op = match value.get("op") {
        None => "solve",
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("`op` must be a string, got {}", v.type_name()))?,
    };
    match op {
        "solve" => {
            let request =
                parse_engine_request(&value, default_bins, &["op", "id", "plan", "seq", "trace"])?;
            Ok(Request::Solve {
                request,
                id: optional_string(&value, "id")?,
                want_plan: optional_bool(&value, "plan")?,
                seq: optional_seq(&value)?,
                trace: optional_bool(&value, "trace")?,
            })
        }
        "batch" => {
            for (key, _) in members {
                if !matches!(key.as_str(), "op" | "requests" | "seq" | "trace") {
                    return Err(format!(
                        "unknown field `{key}` for `batch` (expected op, requests, seq, trace)"
                    ));
                }
            }
            let items = value
                .get("requests")
                .and_then(Json::as_array)
                .ok_or("`batch` needs a `requests` array")?;
            let requests = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    parse_engine_request(item, default_bins, &[])
                        .map_err(|e| format!("request {i}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch {
                requests,
                seq: optional_seq(&value)?,
                trace: optional_bool(&value, "trace")?,
            })
        }
        "resubmit" => {
            for (key, _) in members {
                if !matches!(
                    key.as_str(),
                    "op" | "id" | "delta" | "plan" | "seq" | "trace"
                ) {
                    return Err(format!(
                        "unknown field `{key}` for `resubmit` \
                         (expected op, id, delta, plan, seq, trace)"
                    ));
                }
            }
            let id = optional_string(&value, "id")?
                .ok_or("`resubmit` needs the `id` of a retained plan")?;
            let delta = value.get("delta").ok_or("`resubmit` needs a `delta`")?;
            Ok(Request::Resubmit {
                id,
                delta: parse_delta(delta)?,
                want_plan: optional_bool(&value, "plan")?,
                seq: optional_seq(&value)?,
                trace: optional_bool(&value, "trace")?,
            })
        }
        "claim" | "release" => {
            // Like stats/shutdown, lease moves are deliberately
            // un-pipelinable: a lease answers at its position in the
            // request stream, so `seq` is an unknown field here.
            for (key, _) in members {
                if !matches!(key.as_str(), "op" | "id") {
                    return Err(format!(
                        "unknown field `{key}` for `{op}` (expected op, id)"
                    ));
                }
            }
            let id = optional_string(&value, "id")?.ok_or(format!("`{op}` needs a plan `id`"))?;
            Ok(if op == "claim" {
                Request::Claim { id }
            } else {
                Request::Release { id }
            })
        }
        "stats" | "metrics" | "health" | "shutdown" => {
            for (key, _) in members {
                if key != "op" {
                    return Err(format!("unknown field `{key}` for `{op}`"));
                }
            }
            Ok(match op {
                "stats" => Request::Stats,
                "metrics" => Request::Metrics,
                "health" => Request::Health,
                _ => Request::Shutdown,
            })
        }
        "trace" | "profile" => {
            // Like stats, trace/profile reads answer in line, at their
            // position in the request stream — `seq` is an unknown field
            // here.
            for (key, _) in members {
                if !matches!(key.as_str(), "op" | "limit") {
                    return Err(format!(
                        "unknown field `{key}` for `{op}` (expected op, limit)"
                    ));
                }
            }
            let limit = match value.get("limit") {
                None => None,
                Some(v) => Some(json_u32(v, "`limit`")? as usize),
            };
            Ok(if op == "trace" {
                Request::Trace { limit }
            } else {
                Request::Profile { limit }
            })
        }
        other => Err(format!(
            "unknown op `{other}`; expected one of: {}",
            VERBS.join(", ")
        )),
    }
}

/// Parses a [`WorkloadDelta`] object: exactly one of `{"resize": n}`,
/// `{"set_thresholds": [[task, t], ...]}`, `{"append": [t, ...]}`.
fn parse_delta(value: &Json) -> Result<WorkloadDelta, String> {
    let expected = "`delta` must be an object with exactly one of: \
                    resize, set_thresholds, append";
    let members = value.members().ok_or(expected)?;
    let [(verb, payload)] = members else {
        return Err(expected.to_string());
    };
    match verb.as_str() {
        "resize" => Ok(WorkloadDelta::Resize(json_u32(payload, "`resize`")?)),
        "set_thresholds" => {
            let pairs = payload
                .as_array()
                .ok_or("`set_thresholds` must be an array of [task, threshold] pairs")?;
            let changes = pairs
                .iter()
                .map(|pair| {
                    let [task, threshold] = pair.as_array().unwrap_or(&[]) else {
                        return Err(
                            "each `set_thresholds` entry must be a [task, threshold] pair"
                                .to_string(),
                        );
                    };
                    Ok((
                        json_u32(task, "`set_thresholds` task id")?,
                        json_f64(threshold, "`set_thresholds` threshold")?,
                    ))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(WorkloadDelta::SetThresholds(changes))
        }
        "append" => {
            let items = payload
                .as_array()
                .ok_or("`append` must be an array of thresholds")?;
            let thresholds = items
                .iter()
                .map(|t| json_f64(t, "`append` threshold"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(WorkloadDelta::Append(thresholds))
        }
        other => Err(format!(
            "unknown delta verb `{other}`; expected one of: resize, set_thresholds, append"
        )),
    }
}

/// Parses the engine fields of a request object into an [`EngineRequest`].
///
/// `extra_allowed` names protocol-level members (e.g. `op`, `id`) that may
/// accompany the engine fields; anything else unknown is rejected, the same
/// strictness `slade-cli batch` has always had. All fields are optional;
/// the defaults are the paper's Example 9 instance.
pub fn parse_engine_request(
    value: &Json,
    default_bins: &Arc<BinSet>,
    extra_allowed: &[&str],
) -> Result<EngineRequest, String> {
    const ENGINE_FIELDS: [&str; 6] = [
        "algorithm",
        "tasks",
        "threshold",
        "thresholds",
        "bins",
        "seed",
    ];
    let Some(members) = value.members() else {
        return Err(format!("expected a JSON object, got {}", value.type_name()));
    };
    for (key, _) in members {
        if !ENGINE_FIELDS.contains(&key.as_str()) && !extra_allowed.contains(&key.as_str()) {
            let mut expected: Vec<&str> = ENGINE_FIELDS.to_vec();
            expected.extend(extra_allowed);
            return Err(format!(
                "unknown field `{key}` (expected {})",
                expected.join(", ")
            ));
        }
    }

    let algorithm = match value.get("algorithm") {
        None => Algorithm::OpqBased,
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("`algorithm` must be a string, got {}", v.type_name()))?
            .parse()
            .map_err(|e| format!("{e}"))?,
    };

    let bins = match value.get("bins") {
        None => Arc::clone(default_bins),
        Some(v) => {
            let rows = v
                .as_array()
                .ok_or("`bins` must be an array of [l, r, c] triples")?;
            let mut triples = Vec::with_capacity(rows.len());
            for row in rows {
                let fields = row.as_array().unwrap_or(&[]);
                let [l, r, c] = fields else {
                    return Err("each bin must be an [l, r, c] triple".to_string());
                };
                triples.push((
                    json_u32(l, "bin cardinality")?,
                    json_f64(r, "bin confidence")?,
                    json_f64(c, "bin cost")?,
                ));
            }
            Arc::new(BinSet::new(triples).map_err(|e| e.to_string())?)
        }
    };

    let workload = match value.get("thresholds") {
        Some(v) => {
            // A request mixing both workload forms is rejected: silently
            // dropping a field would contradict the parser's strictness
            // everywhere else.
            for conflicting in ["tasks", "threshold"] {
                if value.get(conflicting).is_some() {
                    return Err(format!(
                        "`thresholds` conflicts with `{conflicting}`; give one or the other"
                    ));
                }
            }
            let items = v
                .as_array()
                .ok_or("`thresholds` must be an array of numbers")?;
            let thresholds = items
                .iter()
                .map(|t| json_f64(t, "threshold"))
                .collect::<Result<Vec<f64>, _>>()?;
            Workload::heterogeneous(thresholds)
        }
        None => {
            let tasks = match value.get("tasks") {
                None => 4,
                Some(v) => json_u32(v, "tasks")?,
            };
            let threshold = match value.get("threshold") {
                None => 0.95,
                Some(v) => json_f64(v, "threshold")?,
            };
            Workload::homogeneous(tasks, threshold)
        }
    }
    .map_err(|e| e.to_string())?;

    let seed = match value.get("seed") {
        None => 0xC0FFEE,
        Some(v) => {
            let x = json_f64(v, "seed")?;
            if x < 0.0 || x.fract() != 0.0 || x > 9.007_199_254_740_992e15 {
                return Err(format!("`seed` must be a non-negative integer, got {x}"));
            }
            x as u64
        }
    };

    Ok(EngineRequest::new(algorithm, workload, bins).with_seed(seed))
}

fn json_f64(value: &Json, what: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number, got {}", value.type_name()))
}

fn json_u32(value: &Json, what: &str) -> Result<u32, String> {
    let x = json_f64(value, what)?;
    if x < 0.0 || x.fract() != 0.0 || x > f64::from(u32::MAX) {
        return Err(format!("{what} must be a non-negative integer, got {x}"));
    }
    Ok(x as u32)
}

fn optional_string(value: &Json, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string, got {}", v.type_name())),
    }
}

fn optional_bool(value: &Json, key: &str) -> Result<bool, String> {
    match value.get(key) {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(v) => Err(format!("`{key}` must be a boolean, got {}", v.type_name())),
    }
}

/// Parses the optional pipelining tag: a string, or a non-negative integer
/// strictly below 2⁵³ — the range in which every integer has a unique
/// `f64` representation, so the echoed tag is always byte-identical to
/// what the client sent and distinct tags can never collide. (At 2⁵³
/// itself, 2⁵³ and 2⁵³+1 already parse to the same double.)
fn optional_seq(value: &Json) -> Result<Option<Json>, String> {
    match value.get("seq") {
        None => Ok(None),
        Some(v @ Json::String(_)) => Ok(Some(v.clone())),
        Some(v @ Json::Number(x)) => {
            if *x < 0.0 || x.fract() != 0.0 || *x >= 9.007_199_254_740_992e15 {
                return Err(format!(
                    "`seq` must be a string or a non-negative integer below 2^53, got {x}"
                ));
            }
            Ok(Some(v.clone()))
        }
        Some(v) => Err(format!(
            "`seq` must be a string or a non-negative integer, got {}",
            v.type_name()
        )),
    }
}

/// Best-effort recovery of a valid `seq` tag from a request line that
/// failed parsing, so even the error response can echo the tag and a
/// pipelining client can correlate it. `None` when the line has no
/// recoverable tag (unparseable JSON, missing or invalid `seq`).
pub fn recover_seq(line: &str) -> Option<Json> {
    let value = json::parse(line).ok()?;
    optional_seq(&value).ok().flatten()
}

/// The canonical JSON form of a [`DecompositionPlan`]: algorithm label,
/// accumulated cost, and every posted bin with its task assignment. Costs
/// and thresholds serialize in shortest-round-trip form, so two plans are
/// byte-identical here exactly when they are byte-identical in memory.
pub fn plan_to_json(plan: &DecompositionPlan) -> Json {
    Json::Object(vec![
        member("algorithm", Json::string(plan.algorithm())),
        member("total_cost", Json::number(plan.total_cost())),
        member(
            "bins",
            Json::Array(
                plan.bins()
                    .iter()
                    .map(|bin| {
                        Json::Object(vec![
                            member("cardinality", Json::number(f64::from(bin.cardinality()))),
                            member(
                                "tasks",
                                Json::Array(
                                    bin.tasks()
                                        .iter()
                                        .map(|&t| Json::number(f64::from(t)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The summary members shared by every solve-shaped response — the CLI's
/// `batch` result lines and the server's `solve`/`batch`/`resubmit`
/// responses are all assembled from this one function, so their field
/// names and value formatting cannot drift apart.
pub fn plan_summary_members(
    algorithm: Algorithm,
    workload: &Workload,
    audit: &PlanAudit,
) -> Vec<(String, Json)> {
    vec![
        member("algorithm", Json::string(algorithm.name())),
        member("tasks", Json::number(f64::from(workload.len()))),
        member("bins_posted", Json::number(audit.bins_posted as f64)),
        member("cost", Json::number(audit.total_cost)),
        member("feasible", Json::Bool(audit.feasible)),
    ]
}

/// A structured error response; `op` is included when the failing verb is
/// known (parse failures happen before the verb is), `seq` when the failing
/// request was tagged (so pipelining clients can correlate the error).
pub fn error_response(op: Option<&str>, seq: Option<&Json>, message: &str) -> Json {
    coded_error_response(op, seq, None, message)
}

/// [`error_response`] with an optional machine-readable `code` member (see
/// the module docs' code table) placed between `seq` and `error`, so
/// clients can branch on conflicts without parsing the message text.
pub fn coded_error_response(
    op: Option<&str>,
    seq: Option<&Json>,
    code: Option<&str>,
    message: &str,
) -> Json {
    let mut members = vec![member("ok", Json::Bool(false))];
    if let Some(op) = op {
        members.push(member("op", Json::string(op)));
    }
    if let Some(seq) = seq {
        members.push(member("seq", seq.clone()));
    }
    if let Some(code) = code {
        members.push(member("code", Json::string(code)));
    }
    members.push(member("error", Json::string(message)));
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins() -> Arc<BinSet> {
        Arc::new(BinSet::paper_example())
    }

    #[test]
    fn bare_object_defaults_to_example9_solve() {
        let Request::Solve {
            request,
            id,
            want_plan,
            seq,
            trace,
        } = parse_request("{}", &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert_eq!(request.algorithm, Algorithm::OpqBased);
        assert_eq!(request.workload.len(), 4);
        assert!(id.is_none() && !want_plan && seq.is_none() && !trace);
    }

    #[test]
    fn solve_accepts_protocol_members_alongside_engine_fields() {
        let line = r#"{"op":"solve","id":"w","plan":true,"algorithm":"greedy","tasks":7}"#;
        let Request::Solve {
            request,
            id,
            want_plan,
            seq,
            ..
        } = parse_request(line, &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert_eq!(request.algorithm, Algorithm::Greedy);
        assert_eq!(request.workload.len(), 7);
        assert_eq!(id.as_deref(), Some("w"));
        assert!(want_plan && seq.is_none());
    }

    #[test]
    fn seq_tags_parse_on_every_pipelinable_verb() {
        let Request::Solve { seq, .. } = parse_request(r#"{"tasks":4,"seq":7}"#, &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert_eq!(seq, Some(Json::Number(7.0)));

        let Request::Solve { seq, .. } =
            parse_request(r#"{"op":"solve","seq":"alpha-1"}"#, &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert_eq!(seq, Some(Json::string("alpha-1")));

        let Request::Batch { seq, requests, .. } =
            parse_request(r#"{"op":"batch","requests":[{}],"seq":0}"#, &bins()).unwrap()
        else {
            panic!("expected a batch");
        };
        assert_eq!(seq, Some(Json::Number(0.0)));
        assert_eq!(requests.len(), 1);

        let line = r#"{"op":"resubmit","id":"w","delta":{"resize":9},"seq":"r"}"#;
        let Request::Resubmit { seq, .. } = parse_request(line, &bins()).unwrap() else {
            panic!("expected a resubmit");
        };
        assert_eq!(seq, Some(Json::string("r")));
    }

    #[test]
    fn invalid_seq_tags_are_rejected_with_reasons() {
        for (line, needle) in [
            (r#"{"tasks":4,"seq":true}"#, "`seq` must be a string"),
            (r#"{"tasks":4,"seq":-1}"#, "`seq` must be a string"),
            (r#"{"tasks":4,"seq":1.5}"#, "`seq` must be a string"),
            (r#"{"tasks":4,"seq":null}"#, "`seq` must be a string"),
            // 2^53: the first integer whose f64 neighbors collide — distinct
            // client tags must never alias, so the boundary is excluded.
            (
                r#"{"tasks":4,"seq":9007199254740992}"#,
                "`seq` must be a string",
            ),
            // stats and shutdown are deliberately un-pipelinable: their
            // semantics are tied to their position in the request stream.
            (r#"{"op":"stats","seq":1}"#, "unknown field `seq`"),
            (r#"{"op":"shutdown","seq":1}"#, "unknown field `seq`"),
        ] {
            let err = parse_request(line, &bins()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // The largest uniquely-representable integer is still accepted.
        let Request::Solve { seq, .. } =
            parse_request(r#"{"tasks":4,"seq":9007199254740991}"#, &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert_eq!(seq, Some(Json::Number(9_007_199_254_740_991.0)));
    }

    #[test]
    fn claim_and_release_parse_strictly() {
        let Request::Claim { id } = parse_request(r#"{"op":"claim","id":"w"}"#, &bins()).unwrap()
        else {
            panic!("expected a claim");
        };
        assert_eq!(id, "w");
        let Request::Release { id } =
            parse_request(r#"{"op":"release","id":"w2"}"#, &bins()).unwrap()
        else {
            panic!("expected a release");
        };
        assert_eq!(id, "w2");

        // Lease moves are un-pipelinable (their effect is tied to stream
        // position, like stats) and take nothing but an id.
        for (line, needle) in [
            (r#"{"op":"claim"}"#, "`claim` needs a plan `id`"),
            (r#"{"op":"release"}"#, "`release` needs a plan `id`"),
            (r#"{"op":"claim","id":"w","seq":1}"#, "unknown field `seq`"),
            (
                r#"{"op":"release","id":"w","seq":"a"}"#,
                "unknown field `seq`",
            ),
            (r#"{"op":"claim","id":"w","plan":true}"#, "unknown field"),
            (r#"{"op":"claim","id":7}"#, "`id` must be a string"),
        ] {
            let err = parse_request(line, &bins()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn coded_errors_place_code_between_seq_and_error() {
        let coded = coded_error_response(
            Some("resubmit"),
            Some(&Json::Number(3.0)),
            Some("lease_conflict"),
            "plan id `w` is leased by session 2",
        );
        assert_eq!(
            coded.to_string(),
            concat!(
                r#"{"ok":false,"op":"resubmit","seq":3,"code":"lease_conflict","#,
                r#""error":"plan id `w` is leased by session 2"}"#
            )
        );
        // No code → byte-identical to the plain error shape.
        assert_eq!(
            coded_error_response(Some("solve"), None, None, "boom"),
            error_response(Some("solve"), None, "boom")
        );
    }

    #[test]
    fn recover_seq_salvages_valid_tags_from_rejected_lines() {
        // A tagged line that fails engine-field parsing still yields its
        // tag, so the server's error response can echo it.
        assert_eq!(
            recover_seq(r#"{"algorithm":"bogus","seq":7}"#),
            Some(Json::Number(7.0))
        );
        assert_eq!(
            recover_seq(r#"{"frob":1,"seq":"a"}"#),
            Some(Json::string("a"))
        );
        // Nothing recoverable: unparseable JSON, missing tag, invalid tag.
        assert_eq!(recover_seq("{oops}"), None);
        assert_eq!(recover_seq(r#"{"tasks":4}"#), None);
        assert_eq!(recover_seq(r#"{"tasks":4,"seq":true}"#), None);
    }

    #[test]
    fn resubmit_parses_every_delta_verb() {
        let cases = [
            (
                r#"{"op":"resubmit","id":"w","delta":{"resize":100}}"#,
                WorkloadDelta::Resize(100),
            ),
            (
                r#"{"op":"resubmit","id":"w","delta":{"set_thresholds":[[0,0.9],[2,0.7]]}}"#,
                WorkloadDelta::SetThresholds(vec![(0, 0.9), (2, 0.7)]),
            ),
            (
                r#"{"op":"resubmit","id":"w","delta":{"append":[0.5,0.6]}}"#,
                WorkloadDelta::Append(vec![0.5, 0.6]),
            ),
        ];
        for (line, expected) in cases {
            let Request::Resubmit { id, delta, .. } = parse_request(line, &bins()).unwrap() else {
                panic!("expected a resubmit: {line}");
            };
            assert_eq!(id, "w");
            assert_eq!(delta, expected);
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let cases = [
            ("{oops}", "invalid JSON"),
            ("[1,2]", "expected a JSON object"),
            (r#"{"op":"frobnicate"}"#, "unknown op `frobnicate`"),
            (r#"{"op":"solve","frob":1}"#, "unknown field `frob`"),
            (r#"{"op":"stats","x":1}"#, "unknown field `x`"),
            (
                r#"{"op":"resubmit","delta":{"resize":5}}"#,
                "needs the `id`",
            ),
            (r#"{"op":"resubmit","id":"w"}"#, "needs a `delta`"),
            (
                r#"{"op":"resubmit","id":"w","delta":{"resize":5,"append":[0.5]}}"#,
                "exactly one",
            ),
            (
                r#"{"op":"resubmit","id":"w","delta":{"grow":5}}"#,
                "unknown delta verb `grow`",
            ),
            (r#"{"op":"batch"}"#, "needs a `requests` array"),
            (
                r#"{"op":"batch","requests":[{},{"task":1}]}"#,
                "request 1: unknown field `task`",
            ),
            (r#"{"thresholds":[0.5],"tasks":2}"#, "conflicts"),
            (r#"{"op":"solve","plan":"yes"}"#, "`plan` must be a boolean"),
        ];
        for (line, needle) in cases {
            let err = parse_request(line, &bins()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // The unknown-op message lists every verb.
        let err = parse_request(r#"{"op":"nope"}"#, &bins()).unwrap_err();
        for verb in VERBS {
            assert!(err.contains(verb), "missing {verb} in: {err}");
        }
    }

    #[test]
    fn metrics_and_trace_verbs_parse_strictly() {
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#, &bins()).unwrap(),
            Request::Metrics
        ));
        let Request::Trace { limit } = parse_request(r#"{"op":"trace"}"#, &bins()).unwrap() else {
            panic!("expected a trace");
        };
        assert_eq!(limit, None);
        let Request::Trace { limit } =
            parse_request(r#"{"op":"trace","limit":5}"#, &bins()).unwrap()
        else {
            panic!("expected a trace");
        };
        assert_eq!(limit, Some(5));

        // Both answer in line, at their stream position: un-pipelinable.
        for (line, needle) in [
            (r#"{"op":"metrics","seq":1}"#, "unknown field `seq`"),
            (r#"{"op":"trace","seq":1}"#, "unknown field `seq`"),
            (r#"{"op":"metrics","x":1}"#, "unknown field `x`"),
            (r#"{"op":"trace","limit":-1}"#, "non-negative integer"),
            (r#"{"op":"trace","limit":1.5}"#, "non-negative integer"),
        ] {
            let err = parse_request(line, &bins()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn health_and_profile_verbs_parse_strictly() {
        assert!(matches!(
            parse_request(r#"{"op":"health"}"#, &bins()).unwrap(),
            Request::Health
        ));
        let Request::Profile { limit } = parse_request(r#"{"op":"profile"}"#, &bins()).unwrap()
        else {
            panic!("expected a profile");
        };
        assert_eq!(limit, None);
        let Request::Profile { limit } =
            parse_request(r#"{"op":"profile","limit":3}"#, &bins()).unwrap()
        else {
            panic!("expected a profile");
        };
        assert_eq!(limit, Some(3));

        // Both answer in line, at their stream position: un-pipelinable.
        for (line, needle) in [
            (r#"{"op":"health","seq":1}"#, "unknown field `seq`"),
            (r#"{"op":"profile","seq":1}"#, "unknown field `seq`"),
            (r#"{"op":"health","limit":2}"#, "unknown field `limit`"),
            (r#"{"op":"profile","x":1}"#, "unknown field `x`"),
            (r#"{"op":"profile","limit":-1}"#, "non-negative integer"),
        ] {
            let err = parse_request(line, &bins()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn trace_opt_in_parses_on_every_traceable_verb() {
        let Request::Solve { trace, .. } =
            parse_request(r#"{"tasks":4,"trace":true}"#, &bins()).unwrap()
        else {
            panic!("expected a solve");
        };
        assert!(trace);
        let Request::Batch { trace, .. } =
            parse_request(r#"{"op":"batch","requests":[{}],"trace":true}"#, &bins()).unwrap()
        else {
            panic!("expected a batch");
        };
        assert!(trace);
        let line = r#"{"op":"resubmit","id":"w","delta":{"resize":9},"trace":false}"#;
        let Request::Resubmit { trace, .. } = parse_request(line, &bins()).unwrap() else {
            panic!("expected a resubmit");
        };
        assert!(!trace);
        let err = parse_request(r#"{"tasks":4,"trace":1}"#, &bins()).unwrap_err();
        assert!(err.contains("`trace` must be a boolean"), "{err}");
        // Lease moves and stats stay untraceable — stream-position verbs
        // have no engine lifecycle to trace.
        let err = parse_request(r#"{"op":"claim","id":"w","trace":true}"#, &bins()).unwrap_err();
        assert!(err.contains("unknown field `trace`"), "{err}");
    }

    #[test]
    fn plan_json_is_byte_stable_across_identical_solves() {
        use slade_core::solver::DecompositionSolver;
        let bins = bins();
        let workload = Workload::homogeneous(4, 0.95).unwrap();
        let a = slade_core::opq_based::OpqBased::default()
            .solve(&workload, &bins)
            .unwrap();
        let b = slade_core::opq_based::OpqBased::default()
            .solve(&workload, &bins)
            .unwrap();
        let (ja, jb) = (plan_to_json(&a), plan_to_json(&b));
        assert_eq!(ja, jb);
        assert_eq!(ja.to_string(), jb.to_string());
        // And the serialized form parses back to the same value.
        assert_eq!(json::parse(&ja.to_string()).unwrap(), ja);
        assert!(ja.to_string().contains("\"algorithm\":\"OpqBased\""));
    }
}
