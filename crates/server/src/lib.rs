//! # slade-server — a network frontend with stateful resubmit sessions
//!
//! `slade-engine` turned the one-shot solvers into a concurrent, caching
//! service; this crate puts that service on a socket. It is std-only (no
//! async runtime exists in the offline build environment): a
//! thread-per-connection acceptor over one shared [`Engine`], speaking a
//! line-delimited JSON protocol — one request object per line, one
//! response object per line (see [`protocol`] for the verb table).
//!
//! The piece that makes this more than a remote `batch` pipe is the
//! **plan store**: `solve` requests land their [`ResolvedPlan`]s in the
//! engine's server-wide [`PlanStore`] under client-chosen plan ids, so a
//! `resubmit` round-trip over the wire reuses cached artifacts and
//! unchanged shard sub-plans exactly like the in-process
//! [`Engine::resubmit`] — and inherits its guarantee: the returned plan
//! is **byte-identical to a cold solve of the final workload** (pinned
//! over a real socket by this crate's e2e tests, down to the serialized
//! bytes — the shared [`json`] serializer prints floats in
//! shortest-round-trip form precisely so that contract is testable).
//!
//! Plan ids are global but **leased**: producing a plan leases its id to
//! the producing session, and another session touching a leased id gets a
//! structured `lease_conflict` error rather than a race. The `claim` and
//! `release` verbs move a lease explicitly, so a plan produced on one
//! connection can be resubmitted from another — handover, reconnect-and-
//! resume, load-balanced clients — with the same byte-identity guarantee
//! (pinned by `tests/cross_session.rs`). A dropped connection releases
//! its leases; its plans outlive it. Store conflicts carry
//! machine-readable `code` members (`unknown_plan`, `lease_conflict`,
//! `pending_producer`); see [`protocol`] for the table.
//!
//! Sessions are **pipelined and multiplexed**: a `solve`/`batch`/
//! `resubmit` carrying a client-chosen `"seq"` tag is dispatched without
//! blocking the session's read loop and answered as it completes —
//! possibly out of request order, the response echoing the tag — so one
//! connection can keep the whole worker pool saturated instead of paying
//! a round trip per request. Untagged traffic keeps the strict
//! request/response protocol unchanged; [`ServerConfig::max_inflight`]
//! caps the tagged window with real backpressure. [`Client::pipeline`] is
//! the client-side counterpart; see [`protocol`] for the `seq` rules
//! (each session runs a reader / multiplexer / writer thread triple —
//! `src/server.rs` documents the anatomy and its invariants, mirrored in
//! DESIGN.md).
//!
//! Robustness posture:
//!
//! * malformed input (bad JSON, unknown verbs/fields, a `resubmit`
//!   against a missing plan id, a `resubmit` racing the in-flight tagged
//!   request that produces its plan id) gets a structured
//!   `{"ok":false,…}` error and the connection survives;
//! * solves run under the engine's timeout-aware waits and session reads
//!   poll with a short timeout, so neither a stuck request nor a silent
//!   client can wedge the acceptor or a shutdown drain; an overdue
//!   *tagged* request is expired by the session's multiplexer with a
//!   structured error while the rest of the window keeps serving;
//! * shutdown (the in-band `shutdown` verb or a [`ShutdownHandle`]) is
//!   graceful: the acceptor stops, sessions drain their tagged in-flight
//!   requests and finish their current request, and [`Engine::shutdown`]
//!   drains the worker pool deterministically.
//!
//! The server is **observable**: every request is counted on a sharded
//! relaxed metric registry (`slade-obs`), per-verb end-to-end latency is
//! histogrammed, and a client can opt any `solve`/`batch`/`resubmit` into
//! end-to-end tracing with `"trace": true` — the response echoes a minted
//! trace id and the `trace` verb returns the request's staged timeline
//! (queued → admitted → dispatched → per-shard start/finish with worker
//! and steal provenance → merged → written). The `metrics` verb exports a
//! self-consistent JSON snapshot — lifetime numbers plus a sliding-window
//! view (windowed p50/p90/p99 and req/s over roughly the last minute,
//! [`ObsOptions::window`]); the `health` verb computes readiness from live
//! signals (queue saturation, windowed timeout/error rates, cache-eviction
//! pressure, connected sessions) as `ok|degraded|unhealthy` with
//! per-signal reasons; the `profile` verb aggregates the traced spans into
//! a per-phase wall-time breakdown (queued / dispatch / per-shard solve
//! split by steal provenance / merge / write); and
//! [`ServerConfig::metrics_addr`] starts a minimal HTTP `GET /metrics`
//! responder rendering the same registry in Prometheus text format. See
//! [`protocol`] and [`ObsOptions`] for the knobs (JSONL trace log,
//! slow-request log, ring size, window width).
//!
//! ## Quickstart
//!
//! ```
//! use slade_server::{client::Client, Server, ServerConfig};
//! use std::thread;
//!
//! let server = Server::bind(ServerConfig::default()).unwrap(); // 127.0.0.1:0
//! let addr = server.local_addr();
//! let running = thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! // Example 9 of the paper, retained under plan id "w".
//! let reply = client
//!     .roundtrip(r#"{"op":"solve","id":"w","tasks":4,"threshold":0.95}"#)
//!     .unwrap();
//! assert!(reply.contains("\"ok\":true"), "{reply}");
//! // The workload grows in place; unchanged shards are reused server-side.
//! let reply = client
//!     .roundtrip(r#"{"op":"resubmit","id":"w","delta":{"resize":100}}"#)
//!     .unwrap();
//! assert!(reply.contains("\"tasks\":100"), "{reply}");
//!
//! // Pipelined: four solves in flight at once on this one connection;
//! // responses come back in request order, each echoing its seq tag.
//! let lines: Vec<String> = (1..=4)
//!     .map(|n| format!(r#"{{"tasks":{n},"threshold":0.9}}"#))
//!     .collect();
//! let replies = client.pipeline(&lines, 4).unwrap();
//! for (i, reply) in replies.iter().enumerate() {
//!     assert!(reply.contains(&format!("\"seq\":{i}")), "{reply}");
//!     assert!(reply.contains("\"feasible\":true"), "{reply}");
//! }
//! client.roundtrip(r#"{"op":"shutdown"}"#).unwrap();
//! running.join().unwrap();
//! ```
//!
//! [`Engine`]: slade_engine::Engine
//! [`Engine::resubmit`]: slade_engine::Engine::resubmit
//! [`Engine::shutdown`]: slade_engine::Engine::shutdown
//! [`PlanStore`]: slade_engine::PlanStore
//! [`ResolvedPlan`]: slade_engine::ResolvedPlan

pub mod client;
mod journal;
pub mod json;
mod line;
pub mod protocol;
mod server;

pub use client::Client;
pub use server::{ObsOptions, RequestMiddleware, Server, ServerConfig, ShutdownHandle};
