//! The durable plan journal: an append-only JSONL log of plan-store
//! mutations, replayed at boot so retained plans survive a server crash.
//!
//! ## Record grammar
//!
//! One JSON object per line, identified by its `record` member:
//!
//! ```text
//! {"record":"land","id":"<plan id>","plan":{<codec v1 object>}}
//! {"record":"release","id":"<plan id>"}
//! {"record":"drop","id":"<plan id>"}
//! ```
//!
//! `land` is written after a producer's plan is stored (re-lands under the
//! same id overwrite — last record wins on replay); `release` after an
//! explicit lease release (an audit record: replayed plans are always
//! unleased, because the sessions that held them died with the process);
//! `drop` removes an id on replay (the current store never deletes a
//! stored plan, so no code path appends one today — the grammar and the
//! replayer keep it for forward compatibility). Leases and claims are
//! deliberately **not** journaled as state: they are session-scoped, and a
//! restart has no sessions.
//!
//! ## Torn-tail rule
//!
//! The writer appends whole lines but a crash (SIGKILL, power loss) can
//! leave a torn final record. The replayer is tolerant exactly once: it
//! applies records in order and stops at the **first** line that fails to
//! parse or decode — everything after a corrupt record is untrusted, even
//! if later lines happen to parse, because a single-writer append-only log
//! only corrupts at the tail. Replay never panics on arbitrary bytes (the
//! journal fuzz suite byte-flips and truncates real journals to pin this).
//!
//! ## Compaction atomicity
//!
//! Compaction rewrites the retained plans as fresh `land` records into
//! `<path>.tmp`, fsyncs, then atomically renames over the journal — a
//! crash during compaction leaves either the old complete journal or the
//! new complete journal, never a mix. It runs at every boot (which also
//! truncates any torn tail before new appends could land behind it) and
//! automatically every [`COMPACT_EVERY`] appended records.

use crate::json::{member, parse, Json};
use slade_engine::{codec, PlanStore, ResolvedPlan};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Appends between automatic compactions. Small enough that the journal
/// stays within a couple hundred records of the live plan count, large
/// enough that compaction cost (a full snapshot rewrite) stays rare.
pub(crate) const COMPACT_EVERY: u64 = 256;

/// An open journal; see the module docs for the format and guarantees.
pub(crate) struct Journal {
    path: PathBuf,
    /// The append handle. The mutex also serializes compaction's
    /// rewrite-and-swap against concurrent appends.
    file: Mutex<File>,
    /// Records currently in the file (surviving replay + appended since).
    records: AtomicU64,
    /// Records recovered by the boot-time replay.
    replayed: AtomicU64,
    /// Appends or compactions that failed with an I/O error — plans landed
    /// after a nonzero value here may not be durable (health degrades).
    append_errors: AtomicU64,
    /// Completed compactions (the boot-time one included).
    compactions: AtomicU64,
    /// Appends since the last compaction, driving [`COMPACT_EVERY`].
    since_compact: AtomicU64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`: replays every
    /// valid record into `store` — stopping at the first torn or corrupt
    /// line — then compacts, so the file holds exactly the recovered plans
    /// before any new record is appended.
    pub(crate) fn open(path: PathBuf, store: &PlanStore) -> io::Result<Journal> {
        let mut replayed: u64 = 0;
        if path.exists() {
            for (id, plan) in replay(&std::fs::read(&path)?, &mut replayed) {
                store.restore(&id, plan);
            }
        }
        let journal = Journal {
            file: Mutex::new(OpenOptions::new().create(true).append(true).open(&path)?),
            path,
            records: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed),
            append_errors: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            since_compact: AtomicU64::new(0),
        };
        journal.compact(store)?;
        Ok(journal)
    }

    /// Journals a landed plan (after the store accepted it), compacting if
    /// the append budget is spent. I/O errors are counted, never raised:
    /// the plan is already live in memory and the client already paid for
    /// it — degraded durability is a health signal, not a request failure.
    pub(crate) fn land(&self, store: &PlanStore, id: &str, plan: &ResolvedPlan) {
        let record = Json::Object(vec![
            member("record", Json::string("land")),
            member("id", Json::string(id)),
            member("plan", codec::encode(plan)),
        ]);
        self.append(store, &record);
    }

    /// Journals an explicit lease release (an audit record; see the module
    /// docs for why leases are not replayed as state).
    pub(crate) fn release(&self, store: &PlanStore, id: &str) {
        let record = Json::Object(vec![
            member("record", Json::string("release")),
            member("id", Json::string(id)),
        ]);
        self.append(store, &record);
    }

    fn append(&self, store: &PlanStore, record: &Json) {
        {
            let mut file = self.lock();
            if file.write_all(format!("{record}\n").as_bytes()).is_err() {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        if self.since_compact.fetch_add(1, Ordering::Relaxed) + 1 >= COMPACT_EVERY
            && self.compact(store).is_err()
        {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rewrites the journal to exactly the store's retained plans:
    /// snapshot → write `<path>.tmp` → fsync → rename → swap the append
    /// handle. Holding the file mutex throughout makes the swap atomic
    /// with respect to concurrent appends.
    pub(crate) fn compact(&self, store: &PlanStore) -> io::Result<()> {
        let snapshot = store.snapshot_plans();
        let mut file = self.lock();
        let mut tmp_path = self.path.clone().into_os_string();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);
        {
            let mut tmp = File::create(&tmp_path)?;
            for (id, plan) in &snapshot {
                let record = Json::Object(vec![
                    member("record", Json::string("land")),
                    member("id", Json::string(id)),
                    member("plan", codec::encode(plan)),
                ]);
                tmp.write_all(format!("{record}\n").as_bytes())?;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        *file = OpenOptions::new().append(true).open(&self.path)?;
        self.records.store(snapshot.len() as u64, Ordering::Relaxed);
        self.since_compact.store(0, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn lock(&self) -> MutexGuard<'_, File> {
        self.file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Records currently in the file.
    pub(crate) fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Records recovered by the boot-time replay.
    pub(crate) fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Failed appends/compactions since boot (durability at risk when > 0).
    pub(crate) fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    /// Completed compactions since boot.
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }
}

/// Applies the journal bytes record by record, last-wins per id, stopping
/// at the first torn or corrupt line (see the torn-tail rule in the module
/// docs). Returns the surviving plans in first-seen order and counts the
/// applied records into `replayed`. Total over arbitrary bytes.
fn replay(bytes: &[u8], replayed: &mut u64) -> Vec<(String, Arc<ResolvedPlan>)> {
    let mut order: Vec<String> = Vec::new();
    let mut plans: std::collections::HashMap<String, Arc<ResolvedPlan>> =
        std::collections::HashMap::new();
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            // The final newline leaves one empty tail element — normal end
            // of file. A blank line anywhere else is malformed, and the
            // torn-tail rule stops at the first malformed line either way.
            break;
        }
        let Some(record) = std::str::from_utf8(line)
            .ok()
            .and_then(|text| parse(text).ok())
        else {
            break;
        };
        let (Some(kind), Some(id)) = (
            record.get("record").and_then(Json::as_str),
            record.get("id").and_then(Json::as_str),
        ) else {
            break;
        };
        match kind {
            "land" => {
                let Some(plan) = record.get("plan").and_then(|p| codec::decode(p).ok()) else {
                    break;
                };
                if plans.insert(id.to_string(), Arc::new(plan)).is_none() {
                    order.push(id.to_string());
                }
            }
            "release" => {}
            "drop" => {
                plans.remove(id);
            }
            _ => break,
        }
        *replayed += 1;
    }
    order
        .into_iter()
        .filter_map(|id| {
            let plan = plans.remove(&id)?;
            Some((id, plan))
        })
        .collect()
}
