//! Re-export of the workspace JSON implementation ([`slade_json`]).
//!
//! The parser/serializer started life in this module; it was lifted into
//! its own crate (`slade-json`) so the engine's durable plan codec can use
//! the same bit-exact serializer without depending on the server. The
//! protocol layer and every existing `slade_server::json` call site keep
//! working through this re-export — the guarantees (shortest-round-trip
//! float printing, duplicate-key rejection, bounded nesting) are
//! documented on the crate itself.

pub use slade_json::*;
