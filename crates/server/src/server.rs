//! The TCP frontend: a thread-per-connection acceptor over one shared
//! [`Engine`], with resolved plans held in a server-wide [`PlanStore`]
//! leased per session.
//!
//! Std-only by construction (the build environment has no async runtime):
//! the acceptor blocks in `accept`, each connection gets a session, and
//! shutdown is cooperative — a `shutdown` request (or a [`ShutdownHandle`])
//! sets the flag, wakes the acceptor with a loopback connect, sessions
//! notice via their read-timeout poll, and the engine drains
//! deterministically before [`Server::run`] returns.
//!
//! ## Session anatomy (pipelining)
//!
//! A session is three cooperating threads over one connection:
//!
//! * the **reader** owns the read half: it frames request lines, executes
//!   untagged requests in line (strict request/response, exactly the
//!   pre-pipelining behavior), and dispatches `seq`-tagged requests to the
//!   engine without blocking — each becomes an in-flight entry handed to
//!   the multiplexer;
//! * the **multiplexer** owns every in-flight tagged request: engine
//!   workers ping it (via [`ShardNotify`]) as shards complete, it polls the
//!   pinged handle with a non-blocking `try_wait`, and finished requests
//!   are answered *in completion order*, each response echoing its `seq`.
//!   It also enforces the per-request deadline (an overdue tagged request
//!   gets a structured timeout error; its shards are abandoned to the
//!   pool) and drains remaining work at session end;
//! * the **writer** owns the write half: both other threads queue
//!   responses on its channel, so response lines never interleave
//!   mid-line and a stalled client (write timeout) kills at most this
//!   connection.
//!
//! In-flight tagged requests are capped by [`ServerConfig::max_inflight`]:
//! the reader blocks once the cap is reached (it stops draining the
//! socket, which is TCP backpressure), and a slot frees whenever the
//! multiplexer completes, expires, or discards an entry — so the cap is an
//! invariant, not a best effort. Duplicate in-flight `seq` tags are
//! rejected with a structured error (responses would be unattributable).
//!
//! Ordering rules, also documented on [`protocol`]:
//!
//! * untagged requests are answered in request order, at their position in
//!   the stream (tagged responses may interleave around them);
//! * `stats`, `claim`, and `release` execute when the reader reaches them:
//!   stats counters reflect every request *dispatched* before it (not
//!   necessarily completed), and lease moves land between the surrounding
//!   requests' store operations;
//! * `shutdown` first drains every tagged in-flight request of this
//!   session (each gets its normal response, bounded by its deadline),
//!   then acks, then stops the server. A session that ends any other way
//!   (EOF, server shutdown, over-long line) drains the same way; only a
//!   dead connection (write failure) discards in-flight responses.

use crate::journal::Journal;
use crate::json::{member, Json};
use crate::line::LineBuffer;
use crate::protocol::{self, Request};
use slade_core::bin_set::BinSet;
use slade_core::plan::DecompositionPlan;
use slade_core::solver::Algorithm;
use slade_engine::{
    Engine, EngineConfig, EngineError, EngineRequest, FinishOutcome, PlanHandle, PlanStore,
    RequestTrace, ResolvedHandle, ResolvedPlan, SessionId, ShardNotify, StoreError,
};
use slade_obs::{
    Counter, Registry, RequestSpan, SpanRecord, SpanRing, WindowedCounter, WindowedHistogram,
    PROMETHEUS_CONTENT_TYPE,
};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked session reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long a response write to a stalled client may block before the
/// session gives the connection up.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Back-off after a transient `accept` failure, so an error storm (fd
/// exhaustion, say) cannot hot-spin the acceptor.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// Longest request line a session accepts. Generous — a million-task
/// thresholds array fits severalfold — but finite, so one connection
/// streaming newline-free bytes cannot grow a buffer without bound.
const MAX_REQUEST_LINE: usize = 64 * 1024 * 1024;

/// Number of registered algorithms, for the per-algorithm counter array.
const ALGORITHMS: usize = Algorithm::ALL.len();

/// A hook applied to every parsed [`EngineRequest`] before it reaches the
/// engine — an extension seam for embedding policy (quotas, rewrites,
/// per-tenant solver configuration) and the fault-injection vehicle for the
/// crate's own concurrency tests (wrap a sentinel request with a slow or
/// panicking [`with_solver`](EngineRequest::with_solver) override).
pub type RequestMiddleware = Arc<dyn Fn(EngineRequest) -> EngineRequest + Send + Sync>;

/// Configuration of a [`Server`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7878"`; port `0` picks an
    /// ephemeral port (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Configuration of the shared [`Engine`] the sessions solve on.
    pub engine: EngineConfig,
    /// Deadline for one request's solving work. A request that exceeds it
    /// gets a structured error response (the connection survives); the
    /// abandoned shards finish in the pool.
    pub request_timeout: Duration,
    /// Maximum `seq`-tagged requests one session may have in flight
    /// (clamped to at least 1). At the cap the reader stops draining the
    /// socket until a slot frees — TCP backpressure, never an unbounded
    /// queue.
    pub max_inflight: usize,
    /// Optional per-request hook; see [`RequestMiddleware`].
    pub request_middleware: Option<RequestMiddleware>,
    /// Observability knobs; see [`ObsOptions`].
    pub obs: ObsOptions,
    /// When set, also bind a minimal HTTP listener on this address and
    /// answer `GET /metrics` with the Prometheus text exposition of the
    /// registry (port `0` picks an ephemeral port; read it back with
    /// [`Server::metrics_local_addr`]). Hand-rolled and thread-per-
    /// connection like the main server; no other path is served.
    pub metrics_addr: Option<String>,
    /// When set, every plan-store mutation (plan landed, lease released)
    /// is appended to this JSONL journal, and the file is replayed into
    /// the store at bind — retained plans survive a restart, recovering
    /// byte-identical resubmit chains. Compacted atomically (rewrite to
    /// `<path>.tmp` + rename) at bind and periodically. See the `journal`
    /// module docs for the record grammar and the torn-tail rule.
    pub journal: Option<PathBuf>,
    /// When set, an idle plan lease expires this long after its holder's
    /// last store operation on the id and becomes reclaimable by any
    /// session (`claim`/`resubmit`) — a wedged client cannot pin a plan
    /// forever. `None` (the default) keeps leases until released or the
    /// session drops; a lease with a producer in flight never expires.
    pub lease_ttl: Option<Duration>,
}

/// Observability configuration: latency histograms, request tracing, and
/// their export surfaces. All of it is lock-cheap by construction (relaxed
/// sharded counters, per-span mutexes around a timestamp-and-push) — the
/// `enabled: false` switch exists for A/B overhead measurement, not because
/// the instrumentation is expensive.
#[derive(Debug, Clone)]
pub struct ObsOptions {
    /// Master switch for latency recording and request tracing. Off, the
    /// server neither mints spans nor records histogram samples (the
    /// `metrics` verb still answers, with zeroed latency sections).
    pub enabled: bool,
    /// When set, every completed traced span is appended to this file as
    /// one JSON line (same shape as the `trace` verb's `spans` entries).
    pub trace_log: Option<PathBuf>,
    /// When set, any traced request slower than this many milliseconds
    /// end-to-end is logged to stderr.
    pub slow_ms: Option<u64>,
    /// Completed traced spans retained for the `trace` verb (newest wins;
    /// clamped to at least 1).
    pub trace_ring: usize,
    /// Width of the sliding window behind the `metrics` verb's windowed
    /// p50/p90/p99 + req/s and the `health` verb's windowed rates.
    /// [`Duration::ZERO`] disables windowing (the windowed sections report
    /// zeros) — the knob the obs-window A/B benchmark flips; the record
    /// path is identical either way.
    pub window: Duration,
    /// Sub-windows the sliding window is split into (clamped to at least
    /// 1). More slots track decay more smoothly at slightly more reader-
    /// side work per rotation.
    pub window_slots: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: true,
            trace_log: None,
            slow_ms: None,
            trace_ring: 256,
            window: Duration::from_secs(60),
            window_slots: slade_obs::WINDOW_SLOTS,
        }
    }
}

impl fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("engine", &self.engine)
            .field("request_timeout", &self.request_timeout)
            .field("max_inflight", &self.max_inflight)
            .field(
                "request_middleware",
                &self.request_middleware.as_ref().map(|_| "<hook>"),
            )
            .field("obs", &self.obs)
            .field("metrics_addr", &self.metrics_addr)
            .field("journal", &self.journal)
            .field("lease_ttl", &self.lease_ttl)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            request_timeout: Duration::from_secs(60),
            max_inflight: 32,
            request_middleware: None,
            obs: ObsOptions::default(),
            metrics_addr: None,
            journal: None,
            lease_ttl: None,
        }
    }
}

/// Per-op and per-algorithm request counters, reported by the `stats` and
/// `metrics` verbs. The op counters are [`WindowedCounter`]s living in the
/// server's [`Registry`] (named `ops.<verb>`) — lifetime values identical
/// to the plain counters they replaced (same relaxed sharded record path),
/// plus the windowed rates the `health` verb and the `metrics` windowed
/// sections read. Per-algorithm counters stay plain [`Counter`]s.
struct Counters {
    solve: Arc<WindowedCounter>,
    batch: Arc<WindowedCounter>,
    resubmit: Arc<WindowedCounter>,
    claim: Arc<WindowedCounter>,
    release: Arc<WindowedCounter>,
    stats: Arc<WindowedCounter>,
    metrics: Arc<WindowedCounter>,
    trace: Arc<WindowedCounter>,
    health: Arc<WindowedCounter>,
    profile: Arc<WindowedCounter>,
    shutdown: Arc<WindowedCounter>,
    /// Requests that arrived with a `seq` tag (also counted under their op).
    pipelined: Arc<WindowedCounter>,
    /// Tagged requests the multiplexer answered with a deadline-expiry
    /// timeout (also counted under their op, under `errors` like every
    /// error response, and — per verb — under `timeouts.<verb>`).
    timeouts: Arc<WindowedCounter>,
    /// The per-verb split of `timeouts`: `timeouts.<verb>` for the three
    /// verbs that can expire in the multiplexer. The global counter is
    /// unchanged (wire compatibility); these add the breakdown.
    timeouts_solve: Arc<WindowedCounter>,
    timeouts_batch: Arc<WindowedCounter>,
    timeouts_resubmit: Arc<WindowedCounter>,
    errors: Arc<WindowedCounter>,
    algorithms: [Arc<Counter>; ALGORITHMS],
}

impl Counters {
    fn new(registry: &Registry, window: Duration, slots: usize) -> Counters {
        let op = |name: &str| registry.windowed_counter(&format!("ops.{name}"), window, slots);
        let timeout =
            |name: &str| registry.windowed_counter(&format!("timeouts.{name}"), window, slots);
        Counters {
            solve: op("solve"),
            batch: op("batch"),
            resubmit: op("resubmit"),
            claim: op("claim"),
            release: op("release"),
            stats: op("stats"),
            metrics: op("metrics"),
            trace: op("trace"),
            health: op("health"),
            profile: op("profile"),
            shutdown: op("shutdown"),
            pipelined: op("pipelined"),
            timeouts: op("timeouts"),
            timeouts_solve: timeout("solve"),
            timeouts_batch: timeout("batch"),
            timeouts_resubmit: timeout("resubmit"),
            errors: op("errors"),
            algorithms: std::array::from_fn(|i| {
                registry.counter(&format!("algorithms.{}", Algorithm::ALL[i].name()))
            }),
        }
    }

    fn count_algorithm(&self, algorithm: Algorithm) {
        let index = Algorithm::ALL
            .iter()
            .position(|a| *a == algorithm)
            .expect("every algorithm is in the registry");
        self.algorithms[index].inc();
    }

    fn count_error(&self) {
        self.errors.inc();
    }

    /// Counts one multiplexer deadline expiry: the legacy global counter
    /// plus the per-verb `timeouts.<verb>` split.
    fn count_timeout(&self, op: &str) {
        self.timeouts.inc();
        match op {
            "solve" => self.timeouts_solve.inc(),
            "batch" => self.timeouts_batch.inc(),
            "resubmit" => self.timeouts_resubmit.inc(),
            // Only pipelinable verbs can expire in the multiplexer; an
            // unknown op here would be a dispatch bug, not a counter miss.
            other => debug_assert!(false, "unexpected timeout verb `{other}`"),
        }
    }
}

/// The verbs whose end-to-end latency is histogrammed, index-aligned with
/// [`ServerObs::latency`]. `shutdown` is deliberately absent: its ack is
/// written mid-drain while the server is stopping, so a sample would
/// measure the drain, not the request.
const LATENCY_VERBS: [&str; 10] = [
    "solve", "batch", "resubmit", "claim", "release", "stats", "metrics", "trace", "health",
    "profile",
];

/// The server's observability sink: the metric registry, per-verb latency
/// histograms, the completed-span ring the `trace` verb reads, and the
/// optional JSONL trace log / slow-request stderr log.
struct ServerObs {
    enabled: bool,
    registry: Registry,
    /// Completed traced spans, newest `capacity` retained.
    ring: SpanRing,
    /// Per-verb latency histograms, index-aligned with [`LATENCY_VERBS`].
    /// Windowed: lifetime behavior identical to the plain histograms they
    /// replaced, plus the sliding-window view behind the `metrics` verb's
    /// windowed quantiles/rates.
    latency: Vec<Arc<WindowedHistogram>>,
    /// JSONL export of every completed traced span. The mutex is on the
    /// trace-log file only — never on the request path; only the writer
    /// thread (and the rare drain) takes it.
    trace_log: Option<Mutex<File>>,
    slow_ms: Option<u64>,
    /// Trace id allocator; ids start at 1.
    next_trace: AtomicU64,
}

impl ServerObs {
    fn new(options: &ObsOptions, registry: Registry) -> io::Result<ServerObs> {
        let latency = LATENCY_VERBS
            .iter()
            .map(|verb| {
                registry.windowed_histogram(
                    &format!("latency.{verb}"),
                    options.window,
                    options.window_slots,
                )
            })
            .collect();
        let trace_log = match &options.trace_log {
            None => None,
            Some(path) => Some(Mutex::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
        };
        Ok(ServerObs {
            enabled: options.enabled,
            registry,
            ring: SpanRing::new(options.trace_ring),
            latency,
            trace_log,
            slow_ms: options.slow_ms,
            next_trace: AtomicU64::new(1),
        })
    }

    /// The latency histogram for `op`, when `op` is a [`LATENCY_VERBS`]
    /// member.
    fn latency_for(&self, op: &str) -> Option<&Arc<WindowedHistogram>> {
        LATENCY_VERBS
            .iter()
            .position(|verb| *verb == op)
            .map(|i| &self.latency[i])
    }

    /// Records one end-to-end latency sample for `op`. Every counted
    /// request contributes exactly one sample on exactly one path (response
    /// written, discarded on a dead connection, or dropped by an aborting
    /// gate), so at quiescence `latency.<verb>.count == ops.<verb>`.
    fn record_latency(&self, op: &str, started: Instant) {
        if !self.enabled {
            return;
        }
        if let Some(histogram) = self.latency_for(op) {
            histogram.record_duration(started.elapsed());
        }
    }

    /// Sinks one completed span: slow-request stderr line, JSONL trace log,
    /// then the ring. Called by the writer thread *before* the response
    /// bytes reach the socket, so a client that has read its response is
    /// guaranteed to find the span in a subsequent `trace` request.
    fn sink_span(&self, record: &SpanRecord) {
        if let Some(slow_ms) = self.slow_ms {
            let total_ms = record.total_ns / 1_000_000;
            if total_ms >= slow_ms {
                eprintln!(
                    "slade-server: slow request: op={} trace_id={} total_ms={} \
                     stolen_shards={}",
                    record.op, record.id, total_ms, record.stolen_shards
                );
            }
        }
        if let Some(log) = &self.trace_log {
            let line = span_to_json(record);
            let _ = writeln!(lock(log), "{line}");
        }
        self.ring.push(record.clone());
    }
}

/// State shared by the acceptor, every session thread, and shutdown
/// handles.
struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    /// Bound address of the Prometheus `/metrics` HTTP listener, when
    /// [`ServerConfig::metrics_addr`] was set.
    metrics_addr: Option<SocketAddr>,
    request_timeout: Duration,
    max_inflight: usize,
    middleware: Option<RequestMiddleware>,
    counters: Counters,
    obs: ServerObs,
    /// Sessions currently connected.
    connections: AtomicUsize,
    /// Resolved plans retained server-wide, leased per session.
    store: PlanStore,
    /// Session id allocator; ids start at 1 and are never reused.
    next_session: AtomicU64,
    /// When the server came up — the `process.uptime_seconds` anchor.
    started: Instant,
    /// The configured sliding window, echoed by the `metrics` response's
    /// `window` section.
    window: Duration,
    /// Cache evictions mirrored into [`Shared::evictions_window`] so far.
    /// The engine owns the lifetime eviction counter; health/metrics
    /// readers feed the delta into the windowed counter — reader-driven,
    /// never on the solve path.
    evictions_seen: AtomicU64,
    /// Windowed view of cache evictions, for the health verb's
    /// cache-pressure signal.
    evictions_window: WindowedCounter,
    /// The durable plan journal, when [`ServerConfig::journal`] was set.
    journal: Option<Journal>,
}

impl Shared {
    fn apply_middleware(&self, request: EngineRequest) -> EngineRequest {
        match &self.middleware {
            Some(hook) => hook(request),
            None => request,
        }
    }

    /// Feeds the engine's lifetime eviction count into the windowed
    /// eviction counter. Called by health/metrics/exposition readers; the
    /// `fetch_max` makes concurrent readers attribute each delta exactly
    /// once.
    fn mirror_evictions(&self) {
        let current = self.engine.cache_stats().evictions;
        let previous = self.evictions_seen.fetch_max(current, Ordering::Relaxed);
        if current > previous {
            self.evictions_window.add(current - previous);
        }
    }

    /// Applies a producer's result to the store and journals a landed
    /// plan. The [`FinishOutcome`] flows back so response builders can
    /// distinguish a stored plan from one that lost its id while solving
    /// (see `run_solve` / `Mux::finish`) — a discarded plan is never
    /// journaled and never answered with success.
    fn finish_store(
        &self,
        session: SessionId,
        id: &str,
        produced: Option<Arc<ResolvedPlan>>,
    ) -> FinishOutcome {
        let landed = produced.clone();
        let outcome = self.store.finish(session, id, produced);
        if outcome != FinishOutcome::Discarded {
            if let (Some(journal), Some(plan)) = (&self.journal, landed) {
                journal.land(&self.store, id, &plan);
            }
        }
        outcome
    }
}

/// Flips the shutdown flag and wakes the blocked acceptors with loopback
/// connections (std's `accept` has no cancellation of its own). The
/// metrics listener, when bound, is woken the same way as the main one.
fn trigger_shutdown(shared: &Shared) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.local_addr);
        if let Some(metrics_addr) = shared.metrics_addr {
            let _ = TcpStream::connect(metrics_addr);
        }
    }
}

/// Stops a running [`Server`] from outside a session (embedding code,
/// tests, signal handlers). Clonable and cheap; the protocol's `shutdown`
/// verb is the in-band equivalent.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown: the acceptor stops, sessions finish
    /// their current request and close, the engine drains.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

/// A bound (but not yet running) decomposition server. See the
/// [crate docs](crate) for the protocol and an example.
pub struct Server {
    listener: TcpListener,
    /// The `GET /metrics` HTTP listener, when configured.
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener(s) and spawns the engine's worker pool.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            None => None,
            Some(addr) => Some(TcpListener::bind(addr)?),
        };
        let metrics_addr = match &metrics_listener {
            None => None,
            Some(listener) => Some(listener.local_addr()?),
        };
        let registry = Registry::new();
        let counters = Counters::new(&registry, config.obs.window, config.obs.window_slots);
        // Satellite identity/uptime gauges: `build.info` is the
        // conventional constant-1 gauge (the exposition attaches the
        // version as a label); uptime is refreshed at read time.
        registry.gauge("build.info").set(1);
        registry.gauge("process.uptime_seconds").set(0);
        let obs = ServerObs::new(&config.obs, registry)?;
        // Recovery happens at bind, before any session exists: replay the
        // journal into the fresh store (tolerating a torn tail), then let
        // `Journal::open`'s boot-time compaction rewrite the file clean.
        let store = PlanStore::new();
        store.set_lease_ttl(config.lease_ttl);
        let journal = match config.journal {
            None => None,
            Some(path) => Some(Journal::open(path, &store)?),
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(config.engine),
            shutdown: AtomicBool::new(false),
            local_addr,
            metrics_addr,
            request_timeout: config.request_timeout,
            max_inflight: config.max_inflight.max(1),
            middleware: config.request_middleware,
            counters,
            obs,
            connections: AtomicUsize::new(0),
            store,
            next_session: AtomicU64::new(1),
            started: Instant::now(),
            window: config.obs.window,
            evictions_seen: AtomicU64::new(0),
            evictions_window: WindowedCounter::new(config.obs.window, config.obs.window_slots),
            journal,
        });
        Ok(Server {
            listener,
            metrics_listener,
            shared,
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The bound address of the `GET /metrics` HTTP listener, when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until a shutdown is requested (in-band
    /// `shutdown` verb or [`ShutdownHandle`]), then drains: stops
    /// accepting, joins every session thread, and shuts the engine down so
    /// all queued shards finish before this returns.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            metrics_listener,
            shared,
        } = self;
        let metrics_thread = metrics_listener.map(|metrics_listener| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slade-metrics-http".to_string())
                .spawn(move || metrics_http_loop(&metrics_listener, &shared))
                .expect("spawning the metrics HTTP thread")
        });
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let accepted = listener.accept();
            if shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a late client): drop it
            }
            let stream = match accepted {
                Ok((stream, _)) => stream,
                // Transient accept failures (a client resetting mid-
                // handshake → ECONNABORTED, fd exhaustion → EMFILE, a
                // signal → EINTR) must not kill a long-running server:
                // back off briefly and keep accepting.
                Err(_) => {
                    thread::sleep(ACCEPT_RETRY);
                    continue;
                }
            };
            let session_shared = Arc::clone(&shared);
            sessions.push(
                thread::Builder::new()
                    .name("slade-session".to_string())
                    .spawn(move || session(stream, &session_shared))
                    .expect("spawning a session thread"),
            );
            sessions.retain(|handle| !handle.is_finished());
        }
        drop(listener); // refuse new connections while draining
        for handle in sessions {
            let _ = handle.join();
        }
        if let Some(handle) = metrics_thread {
            // `trigger_shutdown` poked the metrics listener too, so its
            // accept loop has observed the flag and is exiting.
            let _ = handle.join();
        }
        shared.engine.shutdown();
        Ok(())
    }
}

/// The `GET /metrics` accept loop: thread-per-connection like the main
/// server, hand-rolled HTTP/1.1, closing each connection after one
/// response. Woken at shutdown by [`trigger_shutdown`]'s loopback connect.
fn metrics_http_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a late scraper): drop it
        }
        let stream = match accepted {
            Ok((stream, _)) => stream,
            Err(_) => {
                thread::sleep(ACCEPT_RETRY);
                continue;
            }
        };
        let conn_shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("slade-metrics-conn".to_string())
            .spawn(move || serve_metrics_connection(stream, &conn_shared));
    }
}

/// Serves one scrape connection: reads the request head, answers
/// `GET /metrics` with the Prometheus text exposition of the registry
/// snapshot, everything else with a 404. Read errors or malformed requests
/// just drop the connection — a scraper retries, and nothing here may
/// disturb the protocol listener.
fn serve_metrics_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head (CRLF CRLF). GET requests
    // carry no body, so nothing else needs draining.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 16 * 1024 {
            return; // not a plausible scrape request
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
        }
    }
    let request_line = match head.split(|&b| b == b'\r').next() {
        Some(line) => String::from_utf8_lossy(line).into_owned(),
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let body = render_exposition(shared);
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {PROMETHEUS_CONTENT_TYPE}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        let body = "only GET /metrics is served here\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Renders the Prometheus text body: refresh the mirrored/derived gauges
/// (cache, uptime, health), then snapshot and render. Scrapes are a
/// reader, so each one also rotates the window rings.
fn render_exposition(shared: &Shared) -> String {
    refresh_cache_gauges(shared);
    evaluate_health(shared); // sets the health.* gauges
    slade_obs::render_prometheus(
        &shared.obs.registry.snapshot(),
        Some(env!("CARGO_PKG_VERSION")),
    )
}

/// One connection: counts itself in, serves lines, counts itself out. At
/// exit the session's store state is dropped — its leases and pending
/// markers go away, the plans it produced stay claimable by any session.
fn session(stream: TcpStream, shared: &Shared) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let sid = shared.next_session.fetch_add(1, Ordering::SeqCst);
    let state = Session {
        shared,
        sid,
        gate: Gate::default(),
        default_bins: Arc::new(BinSet::paper_example()),
    };
    let _ = state.serve(&stream);
    shared.store.drop_session(sid);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

/// Locks a mutex, shrugging off poisoning: session state stays usable even
/// if a sibling thread panicked mid-update (the panic still fails tests).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The in-flight admission gate: counts tagged requests and remembers
/// their serialized `seq` tags (duplicates among in-flight tags are
/// rejected). The reader blocks in [`Gate::acquire`] at the cap; the
/// multiplexer frees slots as entries complete.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
}

#[derive(Default)]
struct GateState {
    count: usize,
    seqs: HashSet<String>,
}

enum Admission {
    Admitted,
    /// The tag is already in flight on this session.
    Duplicate,
    /// The session is going away; the request is dropped.
    Aborted,
}

impl Gate {
    /// Blocks until a slot is free (or `abort` turns true), then admits
    /// `seq_key`.
    fn acquire(&self, seq_key: &str, cap: usize, abort: impl Fn() -> bool) -> Admission {
        let mut state = lock(&self.state);
        loop {
            if state.seqs.contains(seq_key) {
                return Admission::Duplicate;
            }
            if state.count < cap {
                state.count += 1;
                state.seqs.insert(seq_key.to_string());
                return Admission::Admitted;
            }
            if abort() {
                return Admission::Aborted;
            }
            let (next, _timed_out) = self
                .freed
                .wait_timeout(state, READ_POLL)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }

    fn release(&self, seq_key: &str) {
        let mut state = lock(&self.state);
        state.count = state.count.saturating_sub(1);
        state.seqs.remove(seq_key);
        self.freed.notify_all();
    }
}

/// What one tagged request is waiting on.
enum PendingWork {
    /// A tagged `solve` or `resubmit`.
    Single {
        op: &'static str,
        /// Plan id this request produces (always the request id for
        /// `resubmit`, the optional retain id for `solve`).
        id: Option<String>,
        want_plan: bool,
        /// Boxed: a `ResolvedHandle` holds the whole resolved request and
        /// would dwarf the `Batch` variant inline.
        handle: Box<ResolvedHandle>,
    },
    /// A tagged `batch`: one engine handle per sub-request.
    Batch {
        requests: Vec<EngineRequest>,
        handles: Vec<PlanHandle>,
        results: Vec<Option<Result<DecompositionPlan, EngineError>>>,
    },
}

/// One tagged request in flight on a session.
struct InFlight {
    seq: Json,
    seq_key: String,
    /// When the reader pulled the request off the wire (latency samples
    /// measure from here to the response write).
    started: Instant,
    /// The request's trace span, when the client opted in.
    span: Option<RequestTrace>,
    deadline: Option<Instant>,
    /// The result of `Single` work once its handle delivered (a non-
    /// blocking `try_wait` hands its result out exactly once, so it is
    /// stashed here on the way to the response builder).
    ready: Option<Result<ResolvedPlan, EngineError>>,
    work: PendingWork,
}

/// Messages into the session's multiplexer thread.
enum MuxMsg {
    /// The reader dispatched a tagged request.
    Register { token: u64, entry: Box<InFlight> },
    /// An engine worker finished a shard of the tokened request (sent via
    /// [`ShardNotify`]; may arrive before the matching `Register` — the
    /// multiplexer polls at registration, so early pings are never lost).
    Ping(u64),
    /// The reader is done: answer (or `discard`) everything still in
    /// flight, then write the optional `ack` (the shutdown response) last.
    Drain { ack: Option<Json>, discard: bool },
}

/// How the reader half ended.
enum Exit {
    /// Client EOF / over-long line / server shutdown: drain, then close.
    Drain,
    /// In-band `shutdown` verb: drain, ack, then stop the whole server.
    ShutdownVerb(Json),
    /// The connection is dead (write failure or read error): discard.
    Dead,
}

/// Per-connection state shared by the reader and multiplexer threads.
struct Session<'a> {
    shared: &'a Shared,
    /// This connection's identity in the shared [`PlanStore`].
    sid: SessionId,
    gate: Gate,
    default_bins: Arc<BinSet>,
}

/// Completion metadata riding along with a response to the writer, which
/// finalizes it (latency sample, span sink, trace-id echo) just before the
/// bytes hit the socket.
struct Done {
    op: &'static str,
    started: Instant,
    span: Option<RequestTrace>,
}

/// One queued response line. `done: None` marks lines outside the request
/// accounting (parse errors have no verb; the shutdown ack is excluded by
/// design).
struct Outgoing {
    response: Json,
    done: Option<Done>,
}

/// The reader's handles to the session's other two threads.
struct SessionIo {
    out: Sender<Outgoing>,
    mux: Sender<MuxMsg>,
    /// Next multiplexer token; tokens order [`MuxMsg::Drain`]'s
    /// remaining-work drain deterministically (dispatch order).
    next_token: u64,
}

impl SessionIo {
    fn respond(&self, response: Json) {
        let _ = self.out.send(Outgoing {
            response,
            done: None,
        });
    }

    fn respond_done(&self, response: Json, done: Done) {
        let _ = self.out.send(Outgoing {
            response,
            done: Some(done),
        });
    }
}

impl Session<'_> {
    /// Runs the session: spawns the writer and multiplexer, reads request
    /// lines until EOF / shutdown / a fatal error, then drains.
    fn serve(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(READ_POLL))?;
        let _ = stream.set_nodelay(true);
        let writer_stream = stream.try_clone()?;
        writer_stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        let dead = AtomicBool::new(false);
        let (out_tx, out_rx) = channel::<Outgoing>();
        let (mux_tx, mux_rx) = channel::<MuxMsg>();

        thread::scope(|scope| {
            let dead_ref = &dead;
            let obs = &self.shared.obs;
            let writer = scope.spawn(move || writer_loop(writer_stream, out_rx, dead_ref, obs));
            let mux_out = out_tx.clone();
            let mux = scope.spawn(move || {
                Mux {
                    session: self,
                    out: mux_out,
                    inflight: BTreeMap::new(),
                }
                .run(mux_rx)
            });

            let mut io = SessionIo {
                out: out_tx,
                mux: mux_tx,
                next_token: 0,
            };
            let outcome = self.read_loop(stream, &mut io, &dead);
            let (ack, discard) = match &outcome {
                Ok(Exit::ShutdownVerb(ack)) => (Some(ack.clone()), false),
                Ok(Exit::Drain) => (None, false),
                Ok(Exit::Dead) | Err(_) => (None, true),
            };
            let _ = io.mux.send(MuxMsg::Drain { ack, discard });
            drop(io.mux);
            let _ = mux.join();
            drop(io.out); // the writer drains queued responses, then exits
            let _ = writer.join();
            if let Ok(Exit::ShutdownVerb(_)) = &outcome {
                // Only now — after this session's tagged work is answered
                // and the ack is on the wire — stop the whole server.
                trigger_shutdown(self.shared);
            }
            outcome.map(|_| ())
        })
    }

    /// The reader half: frames lines, serves untagged requests in line,
    /// dispatches tagged ones.
    fn read_loop(
        &self,
        stream: &TcpStream,
        io: &mut SessionIo,
        dead: &AtomicBool,
    ) -> io::Result<Exit> {
        let mut lines = LineBuffer::new(MAX_REQUEST_LINE);
        let mut chunk = [0u8; 8192];
        loop {
            while let Some(line) = lines.next_line() {
                if let Some(exit) = self.serve_line(&line, io, dead) {
                    return Ok(exit);
                }
            }
            if lines.over_limit() {
                // A newline-free flood can only keep growing; refuse it
                // with a structured error and close this connection.
                self.shared.counters.count_error();
                io.respond(protocol::error_response(
                    None,
                    None,
                    &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                ));
                return Ok(Exit::Drain);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Ok(Exit::Drain);
            }
            if dead.load(Ordering::SeqCst) {
                return Ok(Exit::Dead);
            }
            match (&mut (&*stream)).read(&mut chunk) {
                Ok(0) => {
                    // EOF; a trailing line without a newline still counts.
                    if !lines.is_empty() {
                        let line = lines.take_rest();
                        if let Some(exit) = self.serve_line(&line, io, dead) {
                            return Ok(exit);
                        }
                    }
                    return Ok(Exit::Drain);
                }
                Ok(n) => lines.extend(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Mints a trace span for one request, when the client opted in
    /// (`"trace": true`) and tracing is enabled. The `queued` stage is
    /// stamped immediately: the request has been read off the wire and is
    /// about to contend for admission.
    fn mint_span(
        &self,
        op: &'static str,
        requested: bool,
        seq: Option<&Json>,
    ) -> Option<RequestTrace> {
        let obs = &self.shared.obs;
        if !(requested && obs.enabled) {
            return None;
        }
        let id = obs.next_trace.fetch_add(1, Ordering::Relaxed);
        let span = Arc::new(RequestSpan::new(id, op, seq.map(|s| s.to_string())));
        span.record("queued");
        Some(span)
    }

    /// Serves one raw request line; `Some(exit)` ends the reader.
    fn serve_line(&self, raw: &[u8], io: &mut SessionIo, dead: &AtomicBool) -> Option<Exit> {
        let started = Instant::now();
        let counters = &self.shared.counters;
        let Ok(text) = std::str::from_utf8(raw) else {
            counters.count_error();
            io.respond(protocol::error_response(
                None,
                None,
                "request line is not valid UTF-8",
            ));
            return None;
        };
        let line = text.trim();
        if line.is_empty() {
            return None; // blank lines are JSONL padding, not requests
        }
        match protocol::parse_request(line, &self.default_bins) {
            Err(message) => {
                counters.count_error();
                // Echo the tag when one is recoverable, so a pipelining
                // client can attribute the error to its request instead of
                // losing the correlation (the response is still written at
                // this position in the stream — a parse failure never
                // enters the in-flight window).
                let seq = protocol::recover_seq(line);
                io.respond(protocol::error_response(None, seq.as_ref(), &message));
            }
            Ok(Request::Solve {
                request,
                id,
                want_plan,
                seq,
                trace,
            }) => {
                counters.solve.inc();
                counters.count_algorithm(request.algorithm);
                let span = self.mint_span("solve", trace, seq.as_ref());
                let mut request = self.shared.apply_middleware(request);
                if let Some(span) = &span {
                    request = request.with_trace(Arc::clone(span));
                }
                match seq {
                    None => {
                        record_stage(&span, "admitted");
                        let response = self.run_solve(request, id, want_plan, span.as_deref());
                        io.respond_done(
                            response,
                            Done {
                                op: "solve",
                                started,
                                span,
                            },
                        );
                    }
                    Some(seq) => {
                        self.pipeline_solve(io, dead, request, id, want_plan, seq, started, span)
                    }
                }
            }
            Ok(Request::Resubmit {
                id,
                delta,
                want_plan,
                seq,
                trace,
            }) => {
                counters.resubmit.inc();
                let span = self.mint_span("resubmit", trace, seq.as_ref());
                match seq {
                    None => {
                        record_stage(&span, "admitted");
                        let response = self.run_resubmit(&id, &delta, want_plan, span.as_ref());
                        io.respond_done(
                            response,
                            Done {
                                op: "resubmit",
                                started,
                                span,
                            },
                        );
                    }
                    Some(seq) => {
                        self.pipeline_resubmit(io, dead, id, &delta, want_plan, seq, started, span)
                    }
                }
            }
            Ok(Request::Batch {
                requests,
                seq,
                trace,
            }) => {
                counters.batch.inc();
                for request in &requests {
                    counters.count_algorithm(request.algorithm);
                }
                let span = self.mint_span("batch", trace, seq.as_ref());
                let requests: Vec<EngineRequest> = requests
                    .into_iter()
                    .map(|r| {
                        let r = self.shared.apply_middleware(r);
                        match &span {
                            // Sub-requests share the batch's span: their
                            // shard stages interleave on one timeline.
                            Some(span) => r.with_trace(Arc::clone(span)),
                            None => r,
                        }
                    })
                    .collect();
                match seq {
                    None => {
                        record_stage(&span, "admitted");
                        let response = self.run_batch(requests, span.as_ref());
                        io.respond_done(
                            response,
                            Done {
                                op: "batch",
                                started,
                                span,
                            },
                        );
                    }
                    Some(seq) => self.pipeline_batch(io, dead, requests, seq, started, span),
                }
            }
            Ok(Request::Claim { id }) => {
                counters.claim.inc();
                let response = self.run_lease_move("claim", &id);
                io.respond_done(
                    response,
                    Done {
                        op: "claim",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Release { id }) => {
                counters.release.inc();
                let response = self.run_lease_move("release", &id);
                io.respond_done(
                    response,
                    Done {
                        op: "release",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Stats) => {
                counters.stats.inc();
                let response = self.stats_response();
                io.respond_done(
                    response,
                    Done {
                        op: "stats",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Metrics) => {
                counters.metrics.inc();
                let response = self.metrics_response();
                io.respond_done(
                    response,
                    Done {
                        op: "metrics",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Trace { limit }) => {
                counters.trace.inc();
                let response = self.trace_response(limit);
                io.respond_done(
                    response,
                    Done {
                        op: "trace",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Health) => {
                counters.health.inc();
                let response = self.health_response();
                io.respond_done(
                    response,
                    Done {
                        op: "health",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Profile { limit }) => {
                counters.profile.inc();
                let response = self.profile_response(limit);
                io.respond_done(
                    response,
                    Done {
                        op: "profile",
                        started,
                        span: None,
                    },
                );
            }
            Ok(Request::Shutdown) => {
                counters.shutdown.inc();
                let ack = Json::Object(vec![
                    member("ok", Json::Bool(true)),
                    member("op", Json::string("shutdown")),
                ]);
                return Some(Exit::ShutdownVerb(ack));
            }
        }
        None
    }

    // ---- tagged (pipelined) dispatch ------------------------------------

    /// Admits a tagged request through the in-flight gate, answering the
    /// duplicate case with a structured error. `None` means "drop the
    /// request" (dead/aborting session).
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        io: &SessionIo,
        dead: &AtomicBool,
        seq: &Json,
        seq_key: &str,
        op: &'static str,
        started: Instant,
        span: &Option<RequestTrace>,
    ) -> Option<()> {
        let abort = || dead.load(Ordering::SeqCst) || self.shared.shutdown.load(Ordering::SeqCst);
        match self.gate.acquire(seq_key, self.shared.max_inflight, abort) {
            Admission::Admitted => {
                self.shared.counters.pipelined.inc();
                record_stage(span, "admitted");
                Some(())
            }
            Admission::Duplicate => {
                self.shared.counters.count_error();
                io.respond_done(
                    protocol::error_response(
                        None,
                        Some(seq),
                        &format!("seq {seq_key} is already in flight on this session"),
                    ),
                    Done {
                        op,
                        started,
                        span: span.clone(),
                    },
                );
                None
            }
            Admission::Aborted => {
                // The request is dropped — no response will ever be
                // written. Record its latency sample here so the books
                // still balance (one sample per counted request).
                self.shared.obs.record_latency(op, started);
                None
            }
        }
    }

    /// A [`ShardNotify`] that pings the multiplexer about `token`.
    fn notify_for(io: &SessionIo, token: u64) -> ShardNotify {
        let mux = io.mux.clone();
        Arc::new(move || {
            let _ = mux.send(MuxMsg::Ping(token));
        })
    }

    /// Hands a dispatched tagged request to the multiplexer.
    #[allow(clippy::too_many_arguments)]
    fn register(
        &self,
        io: &mut SessionIo,
        seq: Json,
        seq_key: String,
        started: Instant,
        span: Option<RequestTrace>,
        work: PendingWork,
    ) {
        let token = io.next_token;
        io.next_token += 1;
        let entry = InFlight {
            seq,
            seq_key,
            started,
            span,
            deadline: Instant::now().checked_add(self.shared.request_timeout),
            ready: None,
            work,
        };
        let _ = io.mux.send(MuxMsg::Register {
            token,
            entry: Box::new(entry),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn pipeline_solve(
        &self,
        io: &mut SessionIo,
        dead: &AtomicBool,
        request: EngineRequest,
        id: Option<String>,
        want_plan: bool,
        seq: Json,
        started: Instant,
        span: Option<RequestTrace>,
    ) {
        let seq_key = seq.to_string();
        if self
            .admit(io, dead, &seq, &seq_key, "solve", started, &span)
            .is_none()
        {
            return;
        }
        if let Some(id) = &id {
            if let Err(e) = self
                .shared
                .store
                .begin_produce(self.sid, id, Some(&seq_key))
            {
                self.gate.release(&seq_key);
                let response = self.store_error("solve", Some(&seq), &e);
                io.respond_done(
                    response,
                    Done {
                        op: "solve",
                        started,
                        span,
                    },
                );
                return;
            }
        }
        // Register *after* computing the token but the handle *before*
        // registering is impossible (the handle is the registration): early
        // worker pings for this token are covered by the poll the
        // multiplexer performs at registration.
        let token = io.next_token;
        let notify = Self::notify_for(io, token);
        record_stage(&span, "dispatched");
        let handle = Box::new(self.shared.engine.submit_resolved_notify(request, notify));
        self.register(
            io,
            seq,
            seq_key,
            started,
            span,
            PendingWork::Single {
                op: "solve",
                id,
                want_plan,
                handle,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn pipeline_resubmit(
        &self,
        io: &mut SessionIo,
        dead: &AtomicBool,
        id: String,
        delta: &slade_engine::WorkloadDelta,
        want_plan: bool,
        seq: Json,
        started: Instant,
        span: Option<RequestTrace>,
    ) {
        let seq_key = seq.to_string();
        if self
            .admit(io, dead, &seq, &seq_key, "resubmit", started, &span)
            .is_none()
        {
            return;
        }
        // This request becomes the id's producer: concurrent resubmits of
        // one id — from this session or any other — would race each
        // other's retained state, so they queue behind the response.
        let prior = match self
            .shared
            .store
            .begin_resubmit(self.sid, &id, Some(&seq_key))
        {
            Ok(prior) => prior,
            Err(e) => {
                self.gate.release(&seq_key);
                let response = self.store_error("resubmit", Some(&seq), &e);
                io.respond_done(
                    response,
                    Done {
                        op: "resubmit",
                        started,
                        span,
                    },
                );
                return;
            }
        };
        self.shared.counters.count_algorithm(prior.algorithm());
        let token = io.next_token;
        let notify = Self::notify_for(io, token);
        record_stage(&span, "dispatched");
        match self
            .shared
            .engine
            .resubmit_submit_traced(&prior, delta, Some(notify), span.clone())
        {
            Err(e) => {
                let _ = self.shared.finish_store(self.sid, &id, None);
                self.gate.release(&seq_key);
                self.shared.counters.count_error();
                let response =
                    protocol::error_response(Some("resubmit"), Some(&seq), &e.to_string());
                io.respond_done(
                    response,
                    Done {
                        op: "resubmit",
                        started,
                        span,
                    },
                );
            }
            Ok(handle) => self.register(
                io,
                seq,
                seq_key,
                started,
                span,
                PendingWork::Single {
                    op: "resubmit",
                    id: Some(id),
                    want_plan,
                    handle: Box::new(handle),
                },
            ),
        }
    }

    fn pipeline_batch(
        &self,
        io: &mut SessionIo,
        dead: &AtomicBool,
        requests: Vec<EngineRequest>,
        seq: Json,
        started: Instant,
        span: Option<RequestTrace>,
    ) {
        let seq_key = seq.to_string();
        if self
            .admit(io, dead, &seq, &seq_key, "batch", started, &span)
            .is_none()
        {
            return;
        }
        let token = io.next_token;
        let notify = Self::notify_for(io, token);
        record_stage(&span, "dispatched");
        let handles: Vec<PlanHandle> = requests
            .iter()
            .map(|r| self.shared.engine.submit_notify(r.clone(), notify.clone()))
            .collect();
        let results = (0..requests.len()).map(|_| None).collect();
        self.register(
            io,
            seq,
            seq_key,
            started,
            span,
            PendingWork::Batch {
                requests,
                handles,
                results,
            },
        );
    }

    // ---- untagged (strict request/response) execution -------------------

    fn run_solve(
        &self,
        request: EngineRequest,
        id: Option<String>,
        want_plan: bool,
        span: Option<&RequestSpan>,
    ) -> Json {
        if let Some(id) = &id {
            // An untagged producer marks the id pending too: this session
            // is blocked until the response, but *other* sessions race
            // freely and must see the same structured error.
            if let Err(e) = self.shared.store.begin_produce(self.sid, id, None) {
                return self.store_error("solve", None, &e);
            }
        }
        if let Some(span) = span {
            span.record("dispatched");
        }
        let resolved = self
            .shared
            .engine
            .solve_resolved_timeout(request, self.shared.request_timeout);
        match resolved {
            Err(e) => {
                if let Some(id) = &id {
                    let _ = self.shared.finish_store(self.sid, id, None);
                }
                self.engine_error("solve", &e)
            }
            Ok(resolved) => {
                if let Some(span) = span {
                    span.record("merged");
                }
                match id {
                    None => resolved_response("solve", None, None, &resolved, want_plan),
                    Some(id) => {
                        let resolved = Arc::new(resolved);
                        let outcome =
                            self.shared
                                .finish_store(self.sid, &id, Some(Arc::clone(&resolved)));
                        self.outcome_response("solve", &id, None, outcome, &resolved, want_plan)
                    }
                }
            }
        }
    }

    fn run_resubmit(
        &self,
        id: &str,
        delta: &slade_engine::WorkloadDelta,
        want_plan: bool,
        span: Option<&RequestTrace>,
    ) -> Json {
        let prior = match self.shared.store.begin_resubmit(self.sid, id, None) {
            Ok(prior) => prior,
            Err(e) => return self.store_error("resubmit", None, &e),
        };
        self.shared.counters.count_algorithm(prior.algorithm());
        if let Some(span) = span {
            span.record("dispatched");
        }
        match self.shared.engine.resubmit_timeout_traced(
            &prior,
            delta,
            self.shared.request_timeout,
            span.cloned(),
        ) {
            Err(e) => {
                let _ = self.shared.finish_store(self.sid, id, None);
                self.engine_error("resubmit", &e)
            }
            Ok(resolved) => {
                if let Some(span) = span {
                    span.record("merged");
                }
                // Chained resubmits build on the latest state of the id —
                // and the store's verdict shapes the response, so a
                // producer that lost the id mid-solve never reports a
                // false success.
                let resolved = Arc::new(resolved);
                let outcome = self
                    .shared
                    .finish_store(self.sid, id, Some(Arc::clone(&resolved)));
                self.outcome_response("resubmit", id, None, outcome, &resolved, want_plan)
            }
        }
    }

    /// Runs a `claim` or `release` verb against the shared store.
    fn run_lease_move(&self, op: &'static str, id: &str) -> Json {
        let moved = match op {
            "claim" => self.shared.store.claim(self.sid, id),
            _ => self.shared.store.release(self.sid, id),
        };
        match moved {
            Err(e) => self.store_error(op, None, &e),
            Ok(()) => {
                if op == "release" {
                    if let Some(journal) = &self.shared.journal {
                        journal.release(&self.shared.store, id);
                    }
                }
                Json::Object(vec![
                    member("ok", Json::Bool(true)),
                    member("op", Json::string(op)),
                    member("id", Json::string(id)),
                    member("session", Json::number(self.sid as f64)),
                ])
            }
        }
    }

    /// Maps a [`StoreError`] onto a coded error response. Same-session
    /// pending conflicts name the producing request's `seq` tag (the
    /// pipelining client should wait for that response); cross-session
    /// conflicts name the producing session instead.
    fn store_error(&self, op: &str, seq: Option<&Json>, error: &StoreError) -> Json {
        self.shared.counters.count_error();
        let (code, message) = match error {
            StoreError::Pending {
                id,
                producer,
                seq: producer_seq,
            } => {
                let message = match producer_seq {
                    Some(tag) if *producer == self.sid => {
                        format!("plan id `{id}` is still being produced by in-flight seq {tag}")
                    }
                    _ => format!("plan id `{id}` is still being produced by session {producer}"),
                };
                ("pending_producer", message)
            }
            StoreError::LeaseHeld { .. } => ("lease_conflict", error.to_string()),
            StoreError::UnknownPlan { .. } => ("unknown_plan", error.to_string()),
        };
        protocol::coded_error_response(Some(op), seq, Some(code), &message)
    }

    /// Shapes a producer's response from the store's verdict on the plan it
    /// just landed. A normally applied plan answers as before; a plan that
    /// landed *unleased* (the producer lost the id to its own session drop
    /// mid-solve) still answers success but carries `"unleased":true` so
    /// the client knows its lease is gone; a discarded plan (the id was
    /// reassigned to another producer in the meantime) is a coded
    /// `plan_not_stored` error — reporting success would be a lie.
    fn outcome_response(
        &self,
        op: &'static str,
        id: &str,
        seq: Option<&Json>,
        outcome: FinishOutcome,
        resolved: &ResolvedPlan,
        want_plan: bool,
    ) -> Json {
        match outcome {
            FinishOutcome::Discarded => {
                self.shared.counters.count_error();
                protocol::coded_error_response(
                    Some(op),
                    seq,
                    Some("plan_not_stored"),
                    &format!(
                        "plan id `{id}` was reassigned while this request was solving; \
                         the result was not stored"
                    ),
                )
            }
            outcome => {
                let mut response = resolved_response(op, Some(id), seq, resolved, want_plan);
                if outcome == FinishOutcome::LandedUnleased {
                    if let Json::Object(members) = &mut response {
                        members.push(member("unleased", Json::Bool(true)));
                    }
                }
                response
            }
        }
    }

    /// Runs a `batch` verb exactly the way `slade-cli batch` runs a JSONL
    /// stream: submit everything up front, collect in request order, and
    /// turn per-request failures into per-request error entries. The
    /// request timeout spans the whole batch.
    fn run_batch(&self, requests: Vec<EngineRequest>, span: Option<&RequestTrace>) -> Json {
        // Checked like every other wait path: a timeout too large for the
        // `Instant` domain means "no deadline", not an `Instant` overflow.
        let deadline = Instant::now().checked_add(self.shared.request_timeout);
        if let Some(span) = span {
            span.record("dispatched");
        }
        let handles = self.shared.engine.submit_batch(requests.iter().cloned());
        let results: Vec<Result<DecompositionPlan, EngineError>> = handles
            .into_iter()
            .map(|handle| match deadline {
                Some(at) => handle.wait_timeout(at.saturating_duration_since(Instant::now())),
                None => handle.wait(),
            })
            .collect();
        if let Some(span) = span {
            span.record("merged");
        }
        batch_response(self.shared, &requests, results, None)
    }

    fn engine_error(&self, op: &str, error: &EngineError) -> Json {
        self.shared.counters.count_error();
        protocol::error_response(Some(op), None, &error.to_string())
    }

    fn stats_response(&self) -> Json {
        let shared = self.shared;
        let cache = shared.engine.cache_stats();
        let count = |c: &Arc<WindowedCounter>| Json::number(c.get() as f64);
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("stats")),
            member(
                "cache",
                Json::Object(vec![
                    member("hits", Json::number(cache.hits as f64)),
                    member("misses", Json::number(cache.misses as f64)),
                    member("entries", Json::number(cache.entries as f64)),
                    member("capacity", Json::number(cache.capacity as f64)),
                ]),
            ),
            member(
                "ops",
                Json::Object(vec![
                    member("solve", count(&shared.counters.solve)),
                    member("batch", count(&shared.counters.batch)),
                    member("resubmit", count(&shared.counters.resubmit)),
                    member("claim", count(&shared.counters.claim)),
                    member("release", count(&shared.counters.release)),
                    member("stats", count(&shared.counters.stats)),
                    member("shutdown", count(&shared.counters.shutdown)),
                    member("pipelined", count(&shared.counters.pipelined)),
                    member("errors", count(&shared.counters.errors)),
                    // New members append after the original nine, so
                    // clients reading the original fields see identical
                    // bytes.
                    member("metrics", count(&shared.counters.metrics)),
                    member("trace", count(&shared.counters.trace)),
                    member("timeouts", count(&shared.counters.timeouts)),
                    member("health", count(&shared.counters.health)),
                    member("profile", count(&shared.counters.profile)),
                ]),
            ),
            member(
                "algorithms",
                Json::Object(
                    Algorithm::ALL
                        .iter()
                        .zip(&shared.counters.algorithms)
                        .map(|(a, c)| member(a.name(), Json::number(c.get() as f64)))
                        .collect(),
                ),
            ),
            member(
                "connections",
                Json::number(shared.connections.load(Ordering::SeqCst) as f64),
            ),
            member("plans", Json::number(shared.store.count() as f64)),
            member("leases", Json::number(shared.store.leases() as f64)),
            member("steals", Json::number(shared.engine.steals() as f64)),
            member("threads", Json::number(shared.engine.threads() as f64)),
            member("max_inflight", Json::number(shared.max_inflight as f64)),
            member(
                "queue_depth",
                Json::number(shared.engine.queue_depth() as f64),
            ),
            member(
                "sessions",
                Json::number((shared.next_session.load(Ordering::SeqCst) - 1) as f64),
            ),
            // Appended after every pre-existing member (wire compatibility):
            // the per-verb split of the `ops.timeouts` counter above.
            member(
                "timeouts",
                Json::Object(vec![
                    member("solve", count(&shared.counters.timeouts_solve)),
                    member("batch", count(&shared.counters.timeouts_batch)),
                    member("resubmit", count(&shared.counters.timeouts_resubmit)),
                ]),
            ),
        ])
    }

    /// The `metrics` verb: a self-consistent JSON snapshot of every
    /// registered metric plus engine / store / session state. The op
    /// counters come from the same registry snapshot as the histograms, so
    /// at quiescence `latency.<verb>.count == ops.<verb>` for every verb in
    /// [`LATENCY_VERBS`].
    fn metrics_response(&self) -> Json {
        let shared = self.shared;
        let cache = shared.engine.cache_stats();
        let shard_occupancy = refresh_cache_gauges(shared);
        let snapshot = shared.obs.registry.snapshot();
        let ops: Vec<(String, Json)> = snapshot
            .counters
            .iter()
            .filter_map(|(name, value)| {
                name.strip_prefix("ops.")
                    .map(|verb| member(verb, Json::number(*value as f64)))
            })
            .collect();
        let latency: Vec<(String, Json)> = LATENCY_VERBS
            .iter()
            .map(|verb| {
                let snap = snapshot
                    .histograms
                    .get(&format!("latency.{verb}"))
                    .cloned()
                    .unwrap_or_default();
                let window = snapshot
                    .windows
                    .get(&format!("latency.{verb}"))
                    .cloned()
                    .unwrap_or_default();
                member(
                    verb,
                    Json::Object(vec![
                        member("count", Json::number(snap.count() as f64)),
                        member("p50_ns", Json::number(snap.quantile(0.50) as f64)),
                        member("p90_ns", Json::number(snap.quantile(0.90) as f64)),
                        member("p99_ns", Json::number(snap.quantile(0.99) as f64)),
                        member("mean_ns", Json::number(snap.mean() as f64)),
                        // Windowed members append after the lifetime ones
                        // (wire compatibility): the same quantiles over
                        // roughly the last `window.seconds`.
                        member("window_count", Json::number(window.snapshot.count() as f64)),
                        member(
                            "window_p50_ns",
                            Json::number(window.snapshot.quantile(0.50) as f64),
                        ),
                        member(
                            "window_p90_ns",
                            Json::number(window.snapshot.quantile(0.90) as f64),
                        ),
                        member(
                            "window_p99_ns",
                            Json::number(window.snapshot.quantile(0.99) as f64),
                        ),
                        member("window_per_sec", Json::number(window.per_sec())),
                    ]),
                )
            })
            .collect();
        // Aggregate req/s across the latency-tracked verbs: total windowed
        // samples over the longest covered span (the per-verb rings share
        // one configuration, so spans agree to within a rotation).
        let window_requests: u64 = snapshot
            .windows
            .values()
            .map(|view| view.snapshot.count())
            .sum();
        let window_span = snapshot
            .windows
            .values()
            .map(|view| view.span)
            .max()
            .unwrap_or(Duration::ZERO);
        let window_req_per_sec = if window_span.as_secs_f64() > 0.0 {
            window_requests as f64 / window_span.as_secs_f64()
        } else {
            0.0
        };
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("metrics")),
            member("ops", Json::Object(ops)),
            member(
                "cache",
                Json::Object(vec![
                    member("hits", Json::number(cache.hits as f64)),
                    member("misses", Json::number(cache.misses as f64)),
                    member("hit_rate", Json::number(cache.hit_rate())),
                    // Fields below append after the original three, so
                    // clients reading the original fields see identical
                    // bytes (same rule as the stats `ops` object).
                    member("entries", Json::number(cache.entries as f64)),
                    member("capacity", Json::number(cache.capacity as f64)),
                    member("impl", Json::string(cache.cache_impl.name())),
                    member("evictions", Json::number(cache.evictions as f64)),
                    member(
                        "singleflight_waits",
                        Json::number(cache.singleflight_waits as f64),
                    ),
                    member("shards", Json::number(shard_occupancy.len() as f64)),
                    member(
                        "shard_occupancy",
                        Json::Array(
                            shard_occupancy
                                .iter()
                                .map(|&occupancy| Json::number(occupancy as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            member(
                "engine",
                Json::Object(vec![
                    member(
                        "queue_depth",
                        Json::number(shared.engine.queue_depth() as f64),
                    ),
                    member("steals", Json::number(shared.engine.steals() as f64)),
                    member("parks", Json::number(shared.engine.parks() as f64)),
                    member("wakes", Json::number(shared.engine.wakes() as f64)),
                    member("threads", Json::number(shared.engine.threads() as f64)),
                ]),
            ),
            member(
                "store",
                Json::Object(vec![
                    member("plans", Json::number(shared.store.count() as f64)),
                    member("leases", Json::number(shared.store.leases() as f64)),
                    member(
                        "lease_conflicts",
                        Json::number(shared.store.lease_conflicts() as f64),
                    ),
                    // Appended members (wire compatibility: new members
                    // land after every pre-existing one).
                    member(
                        "lease_expiries",
                        Json::number(shared.store.lease_expiries() as f64),
                    ),
                ]),
            ),
            member(
                "sessions",
                Json::Object(vec![
                    member(
                        "active",
                        Json::number(shared.connections.load(Ordering::SeqCst) as f64),
                    ),
                    member(
                        "opened",
                        Json::number((shared.next_session.load(Ordering::SeqCst) - 1) as f64),
                    ),
                ]),
            ),
            member("latency", Json::Object(latency)),
            member(
                "traces",
                Json::Object(vec![
                    member("recorded", Json::number(shared.obs.ring.pushed() as f64)),
                    member("capacity", Json::number(shared.obs.ring.capacity() as f64)),
                ]),
            ),
            // Sections below append after every pre-existing one (wire
            // compatibility, same rule as the nested objects above).
            member(
                "window",
                Json::Object(vec![
                    member("enabled", Json::Bool(!shared.window.is_zero())),
                    member("seconds", Json::number(shared.window.as_secs_f64())),
                    member("requests", Json::number(window_requests as f64)),
                    member("req_per_sec", Json::number(window_req_per_sec)),
                ]),
            ),
            member(
                "timeouts",
                Json::Object(vec![
                    member(
                        "solve",
                        Json::number(shared.counters.timeouts_solve.get() as f64),
                    ),
                    member(
                        "batch",
                        Json::number(shared.counters.timeouts_batch.get() as f64),
                    ),
                    member(
                        "resubmit",
                        Json::number(shared.counters.timeouts_resubmit.get() as f64),
                    ),
                ]),
            ),
            member(
                "process",
                Json::Object(vec![
                    member(
                        "uptime_seconds",
                        Json::number(shared.started.elapsed().as_secs_f64()),
                    ),
                    member("version", Json::string(env!("CARGO_PKG_VERSION"))),
                ]),
            ),
            member(
                "journal",
                match &shared.journal {
                    None => Json::Object(vec![member("enabled", Json::Bool(false))]),
                    Some(journal) => Json::Object(vec![
                        member("enabled", Json::Bool(true)),
                        member("records", Json::number(journal.records() as f64)),
                        member("replayed", Json::number(journal.replayed() as f64)),
                        member(
                            "append_errors",
                            Json::number(journal.append_errors() as f64),
                        ),
                        member("compactions", Json::number(journal.compactions() as f64)),
                    ]),
                },
            ),
        ])
    }

    /// The `trace` verb: the retained completed spans, oldest first;
    /// `limit` keeps only the newest N.
    fn trace_response(&self, limit: Option<usize>) -> Json {
        let mut spans = self.shared.obs.ring.snapshot();
        if let Some(limit) = limit {
            if spans.len() > limit {
                spans.drain(..spans.len() - limit);
            }
        }
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("trace")),
            member(
                "spans",
                Json::Array(spans.iter().map(span_to_json).collect()),
            ),
        ])
    }

    /// The `health` verb: readiness computed from live signals, with
    /// per-signal status and human-readable reasons for anything that is
    /// not `ok`. Also refreshes the `health.*` gauges, so a Prometheus
    /// scrape between health checks reports the last evaluation.
    fn health_response(&self) -> Json {
        let report = evaluate_health(self.shared);
        let signals = report
            .signals
            .iter()
            .map(|signal| {
                let mut members = vec![member("status", Json::string(signal.status))];
                members.extend(signal.detail.iter().cloned());
                member(signal.name, Json::Object(members))
            })
            .collect();
        let reasons = report
            .signals
            .iter()
            .filter_map(|signal| signal.reason.as_ref())
            .map(Json::string)
            .collect();
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("health")),
            member("status", Json::string(report.status)),
            member("reasons", Json::Array(reasons)),
            member("signals", Json::Object(signals)),
        ])
    }

    /// The `profile` verb: the `SpanRing`'s completed spans aggregated
    /// into a per-phase wall-time breakdown — queued, admitted→dispatched,
    /// per-shard solve (split by steal provenance), merge, and write.
    /// `limit` aggregates only the newest N spans. Only traced requests
    /// land in the ring, so the profile covers what `trace` covers.
    fn profile_response(&self, limit: Option<usize>) -> Json {
        let mut spans = self.shared.obs.ring.snapshot();
        if let Some(limit) = limit {
            if spans.len() > limit {
                spans.drain(..spans.len() - limit);
            }
        }
        let mut queued = PhaseAgg::default();
        let mut dispatch = PhaseAgg::default();
        let mut solve = PhaseAgg::default();
        let mut solve_local = PhaseAgg::default();
        let mut solve_stolen = PhaseAgg::default();
        let mut merge = PhaseAgg::default();
        let mut write = PhaseAgg::default();
        let mut expired = 0u64;
        for span in &spans {
            let first = |stage: &str| {
                span.events
                    .iter()
                    .find(|e| e.stage == stage)
                    .map(|e| e.at_ns)
            };
            let last = |stage: &str| {
                span.events
                    .iter()
                    .rev()
                    .find(|e| e.stage == stage)
                    .map(|e| e.at_ns)
            };
            if span.events.iter().any(|e| e.stage == "expired") {
                expired += 1;
            }
            if let (Some(q), Some(a)) = (first("queued"), first("admitted")) {
                queued.add(a.saturating_sub(q));
            }
            if let (Some(a), Some(d)) = (first("admitted"), first("dispatched")) {
                dispatch.add(d.saturating_sub(a));
            }
            // Pair shard_start/shard_finish FIFO per shard index (a batch
            // span legitimately reuses shard indices across sub-requests).
            let mut open: BTreeMap<usize, std::collections::VecDeque<&slade_obs::StageEvent>> =
                BTreeMap::new();
            for event in &span.events {
                let Some(shard) = event.shard else { continue };
                match event.stage {
                    "shard_start" => open.entry(shard).or_default().push_back(event),
                    "shard_finish" => {
                        let Some(start) = open.get_mut(&shard).and_then(|q| q.pop_front()) else {
                            continue;
                        };
                        let ns = event.at_ns.saturating_sub(start.at_ns);
                        solve.add(ns);
                        if start.stolen == Some(true) {
                            solve_stolen.add(ns);
                        } else {
                            solve_local.add(ns);
                        }
                    }
                    _ => {}
                }
            }
            if let Some(m) = last("merged") {
                let solved = last("shard_finish").or_else(|| first("dispatched"));
                if let Some(s) = solved {
                    merge.add(m.saturating_sub(s));
                }
                if let Some(w) = first("written") {
                    write.add(w.saturating_sub(m));
                }
            }
        }
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("profile")),
            member("spans", Json::number(spans.len() as f64)),
            member("expired", Json::number(expired as f64)),
            member(
                "phases",
                Json::Object(vec![
                    member("queued", queued.to_json()),
                    member("dispatch", dispatch.to_json()),
                    member("solve", solve.to_json()),
                    member("solve_local", solve_local.to_json()),
                    member("solve_stolen", solve_stolen.to_json()),
                    member("merge", merge.to_json()),
                    member("write", write.to_json()),
                ]),
            ),
        ])
    }
}

/// Stamps `stage` on a span, when there is one.
fn record_stage(span: &Option<RequestTrace>, stage: &'static str) {
    if let Some(span) = span {
        span.record(stage);
    }
}

/// Serializes one completed span — the shape shared by the `trace` verb's
/// `spans` entries and the `--trace-log` JSONL lines.
fn span_to_json(record: &SpanRecord) -> Json {
    let mut members = vec![
        member("id", Json::number(record.id as f64)),
        member("op", Json::string(record.op)),
    ];
    if let Some(seq) = &record.seq {
        members.push(member("seq", Json::string(seq)));
    }
    members.push(member("total_ns", Json::number(record.total_ns as f64)));
    members.push(member(
        "stolen_shards",
        Json::number(record.stolen_shards as f64),
    ));
    let events: Vec<Json> = record
        .events
        .iter()
        .map(|event| {
            let mut fields = vec![
                member("stage", Json::string(event.stage)),
                member("at_ns", Json::number(event.at_ns as f64)),
            ];
            if let Some(shard) = event.shard {
                fields.push(member("shard", Json::number(shard as f64)));
            }
            if let Some(worker) = event.worker {
                fields.push(member("worker", Json::number(worker as f64)));
            }
            if let Some(stolen) = event.stolen {
                fields.push(member("stolen", Json::Bool(stolen)));
            }
            Json::Object(fields)
        })
        .collect();
    members.push(member("events", Json::Array(events)));
    Json::Object(members)
}

/// One wall-time phase aggregated across spans by the `profile` verb.
#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl PhaseAgg {
    fn add(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    fn to_json(&self) -> Json {
        let mean = self.total_ns.checked_div(self.count).unwrap_or(0);
        Json::Object(vec![
            member("count", Json::number(self.count as f64)),
            member("total_ns", Json::number(self.total_ns as f64)),
            member("mean_ns", Json::number(mean as f64)),
            member("max_ns", Json::number(self.max_ns as f64)),
        ])
    }
}

/// Refreshes the registry gauges that mirror externally-owned state — the
/// engine's cache counters and the process uptime — and returns the
/// per-shard cache occupancy for callers that also report it. Reader-driven
/// like the window rings: the `metrics` verb, the health evaluation, and
/// Prometheus scrapes call this; nothing on the solve path does.
fn refresh_cache_gauges(shared: &Shared) -> Vec<usize> {
    let registry = &shared.obs.registry;
    let cache = shared.engine.cache_stats();
    registry.gauge("cache.entries").set(cache.entries as i64);
    registry
        .gauge("cache.evictions")
        .set(cache.evictions as i64);
    registry
        .gauge("cache.singleflight_waits")
        .set(cache.singleflight_waits as i64);
    let shard_occupancy = shared.engine.cache_shard_occupancy();
    for (i, occupancy) in shard_occupancy.iter().enumerate() {
        registry
            .gauge(&format!("cache.shard.{i}.entries"))
            .set(*occupancy as i64);
    }
    registry
        .gauge("process.uptime_seconds")
        .set(shared.started.elapsed().as_secs() as i64);
    refresh_store_gauges(shared);
    shard_occupancy
}

/// Mirrors the plan store's O(1) counters (and, when journaling is on, the
/// journal's) into registry gauges, so the `metrics` verb, `health`, and
/// Prometheus scrapes all see the same durable-state numbers. Reader-driven
/// like the cache gauges; nothing on the solve path pays for it.
fn refresh_store_gauges(shared: &Shared) {
    let registry = &shared.obs.registry;
    let store = &shared.store;
    registry.gauge("store.plans").set(store.count() as i64);
    registry.gauge("store.leases").set(store.leases() as i64);
    registry
        .gauge("store.lease_conflicts")
        .set(store.lease_conflicts() as i64);
    registry
        .gauge("store.lease_expiries")
        .set(store.lease_expiries() as i64);
    if let Some(journal) = &shared.journal {
        registry
            .gauge("journal.records")
            .set(journal.records() as i64);
        registry
            .gauge("journal.replayed")
            .set(journal.replayed() as i64);
        registry
            .gauge("journal.append_errors")
            .set(journal.append_errors() as i64);
        registry
            .gauge("journal.compactions")
            .set(journal.compactions() as i64);
    }
}

/// Saturation thresholds for the health verb's signals: a signal is
/// `degraded` at its first bound and `unhealthy` at its second. Queue
/// saturation is depth/capacity; timeout and error rates are windowed
/// ratios of the windowed request total; cache pressure is windowed
/// evictions per cache-capacity's worth of entries.
const QUEUE_DEGRADED: f64 = 0.5;
const QUEUE_UNHEALTHY: f64 = 1.0;
const RATIO_DEGRADED: f64 = 0.10;
const RATIO_UNHEALTHY: f64 = 0.50;
const CACHE_DEGRADED: f64 = 1.0;
const CACHE_UNHEALTHY: f64 = 4.0;

/// One evaluated health signal: its name, verdict, an explanation when the
/// verdict is not `ok`, and the raw numbers behind it.
struct HealthSignal {
    name: &'static str,
    status: &'static str,
    reason: Option<String>,
    detail: Vec<(String, Json)>,
}

/// The health verb's full verdict: overall status (the worst signal) plus
/// every signal.
struct HealthReport {
    status: &'static str,
    signals: Vec<HealthSignal>,
}

fn status_for(value: f64, degraded: f64, unhealthy: f64) -> &'static str {
    if value >= unhealthy {
        "unhealthy"
    } else if value >= degraded {
        "degraded"
    } else {
        "ok"
    }
}

fn status_rank(status: &str) -> u8 {
    match status {
        "unhealthy" => 2,
        "degraded" => 1,
        _ => 0,
    }
}

/// Computes readiness from live signals and mirrors the verdict into
/// `health.*` gauges (status encoded 0=ok / 1=degraded / 2=unhealthy,
/// ratios as integer percent). Called by the `health` verb and by every
/// Prometheus scrape, so the gauges track the most recent evaluation.
fn evaluate_health(shared: &Shared) -> HealthReport {
    shared.mirror_evictions();
    refresh_cache_gauges(shared);
    let registry = &shared.obs.registry;
    let mut signals = Vec::with_capacity(6);

    // Queue saturation: admission queue depth against its configured
    // capacity. At 1.0 submissions block (or time out) — unhealthy.
    let depth = shared.engine.queue_depth();
    let capacity = shared.engine.queue_capacity();
    let saturation = depth as f64 / capacity.max(1) as f64;
    let queue_status = status_for(saturation, QUEUE_DEGRADED, QUEUE_UNHEALTHY);
    signals.push(HealthSignal {
        name: "queue",
        status: queue_status,
        reason: (queue_status != "ok").then(|| {
            format!("queue saturation {saturation:.2} (depth {depth} of capacity {capacity})")
        }),
        detail: vec![
            member("depth", Json::number(depth as f64)),
            member("capacity", Json::number(capacity as f64)),
            member("saturation", Json::number(saturation)),
        ],
    });

    // Windowed timeout and error rates against the windowed request total.
    // With no recent traffic both ratios are 0 — an idle server is ready.
    let counters = &shared.counters;
    let window_requests: u64 = [
        &counters.solve,
        &counters.batch,
        &counters.resubmit,
        &counters.claim,
        &counters.release,
        &counters.stats,
        &counters.metrics,
        &counters.trace,
        &counters.health,
        &counters.profile,
        &counters.shutdown,
    ]
    .iter()
    .map(|c| c.windowed().count)
    .sum();
    for (name, count) in [
        ("timeouts", counters.timeouts.windowed().count),
        ("errors", counters.errors.windowed().count),
    ] {
        let ratio = if window_requests == 0 {
            0.0
        } else {
            count as f64 / window_requests as f64
        };
        let status = status_for(ratio, RATIO_DEGRADED, RATIO_UNHEALTHY);
        signals.push(HealthSignal {
            name,
            status,
            reason: (status != "ok").then(|| {
                format!("windowed {name} rate {ratio:.2} ({count} of {window_requests} requests)")
            }),
            detail: vec![
                member("window_count", Json::number(count as f64)),
                member("window_requests", Json::number(window_requests as f64)),
                member("ratio", Json::number(ratio)),
            ],
        });
    }

    // Cache-eviction pressure: windowed evictions per cache-capacity's
    // worth of entries. ≥1.0 means the window churned the whole cache at
    // least once. An uncached engine (capacity 0) has no pressure to
    // report.
    let cache_capacity = shared.engine.cache_stats().capacity;
    let window_evictions = shared.evictions_window.windowed().count;
    let pressure = if cache_capacity == 0 {
        0.0
    } else {
        window_evictions as f64 / cache_capacity as f64
    };
    let cache_status = status_for(pressure, CACHE_DEGRADED, CACHE_UNHEALTHY);
    signals.push(HealthSignal {
        name: "cache",
        status: cache_status,
        reason: (cache_status != "ok").then(|| {
            format!(
                "cache churned {pressure:.2}x its capacity in the window \
                 ({window_evictions} evictions, capacity {cache_capacity})"
            )
        }),
        detail: vec![
            member("window_evictions", Json::number(window_evictions as f64)),
            member("capacity", Json::number(cache_capacity as f64)),
            member("pressure", Json::number(pressure)),
        ],
    });

    // Durable-state pressure: the plan store's live counters, plus the
    // journal's append-error count when journaling is on. A nonzero
    // append-error count means recently landed plans may not survive a
    // restart — the server still answers, but readiness degrades so an
    // operator sees the durability gap before a crash makes it matter.
    let mut store_detail = vec![
        member("plans", Json::number(shared.store.count() as f64)),
        member("leases", Json::number(shared.store.leases() as f64)),
        member(
            "lease_expiries",
            Json::number(shared.store.lease_expiries() as f64),
        ),
    ];
    let mut store_status = "ok";
    let mut store_reason = None;
    if let Some(journal) = &shared.journal {
        let append_errors = journal.append_errors();
        store_detail.push(member(
            "journal_records",
            Json::number(journal.records() as f64),
        ));
        store_detail.push(member(
            "journal_append_errors",
            Json::number(append_errors as f64),
        ));
        if append_errors > 0 {
            store_status = "degraded";
            store_reason = Some(format!(
                "{append_errors} journal append failures — recently landed plans \
                 may not be durable"
            ));
        }
    }
    signals.push(HealthSignal {
        name: "store",
        status: store_status,
        reason: store_reason,
        detail: store_detail,
    });

    // Informational: how many sessions are connected. Never degrades on
    // its own — admission control is the queue signal's job.
    let active = shared.connections.load(Ordering::SeqCst);
    signals.push(HealthSignal {
        name: "sessions",
        status: "ok",
        reason: None,
        detail: vec![member("active", Json::number(active as f64))],
    });

    let status = signals
        .iter()
        .max_by_key(|signal| status_rank(signal.status))
        .map(|signal| signal.status)
        .unwrap_or("ok");

    registry
        .gauge("health.status")
        .set(status_rank(status) as i64);
    registry
        .gauge("health.queue.saturation_pct")
        .set((saturation * 100.0) as i64);
    let pct = |name: &'static str| -> i64 {
        signals
            .iter()
            .find(|signal| signal.name == name)
            .and_then(|signal| signal.detail.iter().find(|(key, _)| key == "ratio"))
            .map(|(_, value)| match value {
                Json::Number(ratio) => (ratio * 100.0) as i64,
                _ => 0,
            })
            .unwrap_or(0)
    };
    registry
        .gauge("health.timeouts.window_ratio_pct")
        .set(pct("timeouts"));
    registry
        .gauge("health.errors.window_ratio_pct")
        .set(pct("errors"));
    registry
        .gauge("health.cache.pressure_pct")
        .set((pressure * 100.0) as i64);
    registry.gauge("health.sessions.active").set(active as i64);

    HealthReport { status, signals }
}

/// Assembles a solve/resubmit success response from a resolved plan; the
/// one builder both the in-line path and the multiplexer use, so tagged and
/// untagged responses cannot drift (a tagged response is the untagged bytes
/// plus the echoed `seq`).
fn resolved_response(
    op: &str,
    id: Option<&str>,
    seq: Option<&Json>,
    resolved: &ResolvedPlan,
    want_plan: bool,
) -> Json {
    let audit = resolved
        .plan()
        .validate(resolved.workload(), resolved.bins())
        .expect("engine plans are structurally valid");
    let mut members = vec![
        member("ok", Json::Bool(true)),
        member("op", Json::string(op)),
    ];
    if let Some(seq) = seq {
        members.push(member("seq", seq.clone()));
    }
    if let Some(id) = id {
        members.push(member("id", Json::string(id)));
    }
    members.extend(protocol::plan_summary_members(
        resolved.algorithm(),
        resolved.workload(),
        &audit,
    ));
    members.push(member("shards", Json::number(resolved.shards() as f64)));
    members.push(member(
        "reused_shards",
        Json::number(resolved.reused_shards() as f64),
    ));
    if want_plan {
        members.push(member("plan", protocol::plan_to_json(resolved.plan())));
    }
    Json::Object(members)
}

/// Assembles a batch response from per-request results (counting failures),
/// shared by the in-line path and the multiplexer.
fn batch_response(
    shared: &Shared,
    requests: &[EngineRequest],
    results: Vec<Result<DecompositionPlan, EngineError>>,
    seq: Option<&Json>,
) -> Json {
    let mut entries = Vec::with_capacity(requests.len());
    for (i, (result, request)) in results.into_iter().zip(requests).enumerate() {
        let mut members = vec![member("request", Json::number(i as f64))];
        match result {
            Ok(plan) => {
                let audit = plan
                    .validate(&request.workload, &request.bins)
                    .expect("engine plans are structurally valid");
                members.extend(protocol::plan_summary_members(
                    request.algorithm,
                    &request.workload,
                    &audit,
                ));
            }
            Err(e) => {
                shared.counters.count_error();
                members.push(member("error", Json::string(e.to_string())));
            }
        }
        entries.push(Json::Object(members));
    }
    let mut members = vec![
        member("ok", Json::Bool(true)),
        member("op", Json::string("batch")),
    ];
    if let Some(seq) = seq {
        members.push(member("seq", seq.clone()));
    }
    members.push(member("results", Json::Array(entries)));
    Json::Object(members)
}

/// The drain's blocking wait: polls a non-consuming `try_wait` until it
/// delivers or `deadline` passes (then the engine's standard timeout
/// error). `try_wait` hands out each result exactly once, so the polling
/// stays with the caller and the deadline math with the entry.
fn wait_out<T>(
    mut poll: impl FnMut() -> Option<Result<T, EngineError>>,
    deadline: Option<Instant>,
    timeout: Duration,
) -> Result<T, EngineError> {
    loop {
        if let Some(result) = poll() {
            return result;
        }
        if deadline.is_some_and(|d| d.saturating_duration_since(Instant::now()).is_zero()) {
            return Err(EngineError::Timeout { after: timeout });
        }
        thread::sleep(Duration::from_millis(1));
    }
}

/// The writer half: serializes every queued response onto the socket. On a
/// write failure (stalled or gone client) it flags the connection dead and
/// keeps draining the channel, so producers never block on a dead peer.
///
/// The writer is also where requests are *finalized*: a traced span gets
/// its `written` stage, is snapshotted, and is sunk (ring / trace log /
/// slow log) — and the latency sample is recorded — strictly before the
/// response bytes reach the socket. A client that has read its response
/// can therefore always retrieve its span with a `trace` request, and the
/// trace id is echoed on the response itself. Finalization happens even on
/// a dead connection (only the write is skipped), so the books balance no
/// matter how the session ends.
fn writer_loop(
    mut stream: TcpStream,
    responses: Receiver<Outgoing>,
    dead: &AtomicBool,
    obs: &ServerObs,
) {
    for Outgoing { mut response, done } in responses {
        if let Some(done) = done {
            if let Some(span) = &done.span {
                span.record("written");
                let record = span.finish();
                if let Json::Object(members) = &mut response {
                    members.push(member("trace", Json::number(record.id as f64)));
                }
                obs.sink_span(&record);
            }
            obs.record_latency(done.op, done.started);
        }
        if dead.load(Ordering::SeqCst) {
            continue;
        }
        if writeln!(stream, "{response}")
            .and_then(|()| stream.flush())
            .is_err()
        {
            dead.store(true, Ordering::SeqCst);
        }
    }
}

/// The multiplexer half: owns every in-flight tagged request of one
/// session. See the module docs for the protocol it implements.
struct Mux<'a, 'b> {
    session: &'a Session<'b>,
    out: Sender<Outgoing>,
    /// In-flight entries by dispatch token (a `BTreeMap` so the final
    /// drain answers remaining work in dispatch order, deterministically).
    inflight: BTreeMap<u64, InFlight>,
}

impl Mux<'_, '_> {
    fn run(mut self, inbox: Receiver<MuxMsg>) {
        loop {
            match inbox.recv_timeout(self.poll_interval()) {
                Ok(MuxMsg::Register { token, entry }) => {
                    self.inflight.insert(token, *entry);
                    // Cover shard pings that raced ahead of registration
                    // (and zero-outstanding work, e.g. an all-reused
                    // resubmit that will never ping).
                    self.try_complete(token);
                }
                Ok(MuxMsg::Ping(token)) => self.try_complete(token),
                Ok(MuxMsg::Drain { ack, discard }) => {
                    self.drain(discard);
                    if let Some(ack) = ack {
                        // The shutdown ack is deliberately outside the
                        // latency accounting (see [`LATENCY_VERBS`]).
                        let _ = self.out.send(Outgoing {
                            response: ack,
                            done: None,
                        });
                    }
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {}
                // The reader vanished without a Drain (a panic); there is
                // nobody left to answer, so just stop.
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.expire_overdue();
        }
    }

    /// Sleep no longer than the nearest in-flight deadline (clamped to the
    /// standard poll), so expiry is noticed promptly even on a silent
    /// connection.
    fn poll_interval(&self) -> Duration {
        let now = Instant::now();
        self.inflight
            .values()
            .filter_map(|e| e.deadline)
            .map(|d| d.saturating_duration_since(now))
            .min()
            .map_or(READ_POLL, |d| d.clamp(Duration::from_millis(1), READ_POLL))
    }

    /// Polls the tokened entry; answers and retires it if it finished.
    fn try_complete(&mut self, token: u64) {
        let Some(entry) = self.inflight.get_mut(&token) else {
            return; // early ping, or the entry already expired
        };
        let ready = match &mut entry.work {
            PendingWork::Single { handle, .. } => handle.try_wait().map(Some),
            PendingWork::Batch {
                handles, results, ..
            } => {
                let mut all_done = true;
                for (handle, slot) in handles.iter_mut().zip(results.iter_mut()) {
                    if slot.is_none() {
                        match handle.try_wait() {
                            Some(result) => *slot = Some(result),
                            None => all_done = false,
                        }
                    }
                }
                all_done.then_some(None)
            }
        };
        if let Some(single_result) = ready {
            let mut entry = self.inflight.remove(&token).expect("present above");
            entry.ready = single_result;
            self.finish(entry, None);
        }
    }

    /// Turns every overdue entry into a structured timeout response; the
    /// abandoned shards finish in the pool (the engine's standard timeout
    /// posture).
    fn expire_overdue(&mut self) {
        let now = Instant::now();
        let due: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, e)| e.deadline.is_some_and(|d| now >= d))
            .map(|(&t, _)| t)
            .collect();
        for token in due {
            let entry = self.inflight.remove(&token).expect("collected above");
            let timeout = EngineError::Timeout {
                after: self.session.shared.request_timeout,
            };
            self.finish(entry, Some(timeout));
        }
    }

    /// Answers (or discards) everything still in flight at session end.
    /// Non-discard drains wait each entry out, bounded by its own deadline.
    fn drain(&mut self, discard: bool) {
        while let Some((_token, mut entry)) = self.inflight.pop_first() {
            if discard {
                // Dead connection: nobody can read responses. Release the
                // bookkeeping; dropping the handles abandons the shards.
                if let PendingWork::Single { id: Some(id), .. } = &entry.work {
                    let _ = self.session.shared.finish_store(self.session.sid, id, None);
                }
                self.session.gate.release(&entry.seq_key);
                // No response will ever be written; record the latency
                // sample directly so every counted request still has
                // exactly one.
                let op = match &entry.work {
                    PendingWork::Single { op, .. } => op,
                    PendingWork::Batch { .. } => "batch",
                };
                self.session.shared.obs.record_latency(op, entry.started);
                continue;
            }
            let deadline = entry.deadline;
            let timeout = self.session.shared.request_timeout;
            match &mut entry.work {
                PendingWork::Single { handle, op, .. } => {
                    let result = wait_out(|| handle.try_wait(), deadline, timeout);
                    if matches!(result, Err(EngineError::Timeout { .. })) {
                        self.session.shared.counters.count_timeout(op);
                    }
                    entry.ready = Some(result);
                    self.finish(entry, None);
                }
                PendingWork::Batch {
                    handles, results, ..
                } => {
                    let mut timed_out = false;
                    for (handle, slot) in handles.iter_mut().zip(results.iter_mut()) {
                        if slot.is_none() {
                            let result = wait_out(|| handle.try_wait(), deadline, timeout);
                            timed_out |= matches!(result, Err(EngineError::Timeout { .. }));
                            *slot = Some(result);
                        }
                    }
                    if timed_out {
                        self.session.shared.counters.count_timeout("batch");
                    }
                    self.finish(entry, None);
                }
            }
        }
    }

    /// Answers one retired entry. `fill` (an expiry timeout) substitutes
    /// for whatever has not reported.
    fn finish(&self, entry: InFlight, fill: Option<EngineError>) {
        let shared = self.session.shared;
        let InFlight {
            seq,
            seq_key,
            started,
            span,
            ready,
            work,
            ..
        } = entry;
        let op: &'static str = match &work {
            PendingWork::Single { op, .. } => op,
            PendingWork::Batch { .. } => "batch",
        };
        if fill.is_some() {
            // `fill` arrives exactly from deadline expiry: this request is
            // being answered with a timeout substituted for its missing
            // results.
            shared.counters.count_timeout(op);
            record_stage(&span, "expired");
        } else {
            record_stage(&span, "merged");
        }
        let response = match work {
            PendingWork::Single {
                op, id, want_plan, ..
            } => {
                let result = match (ready, &fill) {
                    (Some(result), _) => result,
                    (None, Some(timeout)) => Err(timeout.clone()),
                    (None, None) => unreachable!("a Single entry finishes with a result or fill"),
                };
                match result {
                    Ok(resolved) => match id {
                        None => resolved_response(op, None, Some(&seq), &resolved, want_plan),
                        Some(id) => {
                            let resolved = Arc::new(resolved);
                            let outcome = shared.finish_store(
                                self.session.sid,
                                &id,
                                Some(Arc::clone(&resolved)),
                            );
                            self.session.outcome_response(
                                op,
                                &id,
                                Some(&seq),
                                outcome,
                                &resolved,
                                want_plan,
                            )
                        }
                    },
                    Err(e) => {
                        if let Some(id) = &id {
                            // A failed producer releases the id; the
                            // previously retained plan (if any) stays the
                            // id's current state.
                            let _ = shared.finish_store(self.session.sid, id, None);
                        }
                        shared.counters.count_error();
                        protocol::error_response(Some(op), Some(&seq), &e.to_string())
                    }
                }
            }
            PendingWork::Batch {
                requests, results, ..
            } => {
                let results: Vec<Result<DecompositionPlan, EngineError>> = results
                    .into_iter()
                    .map(|slot| match slot {
                        Some(result) => result,
                        None => Err(fill
                            .clone()
                            .expect("only expiry finishes a batch with missing results")),
                    })
                    .collect();
                batch_response(shared, &requests, results, Some(&seq))
            }
        };
        self.session.gate.release(&seq_key);
        let _ = self.out.send(Outgoing {
            response,
            done: Some(Done { op, started, span }),
        });
    }
}
