//! The TCP frontend: a thread-per-connection acceptor over one shared
//! [`Engine`], with per-connection sessions holding resolved plans.
//!
//! Std-only by construction (the build environment has no async runtime):
//! the acceptor blocks in `accept`, each connection gets a session thread,
//! and shutdown is cooperative — a `shutdown` request (or a
//! [`ShutdownHandle`]) sets the flag, wakes the acceptor with a loopback
//! connect, sessions notice via their read-timeout poll, and the engine
//! drains deterministically before [`Server::run`] returns. Session reads
//! poll on a short timeout and solves go through the engine's
//! timeout-aware waits, so neither a silent client nor a stuck solve can
//! wedge the drain.

use crate::json::{member, Json};
use crate::line::LineBuffer;
use crate::protocol::{self, Request};
use slade_core::bin_set::BinSet;
use slade_core::solver::Algorithm;
use slade_engine::{Engine, EngineConfig, EngineError, EngineRequest, ResolvedPlan};
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked session reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long a response write to a stalled client may block before the
/// session gives the connection up.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Back-off after a transient `accept` failure, so an error storm (fd
/// exhaustion, say) cannot hot-spin the acceptor.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// Longest request line a session accepts. Generous — a million-task
/// thresholds array fits severalfold — but finite, so one connection
/// streaming newline-free bytes cannot grow a buffer without bound.
const MAX_REQUEST_LINE: usize = 64 * 1024 * 1024;

/// Number of registered algorithms, for the per-algorithm counter array.
const ALGORITHMS: usize = Algorithm::ALL.len();

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7878"`; port `0` picks an
    /// ephemeral port (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Configuration of the shared [`Engine`] the sessions solve on.
    pub engine: EngineConfig,
    /// Deadline for one request's solving work. A request that exceeds it
    /// gets a structured error response (the connection survives); the
    /// abandoned shards finish in the pool.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            request_timeout: Duration::from_secs(60),
        }
    }
}

/// Per-op and per-algorithm request counters, reported by the `stats` verb.
#[derive(Debug, Default)]
struct Counters {
    solve: AtomicU64,
    batch: AtomicU64,
    resubmit: AtomicU64,
    stats: AtomicU64,
    shutdown: AtomicU64,
    errors: AtomicU64,
    algorithms: [AtomicU64; ALGORITHMS],
}

impl Counters {
    fn count_algorithm(&self, algorithm: Algorithm) {
        let index = Algorithm::ALL
            .iter()
            .position(|a| *a == algorithm)
            .expect("every algorithm is in the registry");
        self.algorithms[index].fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by the acceptor, every session thread, and shutdown
/// handles.
struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    request_timeout: Duration,
    counters: Counters,
    /// Sessions currently connected.
    connections: AtomicUsize,
    /// Resolved plans currently retained across all sessions.
    plans_retained: AtomicUsize,
}

/// Flips the shutdown flag and wakes the blocked acceptor with a loopback
/// connection (std's `accept` has no cancellation of its own).
fn trigger_shutdown(shared: &Shared) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.local_addr);
    }
}

/// Stops a running [`Server`] from outside a session (embedding code,
/// tests, signal handlers). Clonable and cheap; the protocol's `shutdown`
/// verb is the in-band equivalent.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown: the acceptor stops, sessions finish
    /// their current request and close, the engine drains.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

/// A bound (but not yet running) decomposition server. See the
/// [crate docs](crate) for the protocol and an example.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and spawns the engine's worker pool.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Engine::new(config.engine),
            shutdown: AtomicBool::new(false),
            local_addr,
            request_timeout: config.request_timeout,
            counters: Counters::default(),
            connections: AtomicUsize::new(0),
            plans_retained: AtomicUsize::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until a shutdown is requested (in-band
    /// `shutdown` verb or [`ShutdownHandle`]), then drains: stops
    /// accepting, joins every session thread, and shuts the engine down so
    /// all queued shards finish before this returns.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let accepted = listener.accept();
            if shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a late client): drop it
            }
            let stream = match accepted {
                Ok((stream, _)) => stream,
                // Transient accept failures (a client resetting mid-
                // handshake → ECONNABORTED, fd exhaustion → EMFILE, a
                // signal → EINTR) must not kill a long-running server:
                // back off briefly and keep accepting.
                Err(_) => {
                    thread::sleep(ACCEPT_RETRY);
                    continue;
                }
            };
            let session_shared = Arc::clone(&shared);
            sessions.push(
                thread::Builder::new()
                    .name("slade-session".to_string())
                    .spawn(move || session(stream, &session_shared))
                    .expect("spawning a session thread"),
            );
            sessions.retain(|handle| !handle.is_finished());
        }
        drop(listener); // refuse new connections while draining
        for handle in sessions {
            let _ = handle.join();
        }
        shared.engine.shutdown();
        Ok(())
    }
}

/// One connection: counts itself in, serves lines, counts itself out.
fn session(stream: TcpStream, shared: &Shared) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let mut state = Session {
        shared,
        plans: HashMap::new(),
        default_bins: Arc::new(BinSet::paper_example()),
    };
    let _ = state.serve(&stream);
    shared
        .plans_retained
        .fetch_sub(state.plans.len(), Ordering::SeqCst);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

/// Per-connection state: the retained resolved plans, keyed by the
/// client-chosen plan id. Sessions are isolated — ids never leak across
/// connections.
struct Session<'a> {
    shared: &'a Shared,
    plans: HashMap<String, ResolvedPlan>,
    default_bins: Arc<BinSet>,
}

impl Session<'_> {
    /// Reads request lines and writes response lines until EOF, a fatal
    /// I/O error, or shutdown. Reads poll on [`READ_POLL`] so the session
    /// notices a server shutdown even while the client is silent.
    fn serve(&mut self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(READ_POLL))?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream;
        let mut lines = LineBuffer::new(MAX_REQUEST_LINE);
        let mut chunk = [0u8; 8192];
        loop {
            while let Some(line) = lines.next_line() {
                if !self.serve_line(&line, &mut writer)? {
                    return Ok(());
                }
            }
            if lines.over_limit() {
                // A newline-free flood can only keep growing; refuse it
                // with a structured error and close this connection.
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let response = protocol::error_response(
                    None,
                    &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                );
                writeln!(writer, "{response}")?;
                return Ok(());
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            match (&mut (&*stream)).read(&mut chunk) {
                Ok(0) => {
                    // EOF; a trailing line without a newline still counts.
                    if !lines.is_empty() {
                        let line = lines.take_rest();
                        self.serve_line(&line, &mut writer)?;
                    }
                    return Ok(());
                }
                Ok(n) => lines.extend(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Serves one raw request line; returns whether the session continues.
    fn serve_line(&mut self, raw: &[u8], writer: &mut impl Write) -> io::Result<bool> {
        let Ok(text) = std::str::from_utf8(raw) else {
            let response = protocol::error_response(None, "request line is not valid UTF-8");
            self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "{response}")?;
            return Ok(true);
        };
        let line = text.trim();
        if line.is_empty() {
            return Ok(true); // blank lines are JSONL padding, not requests
        }
        let (response, keep_going) = self.dispatch(line);
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if !keep_going {
            trigger_shutdown(self.shared);
        }
        Ok(keep_going)
    }

    /// Parses and executes one request; the bool is false exactly for a
    /// successful `shutdown` request.
    fn dispatch(&mut self, line: &str) -> (Json, bool) {
        let counters = &self.shared.counters;
        match protocol::parse_request(line, &self.default_bins) {
            Err(message) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                (protocol::error_response(None, &message), true)
            }
            Ok(Request::Solve {
                request,
                id,
                want_plan,
            }) => {
                counters.solve.fetch_add(1, Ordering::Relaxed);
                (self.run_solve(request, id, want_plan), true)
            }
            Ok(Request::Batch { requests }) => {
                counters.batch.fetch_add(1, Ordering::Relaxed);
                (self.run_batch(requests), true)
            }
            Ok(Request::Resubmit {
                id,
                delta,
                want_plan,
            }) => {
                counters.resubmit.fetch_add(1, Ordering::Relaxed);
                (self.run_resubmit(&id, &delta, want_plan), true)
            }
            Ok(Request::Stats) => {
                counters.stats.fetch_add(1, Ordering::Relaxed);
                (self.stats_response(), true)
            }
            Ok(Request::Shutdown) => {
                counters.shutdown.fetch_add(1, Ordering::Relaxed);
                (
                    Json::Object(vec![
                        member("ok", Json::Bool(true)),
                        member("op", Json::string("shutdown")),
                    ]),
                    false,
                )
            }
        }
    }

    fn run_solve(&mut self, request: EngineRequest, id: Option<String>, want_plan: bool) -> Json {
        self.shared.counters.count_algorithm(request.algorithm);
        let resolved = self
            .shared
            .engine
            .solve_resolved_timeout(request, self.shared.request_timeout);
        match resolved {
            Err(e) => self.engine_error("solve", &e),
            Ok(resolved) => {
                let response = self.resolved_response("solve", id.as_deref(), &resolved, want_plan);
                if let Some(id) = id {
                    if self.plans.insert(id, resolved).is_none() {
                        self.shared.plans_retained.fetch_add(1, Ordering::SeqCst);
                    }
                }
                response
            }
        }
    }

    fn run_resubmit(
        &mut self,
        id: &str,
        delta: &slade_engine::WorkloadDelta,
        want_plan: bool,
    ) -> Json {
        let Some(prior) = self.plans.get(id) else {
            self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return protocol::error_response(
                Some("resubmit"),
                &format!(
                    "unknown plan id `{id}`; this session retains {} plan(s)",
                    self.plans.len()
                ),
            );
        };
        self.shared.counters.count_algorithm(prior.algorithm());
        match self
            .shared
            .engine
            .resubmit_timeout(prior, delta, self.shared.request_timeout)
        {
            Err(e) => self.engine_error("resubmit", &e),
            Ok(resolved) => {
                let response = self.resolved_response("resubmit", Some(id), &resolved, want_plan);
                // Chained resubmits build on the latest state of the id.
                self.plans.insert(id.to_string(), resolved);
                response
            }
        }
    }

    /// Runs a `batch` verb exactly the way `slade-cli batch` runs a JSONL
    /// stream: submit everything up front, collect in request order, and
    /// turn per-request failures into per-request error entries. The
    /// request timeout spans the whole batch.
    fn run_batch(&mut self, requests: Vec<EngineRequest>) -> Json {
        // Checked like every other wait path: a timeout too large for the
        // `Instant` domain means "no deadline", not a panic.
        let deadline = Instant::now().checked_add(self.shared.request_timeout);
        for request in &requests {
            self.shared.counters.count_algorithm(request.algorithm);
        }
        let handles = self.shared.engine.submit_batch(requests.iter().cloned());
        let mut results = Vec::with_capacity(requests.len());
        for (i, (handle, request)) in handles.into_iter().zip(&requests).enumerate() {
            let mut members = vec![member("request", Json::number(i as f64))];
            let waited = match deadline {
                Some(at) => handle.wait_timeout(at.saturating_duration_since(Instant::now())),
                None => handle.wait(),
            };
            match waited {
                Ok(plan) => {
                    let audit = plan
                        .validate(&request.workload, &request.bins)
                        .expect("engine plans are structurally valid");
                    members.extend(protocol::plan_summary_members(
                        request.algorithm,
                        &request.workload,
                        &audit,
                    ));
                }
                Err(e) => {
                    self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    members.push(member("error", Json::string(e.to_string())));
                }
            }
            results.push(Json::Object(members));
        }
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("batch")),
            member("results", Json::Array(results)),
        ])
    }

    /// Assembles a solve/resubmit success response from a resolved plan.
    fn resolved_response(
        &self,
        op: &str,
        id: Option<&str>,
        resolved: &ResolvedPlan,
        want_plan: bool,
    ) -> Json {
        let audit = resolved
            .plan()
            .validate(resolved.workload(), resolved.bins())
            .expect("engine plans are structurally valid");
        let mut members = vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string(op)),
        ];
        if let Some(id) = id {
            members.push(member("id", Json::string(id)));
        }
        members.extend(protocol::plan_summary_members(
            resolved.algorithm(),
            resolved.workload(),
            &audit,
        ));
        members.push(member("shards", Json::number(resolved.shards() as f64)));
        members.push(member(
            "reused_shards",
            Json::number(resolved.reused_shards() as f64),
        ));
        if want_plan {
            members.push(member("plan", protocol::plan_to_json(resolved.plan())));
        }
        Json::Object(members)
    }

    fn engine_error(&self, op: &str, error: &EngineError) -> Json {
        self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        protocol::error_response(Some(op), &error.to_string())
    }

    fn stats_response(&self) -> Json {
        let shared = self.shared;
        let cache = shared.engine.cache_stats();
        let count = |c: &AtomicU64| Json::number(c.load(Ordering::Relaxed) as f64);
        Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("stats")),
            member(
                "cache",
                Json::Object(vec![
                    member("hits", Json::number(cache.hits as f64)),
                    member("misses", Json::number(cache.misses as f64)),
                    member("entries", Json::number(cache.entries as f64)),
                    member("capacity", Json::number(cache.capacity as f64)),
                ]),
            ),
            member(
                "ops",
                Json::Object(vec![
                    member("solve", count(&shared.counters.solve)),
                    member("batch", count(&shared.counters.batch)),
                    member("resubmit", count(&shared.counters.resubmit)),
                    member("stats", count(&shared.counters.stats)),
                    member("shutdown", count(&shared.counters.shutdown)),
                    member("errors", count(&shared.counters.errors)),
                ]),
            ),
            member(
                "algorithms",
                Json::Object(
                    Algorithm::ALL
                        .iter()
                        .zip(&shared.counters.algorithms)
                        .map(|(a, c)| member(a.name(), count(c)))
                        .collect(),
                ),
            ),
            member(
                "connections",
                Json::number(shared.connections.load(Ordering::SeqCst) as f64),
            ),
            member(
                "plans",
                Json::number(shared.plans_retained.load(Ordering::SeqCst) as f64),
            ),
            member("threads", Json::number(shared.engine.threads() as f64)),
        ])
    }
}
