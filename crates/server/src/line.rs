//! Newline framing shared by the server's sessions and the [`Client`]:
//! one buffer type that accumulates raw reads and yields complete lines,
//! so the two sides of the protocol can never drift in how they split the
//! stream.
//!
//! [`Client`]: crate::client::Client

/// Accumulates raw bytes and yields complete newline-terminated lines.
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Maximum bytes one line may occupy; [`LineBuffer::over_limit`] turns
    /// true when the pending (incomplete) line exceeds it.
    max_line: usize,
}

impl LineBuffer {
    pub fn new(max_line: usize) -> Self {
        LineBuffer {
            buf: Vec::new(),
            max_line,
        }
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line (newline included), if one is buffered.
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        Some(self.buf.drain(..=pos).collect())
    }

    /// Takes whatever is buffered — the trailing line of a stream that
    /// ended without a final newline.
    pub fn take_rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Whether an incomplete line has outgrown the cap. Only meaningful
    /// after [`LineBuffer::next_line`] returned `None`: a buffer this full
    /// with no newline in sight can only keep growing.
    pub fn over_limit(&self) -> bool {
        self.buf.len() > self.max_line
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines_across_arbitrary_read_boundaries() {
        let mut lines = LineBuffer::new(1024);
        lines.extend(b"alpha\nbe");
        assert_eq!(lines.next_line().as_deref(), Some(b"alpha\n".as_slice()));
        assert_eq!(lines.next_line(), None);
        lines.extend(b"ta\n\ngam");
        assert_eq!(lines.next_line().as_deref(), Some(b"beta\n".as_slice()));
        assert_eq!(lines.next_line().as_deref(), Some(b"\n".as_slice()));
        assert_eq!(lines.next_line(), None);
        assert!(!lines.is_empty());
        assert_eq!(lines.take_rest(), b"gam".to_vec());
        assert!(lines.is_empty());
    }

    #[test]
    fn over_limit_trips_only_for_unterminated_overlong_lines() {
        let mut lines = LineBuffer::new(8);
        lines.extend(b"0123456789\n");
        // A complete line is extractable regardless of the cap...
        assert!(lines.next_line().is_some());
        // ...but an incomplete line beyond the cap trips the guard.
        lines.extend(b"0123456789");
        assert_eq!(lines.next_line(), None);
        assert!(lines.over_limit());
    }
}
