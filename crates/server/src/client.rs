//! A small synchronous client for the line-delimited JSON protocol, used
//! by `slade-cli client`, the loopback benchmarks, and the e2e tests.
//!
//! Besides the strict request/response [`Client::roundtrip`], the client
//! speaks the protocol's pipelining dialect: [`Client::pipeline`] tags
//! requests with `seq`, keeps a window of them in flight on one
//! connection, and reorders the out-of-order responses back into request
//! order.

use crate::json::{self, member, Json};
use crate::line::LineBuffer;
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client. One request/response pair at a time
/// ([`Client::roundtrip`]); responses arrive in request order because a
/// session serves its connection sequentially.
pub struct Client {
    stream: TcpStream,
    /// Bytes received but not yet consumed as a complete line — framed by
    /// the same [`LineBuffer`] the server's sessions use. Uncapped: the
    /// server is trusted, and full-plan responses are legitimately large.
    lines: LineBuffer,
}

impl Client {
    /// Connects with a 30-second read timeout, so a wedged server surfaces
    /// as an error instead of a hang (tighten with
    /// [`Client::set_read_timeout`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            lines: LineBuffer::new(usize::MAX),
        })
    }

    /// Bounds how long [`Client::recv_line`] may block; `None` waits
    /// forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw request line (the newline is appended here).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Receives one response line (without its newline).
    pub fn recv_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(line) = self.lines.next_line() {
                let text = String::from_utf8(line).map_err(|e| {
                    io::Error::new(ErrorKind::InvalidData, format!("non-UTF-8 response: {e}"))
                })?;
                return Ok(text.trim_end_matches(['\n', '\r']).to_string());
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.lines.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request line and returns the matching response line.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// [`Client::roundtrip`] at the [`Json`] level: serializes the
    /// request, parses the response (a malformed response is an
    /// [`ErrorKind::InvalidData`] error — the server always answers in
    /// valid JSON).
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let line = self.roundtrip(&request.to_string())?;
        json::parse(&line).map_err(|e| {
            io::Error::new(
                ErrorKind::InvalidData,
                format!("unparseable response `{line}`: {e}"),
            )
        })
    }

    /// Issues `lines` with up to `window` requests in flight on this one
    /// connection, returning the responses **in request order** (each with
    /// its echoed `seq` member — strip it when comparing against sequential
    /// responses).
    ///
    /// Lines whose verb supports pipelining (`solve` — including the bare
    /// default — `batch`, `resubmit`) and that carry no `seq` of their own
    /// are tagged with `"seq": <line index>` and streamed. Everything else —
    /// `stats`, `shutdown`, unknown verbs, malformed lines, lines already
    /// tagged — acts as a **barrier**: every outstanding response is
    /// collected first, then the line runs as a plain round trip at its
    /// position in the stream. (That keeps "`shutdown` as the last line"
    /// scripts working unchanged, and matches the server's rule that stats
    /// and shutdown answer in stream position.)
    ///
    /// A streamed line the *server* rejects (unknown field, bad engine
    /// values) is not an error of this call: the server echoes the tag on
    /// its structured error response, so the `{"ok":false,…}` line lands in
    /// the request's slot like any other response.
    ///
    /// Empty/whitespace lines produce an empty response string (the server
    /// treats them as JSONL padding and never answers them).
    pub fn pipeline<S: AsRef<str>>(
        &mut self,
        lines: &[S],
        window: usize,
    ) -> io::Result<Vec<String>> {
        let window = window.max(1);
        let mut responses: Vec<Option<String>> = (0..lines.len()).map(|_| None).collect();
        // seq (the line index) → response slot still outstanding.
        let mut outstanding: HashMap<u64, usize> = HashMap::new();
        for (index, line) in lines.iter().enumerate() {
            let line = line.as_ref().trim();
            if line.is_empty() {
                responses[index] = Some(String::new());
                continue;
            }
            match tag_with_seq(line, index as u64) {
                Some(tagged) => {
                    while outstanding.len() >= window {
                        self.collect_one(&mut outstanding, &mut responses)?;
                    }
                    self.send_line(&tagged.to_string())?;
                    outstanding.insert(index as u64, index);
                }
                None => {
                    // Barrier: drain the window, then run in line.
                    while !outstanding.is_empty() {
                        self.collect_one(&mut outstanding, &mut responses)?;
                    }
                    responses[index] = Some(self.roundtrip(line)?);
                }
            }
        }
        while !outstanding.is_empty() {
            self.collect_one(&mut outstanding, &mut responses)?;
        }
        Ok(responses
            .into_iter()
            .map(|slot| slot.expect("every line is answered or padded"))
            .collect())
    }

    /// Receives one pipelined response and files it under its echoed seq.
    fn collect_one(
        &mut self,
        outstanding: &mut HashMap<u64, usize>,
        responses: &mut [Option<String>],
    ) -> io::Result<()> {
        let line = self.recv_line()?;
        let invalid =
            |what: &str| io::Error::new(ErrorKind::InvalidData, format!("{what}: `{line}`"));
        let value = json::parse(&line).map_err(|_| invalid("unparseable pipelined response"))?;
        let seq = value
            .get("seq")
            .and_then(Json::as_f64)
            .ok_or_else(|| invalid("pipelined response without a numeric seq"))?;
        let index = outstanding
            .remove(&(seq as u64))
            .ok_or_else(|| invalid("pipelined response with an unknown seq"))?;
        responses[index] = Some(line);
        Ok(())
    }
}

/// Tags `line` for pipelining, or `None` when it must run as a barrier.
fn tag_with_seq(line: &str, seq: u64) -> Option<Json> {
    let value = json::parse(line).ok()?;
    let members = value.members()?;
    let op = match value.get("op") {
        None => "solve",
        Some(v) => v.as_str()?,
    };
    if !matches!(op, "solve" | "batch" | "resubmit") || value.get("seq").is_some() {
        return None;
    }
    let mut members = members.to_vec();
    members.push(member("seq", Json::number(seq as f64)));
    Some(Json::Object(members))
}
