//! A small synchronous client for the line-delimited JSON protocol, used
//! by `slade-cli client`, the loopback benchmarks, and the e2e tests.

use crate::json::{self, Json};
use crate::line::LineBuffer;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client. One request/response pair at a time
/// ([`Client::roundtrip`]); responses arrive in request order because a
/// session serves its connection sequentially.
pub struct Client {
    stream: TcpStream,
    /// Bytes received but not yet consumed as a complete line — framed by
    /// the same [`LineBuffer`] the server's sessions use. Uncapped: the
    /// server is trusted, and full-plan responses are legitimately large.
    lines: LineBuffer,
}

impl Client {
    /// Connects with a 30-second read timeout, so a wedged server surfaces
    /// as an error instead of a hang (tighten with
    /// [`Client::set_read_timeout`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            lines: LineBuffer::new(usize::MAX),
        })
    }

    /// Bounds how long [`Client::recv_line`] may block; `None` waits
    /// forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one raw request line (the newline is appended here).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Receives one response line (without its newline).
    pub fn recv_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(line) = self.lines.next_line() {
                let text = String::from_utf8(line).map_err(|e| {
                    io::Error::new(ErrorKind::InvalidData, format!("non-UTF-8 response: {e}"))
                })?;
                return Ok(text.trim_end_matches(['\n', '\r']).to_string());
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.lines.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request line and returns the matching response line.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// [`Client::roundtrip`] at the [`Json`] level: serializes the
    /// request, parses the response (a malformed response is an
    /// [`ErrorKind::InvalidData`] error — the server always answers in
    /// valid JSON).
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        let line = self.roundtrip(&request.to_string())?;
        json::parse(&line).map_err(|e| {
            io::Error::new(
                ErrorKind::InvalidData,
                format!("unparseable response `{line}`: {e}"),
            )
        })
    }
}
