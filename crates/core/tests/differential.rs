//! A randomized differential-test harness: hundreds of seeded small
//! instances, every solver in the registry pinned against the
//! branch-and-bound [`ExactSolver`] ground truth and against its own
//! two-phase pipeline.
//!
//! Per instance, for every [`Algorithm`]:
//!
//! * **soundness** — the plan passes [`PlanAudit`] (`feasible`), and its
//!   cost is never below the exact optimum;
//! * **approximation bound** — the cost stays within the solver's stated
//!   guarantee band (see [`stated_bound`]); the heuristic greedy, which
//!   states no bound, gets a loose sanity ceiling instead;
//! * **two-phase identity** — `prepare(bins, θ)` + `solve_with` produces a
//!   plan equal to the one-shot `solve` **on the randomized instance**
//!   (the per-module pins use hand-picked inputs; this closes the gap);
//! * **declared scope** — solvers that reject heterogeneous workloads or
//!   non-relaxed instances do so with their declared errors, never
//!   silently.
//!
//! Everything is seeded through the in-tree `rand` shim, so a failure
//! reproduces exactly; the instance parameters are printed on panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slade_core::prelude::*;
use slade_core::reliability;

/// Seeded random bin menu: 1–4 distinct cardinalities from 1..=6,
/// mid-range confidences and costs (the regime every solver supports).
fn random_bins(rng: &mut StdRng) -> BinSet {
    let m = rng.random_range(1..5usize);
    let mut cards: Vec<u32> = Vec::new();
    while cards.len() < m {
        let c = rng.random_range(1..7u32);
        if !cards.contains(&c) {
            cards.push(c);
        }
    }
    BinSet::new(
        cards
            .into_iter()
            .map(|c| (c, rng.random_range(0.35..0.95), rng.random_range(0.05..0.5))),
    )
    .expect("generated menus are valid by construction")
}

/// The solver's stated approximation guarantee, as a multiplicative band
/// over the exact optimum — generous enough to never flag a correct
/// implementation, tight enough to catch a broken one.
fn stated_bound(algorithm: Algorithm, workload: &Workload) -> f64 {
    let n = f64::from(workload.len());
    match algorithm {
        // Algorithm 3's bulk-group argument: total ≤ n·p(q*) + c(q*) with
        // n·p(q*) ≤ OPT and c(q*) ≤ OPT (one task's coverage never costs
        // more than the whole instance's), i.e. a 2-approximation on
        // homogeneous instances.
        Algorithm::OpqBased => 2.0,
        // Algorithm 5: one OpqBased sub-solve per geometric threshold
        // level, ⌈log₂(θmax/θmin)⌉ + 1 levels, each within the OpqBased
        // band of its bucket's optimum (itself ≤ OPT of the whole).
        Algorithm::OpqExtended => {
            let theta_max = reliability::theta(workload.max_threshold());
            let theta_min = reliability::theta(workload.min_threshold());
            let levels = (theta_max / theta_min).log2().ceil().max(0.0) + 1.0;
            2.0 * levels
        }
        // §4.3: randomized rounding of the covering LP is O(log n) w.h.p.;
        // the constant is unstated, so allow a wide one.
        Algorithm::Baseline => 4.0 * (1.0 + n.ln()),
        // The greedy states no guarantee (DESIGN.md: "none (heuristic)");
        // this is a sanity ceiling against catastrophic regressions only.
        Algorithm::Greedy => 16.0 * (1.0 + n.ln()),
        // Exact within its budget, rod-cutting exact on relaxed instances.
        Algorithm::Exact | Algorithm::Relaxed => 1.0,
    }
}

/// Runs every registry solver against one instance (with `opt` = the exact
/// optimum's cost), asserting the module-level contracts.
fn check_instance(tag: &str, workload: &Workload, bins: &BinSet, opt: f64) {
    let theta = reliability::theta(workload.max_threshold());
    for algorithm in Algorithm::ALL {
        let solver = algorithm.solver();
        let one_shot = match solver.solve(workload, bins) {
            Ok(plan) => plan,
            // Declared scope exits: pinned as *those* errors, not bugs.
            Err(e) if !workload.is_homogeneous() && !solver.supports_heterogeneous() => {
                assert!(
                    matches!(e, SladeError::HeterogeneousUnsupported { .. }),
                    "{tag}: {algorithm} rejected the workload with the wrong error: {e}"
                );
                continue;
            }
            Err(e) if algorithm == Algorithm::Relaxed => {
                assert!(
                    matches!(e, SladeError::NotRelaxed { .. }),
                    "{tag}: Relaxed rejected the instance with the wrong error: {e}"
                );
                // And only rightfully: some bin must miss θmax.
                assert!(
                    bins.bins().iter().any(|b| b.weight() < theta),
                    "{tag}: Relaxed rejected a relaxed instance: {e}"
                );
                continue;
            }
            Err(e) => panic!("{tag}: {algorithm} failed: {e}"),
        };

        // Soundness: structurally valid, feasible, never below the optimum.
        let audit = one_shot
            .validate(workload, bins)
            .unwrap_or_else(|e| panic!("{tag}: {algorithm} plan invalid: {e}"));
        assert!(
            audit.feasible,
            "{tag}: {algorithm} infeasible; unsatisfied = {:?}",
            audit.unsatisfied
        );
        assert!(
            audit.total_cost >= opt - 1e-9,
            "{tag}: {algorithm} beat the exact optimum: {} < {opt}",
            audit.total_cost
        );

        // Stated approximation band.
        let band = stated_bound(algorithm, workload);
        assert!(
            audit.total_cost <= band * opt + 1e-9,
            "{tag}: {algorithm} cost {} exceeds its stated bound {band} × OPT ({opt})",
            audit.total_cost
        );

        // Two-phase identity on this randomized instance.
        let artifacts = solver
            .prepare(bins, theta)
            .unwrap_or_else(|e| panic!("{tag}: {algorithm} prepare failed: {e}"));
        let two_phase = solver
            .solve_with(artifacts.as_ref(), workload, bins)
            .unwrap_or_else(|e| panic!("{tag}: {algorithm} solve_with failed: {e}"));
        assert_eq!(
            two_phase, one_shot,
            "{tag}: {algorithm} two-phase plan diverged from the one-shot solve"
        );
        // Shared artifacts serve repeated workloads identically (the cache
        // reuse the engine relies on).
        let again = solver
            .solve_with(artifacts.as_ref(), workload, bins)
            .unwrap_or_else(|e| panic!("{tag}: {algorithm} repeated solve_with failed: {e}"));
        assert_eq!(
            again, one_shot,
            "{tag}: {algorithm} artifact reuse diverged"
        );
    }
}

#[test]
fn differential_random_homogeneous_instances() {
    let mut rng = StdRng::seed_from_u64(0x51AD_E001);
    for round in 0..150 {
        let bins = random_bins(&mut rng);
        let n = rng.random_range(1..7u32);
        let t = rng.random_range(0.2..0.96);
        let workload = Workload::homogeneous(n, t).unwrap();
        let tag = format!("hom round {round} (n = {n}, t = {t:.4}, bins = {bins:?})");
        let exact = ExactSolver::default()
            .solve(&workload, &bins)
            .unwrap_or_else(|e| panic!("{tag}: exact failed: {e}"));
        let exact_audit = exact.validate(&workload, &bins).unwrap();
        assert!(exact_audit.feasible, "{tag}: exact infeasible");
        check_instance(&tag, &workload, &bins, exact.total_cost());
    }
}

#[test]
fn differential_random_heterogeneous_instances() {
    let mut rng = StdRng::seed_from_u64(0x51AD_E002);
    for round in 0..150 {
        let bins = random_bins(&mut rng);
        let n = rng.random_range(2..7u32);
        let thresholds: Vec<f64> = (0..n).map(|_| rng.random_range(0.15..0.96)).collect();
        let tag = format!("het round {round} (thresholds = {thresholds:?}, bins = {bins:?})");
        let workload = Workload::heterogeneous(thresholds).unwrap();
        let exact = ExactSolver::default()
            .solve(&workload, &bins)
            .unwrap_or_else(|e| panic!("{tag}: exact failed: {e}"));
        let exact_audit = exact.validate(&workload, &bins).unwrap();
        assert!(exact_audit.feasible, "{tag}: exact infeasible");
        check_instance(&tag, &workload, &bins, exact.total_cost());
    }
}

/// Relaxed instances deserve their own sweep: on them the rod-cutting DP
/// is *exact*, so it must match the branch-and-bound optimum — a second
/// independent ground truth cross-checking the first.
#[test]
fn differential_relaxed_instances_pin_two_exact_solvers_against_each_other() {
    let mut rng = StdRng::seed_from_u64(0x51AD_E003);
    for round in 0..60 {
        let bins = random_bins(&mut rng);
        // Draw thresholds below every confidence in the menu, so a single
        // bin of any type satisfies any task (the relaxed precondition).
        let min_confidence = bins
            .bins()
            .iter()
            .map(|b| b.confidence())
            .fold(f64::INFINITY, f64::min);
        let hi = (min_confidence - 1e-6).max(0.11);
        let n = rng.random_range(1..7u32);
        let workload = if rng.random::<bool>() && n >= 2 {
            Workload::heterogeneous((0..n).map(|_| rng.random_range(0.1..hi)).collect()).unwrap()
        } else {
            Workload::homogeneous(n, rng.random_range(0.1..hi)).unwrap()
        };
        let tag = format!("relaxed round {round} (n = {n}, bins = {bins:?})");
        let exact = ExactSolver::default()
            .solve(&workload, &bins)
            .unwrap_or_else(|e| panic!("{tag}: exact failed: {e}"));
        let relaxed = Algorithm::Relaxed
            .solve(&workload, &bins)
            .unwrap_or_else(|e| panic!("{tag}: relaxed solver failed: {e}"));
        assert!(
            (relaxed.total_cost() - exact.total_cost()).abs() < 1e-9,
            "{tag}: two exact solvers disagree: relaxed {} vs branch-and-bound {}",
            relaxed.total_cost(),
            exact.total_cost()
        );
        check_instance(&tag, &workload, &bins, exact.total_cost());
    }
}
