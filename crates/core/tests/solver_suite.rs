//! Cross-solver integration tests: the paper's running example, exact-solver
//! agreement on tiny instances, and feasibility of every solver on random
//! homogeneous and heterogeneous workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slade_core::prelude::*;
use slade_core::relaxed::solve_relaxed;

/// OPQ-Based reproduces Example 9 of the paper: 4 tasks at t = 0.95 over the
/// Table-1 bins cost 0.68 (two shared b3 bins + two b1 bins).
#[test]
fn opq_based_reproduces_example9() {
    let bins = BinSet::paper_example();
    let workload = Workload::homogeneous(4, 0.95).unwrap();
    let plan = OpqBased::default().solve(&workload, &bins).unwrap();
    assert!((plan.total_cost() - 0.68).abs() < 1e-9);
    let audit = plan.validate(&workload, &bins).unwrap();
    assert!(audit.feasible);
}

/// On every ≤6-task paper-bin instance the exact solver agrees with
/// OPQ-Based, except the two documented cross-group sharing cases at
/// t = 0.95 (n = 4, 5) where the true optimum shaves 0.02 by letting two
/// task groups share one b2 bin — the structure OPQ-Based's per-group
/// combinations cannot express (and the reason the paper's Example 9 answer,
/// 0.68, is an approximation).
#[test]
fn exact_agrees_with_opq_based_on_tiny_instances() {
    let bins = BinSet::paper_example();
    for t in [0.6, 0.8, 0.9, 0.95] {
        for n in 1..=6u32 {
            let w = Workload::homogeneous(n, t).unwrap();
            let exact = ExactSolver::default().solve(&w, &bins).unwrap();
            let opq = OpqBased::default().solve(&w, &bins).unwrap();
            // Soundness: an exact optimum never exceeds an approximation.
            assert!(
                exact.total_cost() <= opq.total_cost() + 1e-9,
                "t = {t}, n = {n}"
            );
            let sharing_case = t == 0.95 && (n == 4 || n == 5);
            if sharing_case {
                assert!(
                    (opq.total_cost() - exact.total_cost() - 0.02).abs() < 1e-9,
                    "t = {t}, n = {n}: exact {} vs opq {}",
                    exact.total_cost(),
                    opq.total_cost()
                );
            } else {
                assert!(
                    (exact.total_cost() - opq.total_cost()).abs() < 1e-9,
                    "t = {t}, n = {n}: exact {} vs opq {}",
                    exact.total_cost(),
                    opq.total_cost()
                );
            }
        }
    }
}

/// On relaxed instances (every confidence ≥ t_max) the rod-cutting DP, the
/// exact solver, and OPQ-Based all land on the same optimum.
#[test]
fn relaxed_exact_and_opq_agree_on_relaxed_instances() {
    let bins = BinSet::new([(2, 0.9, 0.3), (3, 0.85, 0.4)]).unwrap();
    for n in 1..=6u32 {
        let w = Workload::homogeneous(n, 0.8).unwrap();
        let exact = ExactSolver::default()
            .solve(&w, &bins)
            .unwrap()
            .total_cost();
        let opq = OpqBased::default().solve(&w, &bins).unwrap().total_cost();
        let dp = solve_relaxed(&w, &bins).unwrap().total_cost();
        assert!((exact - opq).abs() < 1e-9, "n = {n}");
        assert!((exact - dp).abs() < 1e-9, "n = {n}");
    }
}

fn random_bin_set(rng: &mut StdRng) -> BinSet {
    let m = rng.random_range(1..5usize);
    let mut cards: Vec<u32> = Vec::new();
    while cards.len() < m {
        let c = rng.random_range(1..8u32);
        if !cards.contains(&c) {
            cards.push(c);
        }
    }
    BinSet::new(
        cards
            .into_iter()
            .map(|c| (c, rng.random_range(0.3..0.95), rng.random_range(0.05..0.5))),
    )
    .unwrap()
}

/// `PlanAudit::feasible` holds for every general-purpose solver across
/// random homogeneous workloads.
#[test]
fn all_solvers_feasible_on_random_homogeneous_workloads() {
    let mut rng = StdRng::seed_from_u64(2019);
    for round in 0..25 {
        let bins = random_bin_set(&mut rng);
        let n = rng.random_range(1..40u32);
        let t = rng.random_range(0.2..0.99);
        let w = Workload::homogeneous(n, t).unwrap();
        for algorithm in [
            Algorithm::Greedy,
            Algorithm::OpqBased,
            Algorithm::OpqExtended,
            Algorithm::Baseline,
        ] {
            let plan = algorithm
                .solve(&w, &bins)
                .unwrap_or_else(|e| panic!("round {round}: {algorithm}: {e}"));
            let audit = plan.validate(&w, &bins).unwrap();
            assert!(
                audit.feasible,
                "round {round}: {algorithm} infeasible on n = {n}, t = {t}, bins = {bins:?}; \
                 unsatisfied = {:?}",
                audit.unsatisfied
            );
        }
    }
}

/// `PlanAudit::feasible` holds for every heterogeneous-capable solver across
/// random heterogeneous workloads.
#[test]
fn all_solvers_feasible_on_random_heterogeneous_workloads() {
    let mut rng = StdRng::seed_from_u64(95);
    for round in 0..25 {
        let bins = random_bin_set(&mut rng);
        let n = rng.random_range(2..40u32);
        let thresholds: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..0.99)).collect();
        let w = Workload::heterogeneous(thresholds).unwrap();
        for algorithm in [
            Algorithm::Greedy,
            Algorithm::OpqExtended,
            Algorithm::Baseline,
        ] {
            let plan = algorithm
                .solve(&w, &bins)
                .unwrap_or_else(|e| panic!("round {round}: {algorithm}: {e}"));
            let audit = plan.validate(&w, &bins).unwrap();
            assert!(
                audit.feasible,
                "round {round}: {algorithm} infeasible; unsatisfied = {:?}",
                audit.unsatisfied
            );
        }
    }
}

/// The approximation solvers stay within their guarantee bands of the exact
/// optimum on random tiny instances.
#[test]
fn approximations_bounded_by_exact_on_tiny_random_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..15 {
        let bins = random_bin_set(&mut rng);
        let n = rng.random_range(1..5u32);
        let t = rng.random_range(0.3..0.95);
        let w = Workload::homogeneous(n, t).unwrap();
        let exact = ExactSolver::default()
            .solve(&w, &bins)
            .unwrap()
            .total_cost();
        for algorithm in [Algorithm::Greedy, Algorithm::OpqBased, Algorithm::Baseline] {
            let approx = algorithm.solve(&w, &bins).unwrap().total_cost();
            assert!(approx >= exact - 1e-9, "{algorithm} beat the exact optimum");
            // Generous sanity band; the formal factors are far tighter at
            // this scale.
            assert!(
                approx <= exact * 10.0 + 1e-9,
                "{algorithm}: {approx} vs exact {exact}"
            );
        }
    }
}
