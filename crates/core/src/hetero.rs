//! The OPQ-Extended solver for heterogeneous workloads
//! (Algorithms 4–5 of the paper).
//!
//! Heterogeneous thresholds break the OPQ-Based solver's premise that all
//! tasks are interchangeable. The paper's fix is geometric *threshold
//! bucketing*: round every transformed threshold `θ_i` up to the nearest
//! value in `{θ_max, θ_max/2, θ_max/4, …}`, which
//!
//! 1. at most doubles any task's demand (the factor 2 in the guarantee), and
//! 2. leaves at most `⌈log₂(θ_max/θ_min)⌉` distinct demands, each of which is
//!    a homogeneous sub-problem solved by [`OpqBased`] (its `log n` factor).
//!
//! Stitching the per-bucket plans back together (bucket-local task ids are
//! remapped to global ids) yields the paper's
//! `2⌈log(θ_max/θ_min)⌉·log n`-approximate heterogeneous solver. Workloads
//! that are actually homogeneous skip the bucketing entirely.
//!
//! ```
//! use slade_core::prelude::*;
//!
//! let bins = BinSet::paper_example();
//! // Example 10's thresholds (with the paper's θ(0.7) typo corrected).
//! let workload = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86]).unwrap();
//! let plan = OpqExtended::default().solve(&workload, &bins).unwrap();
//! assert!(plan.validate(&workload, &bins).unwrap().feasible);
//! ```

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::fingerprint::KnobSink;
use crate::opq_based::{OpqArtifacts, OpqBased};
use crate::plan::DecompositionPlan;
use crate::reliability::confidence_from_weight;
use crate::solver::{expect_artifacts, DecompositionSolver, PreparedSolver, SolveArtifacts};
use crate::task::{TaskId, Workload};
use std::any::Any;
use std::sync::{Arc, OnceLock};

/// The OPQ-Extended solver: threshold bucketing on top of [`OpqBased`].
#[derive(Debug, Clone, Default)]
pub struct OpqExtended {
    /// Configuration of the per-bucket homogeneous solver.
    pub inner: OpqBased,
}

/// One geometric threshold bucket of Algorithm 5: an independent homogeneous
/// sub-instance of the heterogeneous problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdBucket {
    /// The geometric level `k` of this bucket: its ceiling is `θ_max / 2^k`.
    /// `0` for the single bucket of a homogeneous workload.
    pub level: u32,
    /// The bucket-ceiling confidence. Solving the members homogeneously at
    /// this threshold satisfies every member (each sits at or below the
    /// ceiling) while over-demanding by at most a factor 2 in θ.
    pub confidence: f64,
    /// Global ids of the member tasks, in ascending order. Bucket-local task
    /// `j` of the sub-plan corresponds to global task `members[j]`.
    pub members: Vec<TaskId>,
}

/// Partitions a workload into the geometric threshold buckets of
/// Algorithm 5, skipping empty buckets. A homogeneous workload yields a
/// single bucket holding every task at its own threshold (no rounding).
///
/// Each bucket is a self-contained homogeneous sub-problem, which makes this
/// the sharding boundary `slade-engine` parallelizes heterogeneous requests
/// over: buckets can be solved on different threads and the sub-plans merged
/// in bucket order, with a result independent of scheduling.
pub fn partition(workload: &Workload) -> Vec<ThresholdBucket> {
    if workload.is_homogeneous() {
        return vec![ThresholdBucket {
            level: 0,
            confidence: workload.threshold(0),
            members: (0..workload.len()).collect(),
        }];
    }

    let theta_max = workload.thetas().fold(f64::MIN, f64::max);
    let theta_min = workload.thetas().fold(f64::MAX, f64::min);
    // Bucket k collects tasks with θ ∈ (θ_max/2^{k+1}, θ_max/2^k]; every
    // task lands in 0..=last_bucket.
    let last_bucket = (theta_max / theta_min).log2().ceil() as u32;

    let mut buckets: Vec<Vec<TaskId>> = vec![Vec::new(); last_bucket as usize + 1];
    for i in 0..workload.len() {
        let k = bucket_of(workload.theta(i), theta_max, last_bucket);
        buckets[k as usize].push(i);
    }

    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, members)| !members.is_empty())
        .map(|(k, members)| {
            // The bucket ceiling θ_max/2^k, rounded back to a confidence;
            // every member's threshold is ≤ it and ≥ half of it.
            let theta_bucket = theta_max / f64::powi(2.0, k as i32);
            ThresholdBucket {
                level: k as u32,
                confidence: confidence_from_weight(theta_bucket),
                members,
            }
        })
        .collect()
}

/// How many geometric levels a [`HeteroArtifacts`] pre-allocates lazy slots
/// for. Levels beyond it (a `θ_max / θ_min` ratio above `2^48` — far outside
/// any practical workload) still solve correctly, just without artifact
/// reuse.
const CACHED_LEVELS: usize = 48;

/// [`OpqExtended`]'s reusable artifacts for one `(BinSet, θ_max)` pair: a
/// per-bucket vector of [`OpqArtifacts`], one per geometric threshold level.
///
/// The anchor `θ` is a workload's maximum transformed threshold. The
/// artifacts for the anchor itself (the homogeneous delegate path) are built
/// eagerly by [`prepare`](PreparedSolver::prepare); the artifacts for each
/// bucket ceiling `θ/2^k` fill lazily the first time a workload occupies
/// that bucket, so heterogeneous workloads with different spreads share one
/// entry as long as their `θ_max` agrees. Filling is deterministic
/// ([`OpqBased::artifacts`] is a pure function), so concurrent solves racing
/// on a level initialize it to interchangeable values.
#[derive(Debug)]
pub struct HeteroArtifacts {
    /// The anchor transformed threshold (a workload's `θ_max`).
    theta: f64,
    /// Signature of the bin menu every level was (or will be) enumerated
    /// against; `solve_with` rejects a different menu.
    bins_signature: u64,
    /// Artifacts at exactly `theta` — the homogeneous delegate path.
    exact: Arc<OpqArtifacts>,
    /// Lazily-filled artifacts for the geometric bucket ceilings; slot `k`
    /// serves buckets at `θ(confidence_from_weight(theta / 2^k))`. Errors
    /// are cached too: enumeration emptiness is deterministic per level.
    levels: Vec<OnceLock<Result<Arc<OpqArtifacts>, SladeError>>>,
}

impl HeteroArtifacts {
    /// The per-bucket artifacts for geometric level `k` at transformed
    /// threshold `theta_level`, filling the slot on first use.
    fn level(
        &self,
        k: u32,
        inner: &OpqBased,
        bins: &BinSet,
        theta_level: f64,
    ) -> Result<Arc<OpqArtifacts>, SladeError> {
        match self.levels.get(k as usize) {
            Some(slot) => slot
                .get_or_init(|| inner.artifacts(bins, theta_level).map(Arc::new))
                .clone(),
            // Beyond the pre-allocated depth: solve correctly, uncached.
            None => inner.artifacts(bins, theta_level).map(Arc::new),
        }
    }

    /// How many geometric levels have been materialized so far (test hook).
    pub fn levels_filled(&self) -> usize {
        self.levels
            .iter()
            .filter(|slot| slot.get().is_some())
            .count()
    }
}

impl SolveArtifacts for HeteroArtifacts {
    fn theta(&self) -> f64 {
        self.theta
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl DecompositionSolver for OpqExtended {
    fn name(&self) -> &'static str {
        "OpqExtended"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        let mut plan = DecompositionPlan::empty(self.name());
        if workload.is_homogeneous() {
            // Algorithm 5 degenerates to Algorithm 3 on one bucket.
            let sub = self.inner.solve(workload, bins)?;
            plan.merge(sub);
            return Ok(plan);
        }

        for bucket in partition(workload) {
            let sub_workload =
                Workload::homogeneous(bucket.members.len() as u32, bucket.confidence)?;
            let mut sub = self.inner.solve(&sub_workload, bins)?;
            sub.remap_tasks(|local| bucket.members[local as usize]);
            plan.merge(sub);
        }
        Ok(plan)
    }
}

impl PreparedSolver for OpqExtended {
    fn prepare(&self, bins: &BinSet, theta: f64) -> Result<Arc<dyn SolveArtifacts>, SladeError> {
        let exact = Arc::new(self.inner.artifacts(bins, theta)?);
        let levels = (0..CACHED_LEVELS).map(|_| OnceLock::new()).collect();
        Ok(Arc::new(HeteroArtifacts {
            theta,
            bins_signature: bins.signature(),
            exact,
            levels,
        }))
    }

    fn solve_with(
        &self,
        artifacts: &dyn SolveArtifacts,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        let artifacts = expect_artifacts::<HeteroArtifacts>(self.name(), artifacts)?;
        if artifacts.bins_signature != bins.signature() {
            return Err(SladeError::ArtifactMismatch {
                solver: self.name(),
                detail: "artifacts were prepared for a different bin menu".into(),
            });
        }
        let theta_max = workload.thetas().fold(f64::MIN, f64::max);
        if theta_max.to_bits() != artifacts.theta.to_bits() {
            return Err(SladeError::ArtifactMismatch {
                solver: self.name(),
                detail: format!(
                    "artifacts anchored at θ_max = {}, workload's θ_max = {theta_max}",
                    artifacts.theta
                ),
            });
        }

        let mut plan = DecompositionPlan::empty(self.name());
        if workload.is_homogeneous() {
            let sub = self
                .inner
                .solve_with_artifacts(workload.len(), &artifacts.exact, bins);
            plan.merge(sub);
            return Ok(plan);
        }

        for bucket in partition(workload) {
            // Route the bucket ceiling through the same workload validation
            // and θ computation as the one-shot path, so errors and bits
            // agree exactly.
            let sub_workload =
                Workload::homogeneous(bucket.members.len() as u32, bucket.confidence)?;
            let theta_level = sub_workload.theta(0);
            let level = artifacts.level(bucket.level, &self.inner, bins, theta_level)?;
            let mut sub = self
                .inner
                .solve_with_artifacts(sub_workload.len(), &level, bins);
            sub.remap_tasks(|local| bucket.members[local as usize]);
            plan.merge(sub);
        }
        Ok(plan)
    }

    fn fingerprint_knobs(&self, sink: &mut KnobSink) {
        self.inner.fingerprint_knobs(sink);
    }
}

/// Index of the geometric bucket holding transformed threshold `theta`.
fn bucket_of(theta: f64, theta_max: f64, last_bucket: u32) -> u32 {
    debug_assert!(theta > 0.0 && theta <= theta_max * (1.0 + 1e-12));
    let raw = (theta_max / theta).log2();
    // A task exactly on a bucket ceiling belongs to that bucket; guard the
    // float error around integer boundaries before flooring.
    let k = (raw + 1e-12).floor() as u32;
    k.min(last_bucket)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::theta;

    #[test]
    fn homogeneous_workloads_delegate_to_opq_based() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(4, 0.95).unwrap();
        let plan = OpqExtended::default().solve(&w, &bins).unwrap();
        // Same structure and cost as OPQ-Based's Example 9 answer.
        assert!((plan.total_cost() - 0.68).abs() < 1e-9);
        assert_eq!(plan.algorithm(), "OpqExtended");
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn example10_style_instance_is_feasible() {
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86]).unwrap();
        let plan = OpqExtended::default().solve(&w, &bins).unwrap();
        let audit = plan.validate(&w, &bins).unwrap();
        assert!(audit.feasible);
        // Rounding up to bucket ceilings can at most double every demand, so
        // the cost can be at most that of serving every task at θ_max twice
        // — loosely bounded here by 4 tasks × cheapest θ(0.86)-combination.
        assert!(plan.total_cost() <= 4.0 * 0.40);
    }

    #[test]
    fn bucketing_respects_ceilings_and_ranges() {
        let tmax = theta(0.95);
        // θ exactly at a ceiling joins that bucket.
        assert_eq!(bucket_of(tmax, tmax, 5), 0);
        assert_eq!(bucket_of(tmax / 2.0, tmax, 5), 1);
        assert_eq!(bucket_of(tmax / 4.0, tmax, 5), 2);
        // Just below a ceiling falls into the next bucket.
        assert_eq!(bucket_of(tmax / 2.0 * 0.999, tmax, 5), 1);
        assert_eq!(bucket_of(tmax * 0.999, tmax, 5), 0);
        // Clamped at the last bucket.
        assert_eq!(bucket_of(tmax / 100.0, tmax, 3), 3);
    }

    #[test]
    fn wide_threshold_spread_stays_feasible() {
        let bins = BinSet::new([(1, 0.9, 0.1), (2, 0.85, 0.18), (3, 0.8, 0.24)]).unwrap();
        let thresholds: Vec<f64> = (0..40)
            .map(|i| 0.05 + 0.93 * (f64::from(i) / 39.0))
            .collect();
        let w = Workload::heterogeneous(thresholds).unwrap();
        let plan = OpqExtended::default().solve(&w, &bins).unwrap();
        let audit = plan.validate(&w, &bins).unwrap();
        assert!(audit.feasible, "unsatisfied: {:?}", audit.unsatisfied);
    }

    #[test]
    fn bucketed_cost_is_within_factor_two_of_per_bucket_lower_bound() {
        // Σ_i θ_i · min_unit_weight_cost is a global lower bound; bucketing
        // pays at most 2× on each θ_i before OPQ-Based's own gap. This is a
        // sanity band, not the formal guarantee.
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
        let plan = OpqExtended::default().solve(&w, &bins).unwrap();
        let lower: f64 = w.thetas().sum::<f64>() * bins.min_unit_weight_cost();
        assert!(plan.total_cost() >= lower - 1e-9);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn partition_covers_every_task_exactly_once() {
        let w = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
        let buckets = partition(&w);
        let mut seen: Vec<TaskId> = buckets.iter().flat_map(|b| b.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for bucket in &buckets {
            assert!(bucket.confidence > 0.0 && bucket.confidence < 1.0);
            // The ceiling dominates every member's own threshold.
            for &t in &bucket.members {
                assert!(w.threshold(t) <= bucket.confidence + 1e-12);
            }
        }
    }

    #[test]
    fn partition_of_homogeneous_workload_is_one_identity_bucket() {
        let w = Workload::homogeneous(5, 0.9).unwrap();
        let buckets = partition(&w);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].confidence, 0.9);
        assert_eq!(buckets[0].members, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prepared_pipeline_matches_one_shot_on_hetero_workloads() {
        let bins = BinSet::paper_example();
        let solver = OpqExtended::default();
        let cases = [
            vec![0.5, 0.6, 0.7, 0.86],
            vec![0.3, 0.55, 0.72, 0.9, 0.95],
            vec![0.95, 0.94],
        ];
        for thresholds in cases {
            let w = Workload::heterogeneous(thresholds.clone()).unwrap();
            let theta_max = w.thetas().fold(f64::MIN, f64::max);
            let artifacts = solver.prepare(&bins, theta_max).unwrap();
            let two_phase = solver.solve_with(artifacts.as_ref(), &w, &bins).unwrap();
            let one_shot = solver.solve(&w, &bins).unwrap();
            assert_eq!(two_phase, one_shot, "{thresholds:?}");
        }
    }

    #[test]
    fn workloads_sharing_theta_max_share_bucket_levels() {
        let bins = BinSet::paper_example();
        let solver = OpqExtended::default();
        // Both workloads top out at t = 0.95, with different spreads.
        let a = Workload::heterogeneous(vec![0.95, 0.5, 0.3]).unwrap();
        let b = Workload::heterogeneous(vec![0.95, 0.5]).unwrap();
        let theta_max = a.thetas().fold(f64::MIN, f64::max);
        assert_eq!(
            theta_max.to_bits(),
            b.thetas().fold(f64::MIN, f64::max).to_bits()
        );
        let artifacts = solver.prepare(&bins, theta_max).unwrap();
        let hetero = artifacts
            .as_any()
            .downcast_ref::<HeteroArtifacts>()
            .unwrap();
        assert_eq!(hetero.levels_filled(), 0, "prepare fills levels lazily");
        let plan_a = solver.solve_with(artifacts.as_ref(), &a, &bins).unwrap();
        let filled_after_a = hetero.levels_filled();
        assert!(filled_after_a >= 1);
        let plan_b = solver.solve_with(artifacts.as_ref(), &b, &bins).unwrap();
        // b's buckets are a subset of a's levels: nothing new materializes
        // unless b occupies a level a did not (it does not here).
        assert_eq!(hetero.levels_filled(), filled_after_a);
        assert_eq!(plan_a, solver.solve(&a, &bins).unwrap());
        assert_eq!(plan_b, solver.solve(&b, &bins).unwrap());
    }

    #[test]
    fn prepared_pipeline_rejects_theta_max_mismatch() {
        let bins = BinSet::paper_example();
        let solver = OpqExtended::default();
        let artifacts = solver.prepare(&bins, theta(0.95)).unwrap();
        let w = Workload::heterogeneous(vec![0.5, 0.9]).unwrap();
        assert!(matches!(
            solver.solve_with(artifacts.as_ref(), &w, &bins),
            Err(SladeError::ArtifactMismatch {
                solver: "OpqExtended",
                ..
            })
        ));
    }

    #[test]
    fn two_tasks_same_bucket_share_bins() {
        let bins = BinSet::paper_example();
        // Both thresholds land in bucket 0 (θ within a factor 2), so the
        // sub-problem is a 2-task homogeneous instance at t = 0.95 and the
        // tasks share bins: two b2 bins at 0.36 total.
        let w = Workload::heterogeneous(vec![0.95, 0.94]).unwrap();
        let plan = OpqExtended::default().solve(&w, &bins).unwrap();
        assert!((plan.total_cost() - 0.36).abs() < 1e-9);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }
}
