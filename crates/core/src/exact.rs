//! Brute-force exact solver for tiny instances (validation only).
//!
//! SLADE is NP-hard (see [`crate::hardness`]), so no polynomial exact solver
//! exists unless P = NP. For instances of a handful of tasks, however, a
//! branch-and-bound over *posted bins* is perfectly tractable and gives the
//! test suite ground truth to compare the approximation algorithms against.
//!
//! Search shape: at every node, pick the unsatisfied task with the largest
//! residual demand (the *pivot*) and branch over every way to post one more
//! bin covering it — each bin type, filled with the pivot plus other
//! currently-unsatisfied tasks up to capacity. Two classical reductions keep
//! this exact while pruning hard:
//!
//! * **restriction to unsatisfied tasks** — any optimal plan can be rewritten
//!   (without cost change) so that each bin only contains tasks still short
//!   of their threshold when the bin is posted;
//! * **maximal filling** — adding an unsatisfied task to a non-full bin never
//!   hurts, so only maximal fillings are branched on.
//!
//! Nodes are cut with the lower bound `cost + Σ residual_i · min_l c_l/(l·w_l)`
//! (a bin of type `l` delivers at most `l·w_l` useful weight for `c_l`), with
//! the greedy heuristic seeding the incumbent. The node budget and task cap
//! guard against misuse on large instances
//! ([`SladeError::ExactBudgetExceeded`]).

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::greedy::Greedy;
use crate::plan::DecompositionPlan;
use crate::reliability::WEIGHT_EPS;
use crate::solver::DecompositionSolver;
use crate::task::{TaskId, Workload};

/// Exhaustive branch-and-bound solver; see the module docs.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// Hard cap on workload size; larger instances error immediately.
    pub max_tasks: u32,
    /// Budget on branch-and-bound nodes expanded before giving up.
    pub node_budget: u64,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_tasks: 10,
            node_budget: 20_000_000,
        }
    }
}

struct Search<'a> {
    bins: &'a BinSet,
    unit_cost: f64,
    node_budget: u64,
    nodes: u64,
    best_cost: f64,
    best_bins: Vec<(usize, Vec<TaskId>)>,
    stack: Vec<(usize, Vec<TaskId>)>,
}

impl Search<'_> {
    /// Lower bound on the cost to clear `residual`.
    fn bound(&self, residual: &[f64]) -> f64 {
        residual.iter().map(|r| r.max(0.0)).sum::<f64>() * self.unit_cost
    }

    fn dfs(&mut self, residual: &mut [f64], cost: f64) -> Result<(), SladeError> {
        self.nodes += 1;
        if self.nodes > self.node_budget {
            return Err(SladeError::ExactBudgetExceeded { nodes: self.nodes });
        }

        // Pivot: unsatisfied task with the largest residual.
        let pivot = residual
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > WEIGHT_EPS)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i);
        let Some(pivot) = pivot else {
            // Feasible leaf.
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best_bins = self.stack.clone();
            }
            return Ok(());
        };

        if cost + self.bound(residual) >= self.best_cost - 1e-12 {
            return Ok(());
        }

        // Other unsatisfied tasks, most deprived first (a good heuristic
        // filling order *and* a canonical one: maximal fillings are the
        // lexicographic prefixes of this ordering).
        let mut others: Vec<usize> = residual
            .iter()
            .enumerate()
            .filter(|&(i, &r)| i != pivot && r > WEIGHT_EPS)
            .map(|(i, _)| i)
            .collect();
        others.sort_by(|&a, &b| {
            residual[b]
                .partial_cmp(&residual[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });

        for (bi, bin) in self.bins.bins().iter().enumerate() {
            let room = (bin.cardinality() as usize - 1).min(others.len());
            // Branch over every maximal filling: the pivot plus each subset
            // of `others` of size exactly `room` (smaller fillings are
            // dominated — adding an unsatisfied task to spare capacity never
            // hurts).
            let mut subset: Vec<usize> = (0..room).collect();
            loop {
                let mut members: Vec<TaskId> = Vec::with_capacity(room + 1);
                members.push(pivot as TaskId);
                members.extend(subset.iter().map(|&s| others[s] as TaskId));
                for &t in &members {
                    residual[t as usize] -= bin.weight();
                }
                self.stack.push((bi, members.clone()));
                self.dfs(residual, cost + bin.cost())?;
                self.stack.pop();
                for &t in &members {
                    residual[t as usize] += bin.weight();
                }
                if !next_combination(&mut subset, others.len()) {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// Advances `subset` to the next size-`|subset|` combination of `0..n` in
/// lexicographic order; returns `false` when exhausted.
fn next_combination(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < n - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

impl DecompositionSolver for ExactSolver {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        if workload.len() > self.max_tasks {
            return Err(SladeError::ExactBudgetExceeded { nodes: 0 });
        }
        // Incumbent: the greedy plan (always feasible).
        let incumbent = Greedy.solve(workload, bins)?;

        let mut residual: Vec<f64> = workload.thetas().collect();
        let mut search = Search {
            bins,
            unit_cost: bins.min_unit_weight_cost(),
            node_budget: self.node_budget,
            nodes: 0,
            best_cost: incumbent.total_cost() + 1e-12,
            best_bins: Vec::new(),
            stack: Vec::new(),
        };
        search.dfs(&mut residual, 0.0)?;

        if search.best_bins.is_empty() {
            // The greedy incumbent was never improved upon.
            return Ok(incumbent);
        }
        let mut plan = DecompositionPlan::empty(self.name());
        for (bi, tasks) in search.best_bins {
            plan.push(&bins.bins()[bi], tasks);
        }
        Ok(plan)
    }
}

// Branch-and-bound state is dominated by the workload's residual vector, so
// the two-phase pipeline is the trait's trivial pass-through.
impl crate::solver::PreparedSolver for ExactSolver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_optimum_is_cheapest_feasible_combination() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(1, 0.95).unwrap();
        let plan = ExactSolver::default().solve(&w, &bins).unwrap();
        // Cheapest by total cost: two b1 bins (0.20).
        assert!((plan.total_cost() - 0.20).abs() < 1e-9);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn paper_instance_true_optimum_beats_example9() {
        // Example 9's OPQ-Based answer is 0.68 but the true optimum of the
        // n = 4, t = 0.95 instance is 0.66: b3{0,1,2}, b3{0,1,3}, b2{2,3}
        // (tasks 0,1 get two b3s; tasks 2,3 get one b3 + the shared b2).
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(4, 0.95).unwrap();
        let plan = ExactSolver::default().solve(&w, &bins).unwrap();
        assert!(
            (plan.total_cost() - 0.66).abs() < 1e-9,
            "{}",
            plan.total_cost()
        );
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn never_worse_than_greedy_or_opq_based() {
        let bins = BinSet::paper_example();
        for n in 1..=5u32 {
            for t in [0.6, 0.9, 0.95] {
                let w = Workload::homogeneous(n, t).unwrap();
                let exact = ExactSolver::default().solve(&w, &bins).unwrap();
                let greedy = Greedy.solve(&w, &bins).unwrap();
                assert!(exact.total_cost() <= greedy.total_cost() + 1e-9);
                assert!(exact.validate(&w, &bins).unwrap().feasible);
            }
        }
    }

    #[test]
    fn heterogeneous_tiny_instance() {
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.5, 0.95]).unwrap();
        let plan = ExactSolver::default().solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
        // Optimum 0.28: task 1 (t = 0.95) takes b2 + b1, and task 0
        // (t = 0.5) rides in the b2's spare slot for free. The no-sharing
        // alternative (2×b1 for task 1, b1 for task 0) costs 0.30.
        assert!(
            (plan.total_cost() - 0.28).abs() < 1e-9,
            "{}",
            plan.total_cost()
        );
    }

    #[test]
    fn task_cap_is_enforced() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(11, 0.9).unwrap();
        assert!(matches!(
            ExactSolver::default().solve(&w, &bins),
            Err(SladeError::ExactBudgetExceeded { nodes: 0 })
        ));
    }

    #[test]
    fn node_budget_is_enforced() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(6, 0.999).unwrap();
        let solver = ExactSolver {
            max_tasks: 10,
            node_budget: 5,
        };
        assert!(matches!(
            solver.solve(&w, &bins),
            Err(SladeError::ExactBudgetExceeded { nodes: 6 })
        ));
    }
}
