//! Workloads: large-scale crowdsourcing tasks and their reliability
//! thresholds.
//!
//! The paper's `T = {a_1..a_n}` with thresholds `{t_1..t_n}` is represented
//! by [`Workload`]. Atomic tasks are identified by dense indices
//! ([`TaskId`] = `u32`); the payload of a task (an image to screen, a pair to
//! compare, ...) lives outside the optimizer — SLADE only needs `n` and the
//! thresholds. The homogeneous case (`t_i` all equal) is stored compactly and
//! detected by solvers that exploit it.

use crate::error::SladeError;
use crate::fingerprint::Fnv1a;
use crate::reliability;

/// Identifier of an atomic task: a dense index in `0..n`.
pub type TaskId = u32;

/// A large-scale crowdsourcing task: `n` atomic tasks plus per-task
/// reliability thresholds in `(0, 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    spec: Spec,
}

#[derive(Debug, Clone, PartialEq)]
enum Spec {
    /// All tasks share one threshold (the homogeneous SLADE problem, §5).
    Homogeneous { n: u32, t: f64 },
    /// Per-task thresholds (the heterogeneous SLADE problem, §6).
    Heterogeneous { thresholds: Vec<f64> },
}

impl Workload {
    /// A homogeneous workload: `n` atomic tasks, all with threshold `t`.
    pub fn homogeneous(n: u32, t: f64) -> Result<Self, SladeError> {
        if n == 0 {
            return Err(SladeError::InvalidWorkload(
                "workload must contain at least one atomic task".into(),
            ));
        }
        validate_threshold(t, 0)?;
        Ok(Workload {
            spec: Spec::Homogeneous { n, t },
        })
    }

    /// A heterogeneous workload from per-task thresholds.
    ///
    /// If all thresholds happen to be equal the workload still reports
    /// [`Workload::is_homogeneous`] as `true`, so solvers can specialize.
    pub fn heterogeneous(thresholds: Vec<f64>) -> Result<Self, SladeError> {
        if thresholds.is_empty() {
            return Err(SladeError::InvalidWorkload(
                "workload must contain at least one atomic task".into(),
            ));
        }
        if thresholds.len() > u32::MAX as usize {
            return Err(SladeError::InvalidWorkload(format!(
                "workload of {} tasks exceeds the u32 task-id space",
                thresholds.len()
            )));
        }
        for (i, &t) in thresholds.iter().enumerate() {
            validate_threshold(t, i)?;
        }
        let first = thresholds[0];
        if thresholds.iter().all(|&t| t == first) {
            return Ok(Workload {
                spec: Spec::Homogeneous {
                    n: thresholds.len() as u32,
                    t: first,
                },
            });
        }
        Ok(Workload {
            spec: Spec::Heterogeneous { thresholds },
        })
    }

    /// Number of atomic tasks `n`.
    pub fn len(&self) -> u32 {
        match &self.spec {
            Spec::Homogeneous { n, .. } => *n,
            Spec::Heterogeneous { thresholds } => thresholds.len() as u32,
        }
    }

    /// Whether the workload is empty (never true for validated workloads).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every task shares the same threshold.
    pub fn is_homogeneous(&self) -> bool {
        matches!(self.spec, Spec::Homogeneous { .. })
    }

    /// Reliability threshold `t_i` of task `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn threshold(&self, i: TaskId) -> f64 {
        assert!(i < self.len(), "task id {i} out of range");
        match &self.spec {
            Spec::Homogeneous { t, .. } => *t,
            Spec::Heterogeneous { thresholds } => thresholds[i as usize],
        }
    }

    /// Transformed threshold `θ_i = -ln(1 - t_i)` of task `i`.
    pub fn theta(&self, i: TaskId) -> f64 {
        reliability::theta(self.threshold(i))
    }

    /// Iterator over all transformed thresholds, in task order.
    pub fn thetas(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.theta(i))
    }

    /// A stable content signature of the workload: FNV-1a over `n` followed
    /// by every threshold in task order, floats by bit pattern. A
    /// heterogeneous workload whose thresholds all coincide signs identically
    /// to the equivalent [`Workload::homogeneous`] (the constructor already
    /// collapses the representation, and the signature hashes observable
    /// thresholds, not storage).
    ///
    /// Scope note: `slade-engine`'s *artifact* cache deliberately does NOT
    /// key on this — OPQ pools and DP tables depend only on `(BinSet, θ)`,
    /// which is exactly what lets one artifact set serve workloads of every
    /// size. This signature identifies the full instance; pair it with
    /// [`BinSet::signature`](crate::bin_set::BinSet::signature) when
    /// memoizing anything *plan-shaped* (whole-request result caching, the
    /// streaming-delta seam in DESIGN.md).
    pub fn signature(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.len()));
        for i in 0..self.len() {
            h.write_f64(self.threshold(i));
        }
        h.finish()
    }

    /// Largest threshold `t_max`.
    pub fn max_threshold(&self) -> f64 {
        match &self.spec {
            Spec::Homogeneous { t, .. } => *t,
            Spec::Heterogeneous { thresholds } => {
                thresholds.iter().copied().fold(f64::MIN, f64::max)
            }
        }
    }

    /// Smallest threshold `t_min`.
    pub fn min_threshold(&self) -> f64 {
        match &self.spec {
            Spec::Homogeneous { t, .. } => *t,
            Spec::Heterogeneous { thresholds } => {
                thresholds.iter().copied().fold(f64::MAX, f64::min)
            }
        }
    }
}

fn validate_threshold(t: f64, index: usize) -> Result<(), SladeError> {
    if !(t > 0.0 && t < 1.0) {
        return Err(SladeError::InvalidWorkload(format!(
            "threshold of task {index} must lie in the open interval (0,1), got {t}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_basics() {
        let w = Workload::homogeneous(4, 0.95).unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.is_homogeneous());
        assert_eq!(w.threshold(3), 0.95);
        assert!((w.theta(0) - 2.995732).abs() < 1e-5);
        assert_eq!(w.max_threshold(), 0.95);
        assert_eq!(w.min_threshold(), 0.95);
    }

    #[test]
    fn heterogeneous_basics() {
        let w = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86]).unwrap();
        assert_eq!(w.len(), 4);
        assert!(!w.is_homogeneous());
        assert_eq!(w.threshold(2), 0.7);
        assert_eq!(w.max_threshold(), 0.86);
        assert_eq!(w.min_threshold(), 0.5);
        let thetas: Vec<f64> = w.thetas().collect();
        assert_eq!(thetas.len(), 4);
        assert!(thetas[3] > thetas[0]);
    }

    #[test]
    fn equal_heterogeneous_collapses_to_homogeneous() {
        let w = Workload::heterogeneous(vec![0.9, 0.9, 0.9]).unwrap();
        assert!(w.is_homogeneous());
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn signature_tracks_observable_thresholds() {
        let homo = Workload::homogeneous(3, 0.9).unwrap();
        let collapsed = Workload::heterogeneous(vec![0.9, 0.9, 0.9]).unwrap();
        assert_eq!(homo.signature(), collapsed.signature());
        let other_n = Workload::homogeneous(4, 0.9).unwrap();
        assert_ne!(homo.signature(), other_n.signature());
        let a = Workload::heterogeneous(vec![0.5, 0.9]).unwrap();
        let b = Workload::heterogeneous(vec![0.9, 0.5]).unwrap();
        // Task ids are positional, so order is part of the identity.
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        assert!(Workload::homogeneous(0, 0.9).is_err());
        assert!(Workload::heterogeneous(vec![]).is_err());
        assert!(Workload::homogeneous(1, 0.0).is_err());
        assert!(Workload::homogeneous(1, 1.0).is_err());
        assert!(Workload::homogeneous(1, -0.5).is_err());
        assert!(Workload::homogeneous(1, f64::NAN).is_err());
        assert!(Workload::heterogeneous(vec![0.9, 1.5]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn threshold_out_of_range_panics() {
        let w = Workload::homogeneous(2, 0.9).unwrap();
        let _ = w.threshold(2);
    }
}
