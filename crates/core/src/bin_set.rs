//! Task bins and bin sets (Definition 1 of the paper).
//!
//! An `l`-cardinality task bin `b_l = <l, r_l, c_l>` can hold *up to* `l`
//! distinct atomic tasks, gives each contained task confidence `r_l`, and
//! costs `c_l` to post. A [`BinSet`] is the menu of bins available to the
//! decomposer — in practice calibrated from marketplace probes (see the
//! `slade-crowd` crate).

use crate::error::SladeError;
use crate::fingerprint::Fnv1a;
use crate::reliability;

/// One task-bin type: cardinality, per-task confidence, posting cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBin {
    cardinality: u32,
    confidence: f64,
    cost: f64,
    /// Cached `-ln(1 - confidence)`.
    weight: f64,
}

impl TaskBin {
    /// Builds a validated bin.
    ///
    /// Requirements: `cardinality >= 1`, `confidence ∈ (0, 1)` (exclusive:
    /// `r = 1` would make a single bin infinitely reliable, `r = 0` makes it
    /// useless), `cost > 0`.
    pub fn new(cardinality: u32, confidence: f64, cost: f64) -> Result<Self, SladeError> {
        if cardinality == 0 {
            return Err(SladeError::InvalidBinSet(
                "bin cardinality must be at least 1".into(),
            ));
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(SladeError::InvalidBinSet(format!(
                "bin confidence must lie in (0,1), got {confidence} for cardinality {cardinality}"
            )));
        }
        if cost <= 0.0 || !cost.is_finite() {
            return Err(SladeError::InvalidBinSet(format!(
                "bin cost must be positive and finite, got {cost} for cardinality {cardinality}"
            )));
        }
        Ok(TaskBin {
            cardinality,
            confidence,
            cost,
            weight: reliability::weight(confidence),
        })
    }

    /// Maximum number of distinct atomic tasks the bin can hold.
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Per-task confidence `r_l`.
    #[inline]
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Posting cost `c_l`.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Cached transformed weight `w_l = -ln(1 - r_l)`.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Average cost per contained task when the bin is filled: `c_l / l`.
    #[inline]
    pub fn cost_per_task(&self) -> f64 {
        self.cost / self.cardinality as f64
    }
}

/// A validated menu of task bins with pairwise-distinct cardinalities,
/// stored in ascending cardinality order.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSet {
    bins: Vec<TaskBin>,
}

impl BinSet {
    /// Builds a bin set from `(cardinality, confidence, cost)` triples.
    ///
    /// Cardinalities must be pairwise distinct; the set may be sparse (e.g.
    /// only cardinalities {1, 4, 9}).
    pub fn new<I>(triples: I) -> Result<Self, SladeError>
    where
        I: IntoIterator<Item = (u32, f64, f64)>,
    {
        let mut bins: Vec<TaskBin> = triples
            .into_iter()
            .map(|(l, r, c)| TaskBin::new(l, r, c))
            .collect::<Result<_, _>>()?;
        if bins.is_empty() {
            return Err(SladeError::InvalidBinSet(
                "bin set must contain at least one bin".into(),
            ));
        }
        bins.sort_by_key(TaskBin::cardinality);
        for pair in bins.windows(2) {
            if pair[0].cardinality() == pair[1].cardinality() {
                return Err(SladeError::InvalidBinSet(format!(
                    "duplicate cardinality {} in bin set",
                    pair[0].cardinality()
                )));
            }
        }
        Ok(BinSet { bins })
    }

    /// The running example of the paper (Table 1):
    /// `b1 = <1, 0.90, 0.10>`, `b2 = <2, 0.85, 0.18>`, `b3 = <3, 0.80, 0.24>`.
    pub fn paper_example() -> Self {
        BinSet::new([(1, 0.90, 0.10), (2, 0.85, 0.18), (3, 0.80, 0.24)])
            .expect("paper example is statically valid")
    }

    /// Bins in ascending cardinality order.
    #[inline]
    pub fn bins(&self) -> &[TaskBin] {
        &self.bins
    }

    /// Number of bin types `m = |B|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the set is empty (never true for validated sets).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The bin with the given cardinality, if present.
    pub fn get(&self, cardinality: u32) -> Option<&TaskBin> {
        self.bins
            .binary_search_by_key(&cardinality, TaskBin::cardinality)
            .ok()
            .map(|i| &self.bins[i])
    }

    /// Largest cardinality in the set.
    pub fn max_cardinality(&self) -> u32 {
        self.bins.last().map_or(0, TaskBin::cardinality)
    }

    /// Restriction of this set to bins of cardinality `<= max_cardinality`
    /// (used by the paper's `|B|` sweeps, Fig. 6e–6h).
    pub fn truncated(&self, max_cardinality: u32) -> Result<Self, SladeError> {
        let bins: Vec<TaskBin> = self
            .bins
            .iter()
            .filter(|b| b.cardinality() <= max_cardinality)
            .cloned()
            .collect();
        if bins.is_empty() {
            return Err(SladeError::InvalidBinSet(format!(
                "truncation to max cardinality {max_cardinality} leaves no bins"
            )));
        }
        Ok(BinSet { bins })
    }

    /// Smallest weight among the bins (used for enumeration-depth bounds).
    pub fn min_weight(&self) -> f64 {
        self.bins
            .iter()
            .map(TaskBin::weight)
            .fold(f64::INFINITY, f64::min)
    }

    /// A stable content signature of the menu: FNV-1a over every bin's
    /// `(cardinality, confidence, cost)` in ascending cardinality order,
    /// floats by bit pattern. Two `BinSet`s share a signature iff they were
    /// built from bitwise-identical triples, which makes the signature a
    /// sound cache key for anything derived purely from the menu (OPQ pools,
    /// DP tables — see `slade-engine`'s `ArtifactCache`).
    pub fn signature(&self) -> u64 {
        let mut h = Fnv1a::new();
        for b in &self.bins {
            h.write_u64(u64::from(b.cardinality()));
            h.write_f64(b.confidence());
            h.write_f64(b.cost());
        }
        h.finish()
    }

    /// The best (smallest) fractional cost of one unit of weight delivered to
    /// one task: `min_l c_l / (l * w_l)`.
    ///
    /// `Σ_i θ_i * min_unit_weight_cost()` is a valid lower bound on the
    /// optimal plan cost: a bin of cardinality `l` delivers at most `l·w_l`
    /// units of weight for `c_l`.
    pub fn min_unit_weight_cost(&self) -> f64 {
        self.bins
            .iter()
            .map(|b| b.cost() / (b.cardinality() as f64 * b.weight()))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_table1() {
        let b = BinSet::paper_example();
        assert_eq!(b.len(), 3);
        let b2 = b.get(2).unwrap();
        assert_eq!(b2.confidence(), 0.85);
        assert_eq!(b2.cost(), 0.18);
        assert!((b2.cost_per_task() - 0.09).abs() < 1e-12);
        assert_eq!(b.max_cardinality(), 3);
    }

    #[test]
    fn bins_are_sorted_by_cardinality() {
        let b = BinSet::new([(3, 0.8, 0.24), (1, 0.9, 0.1)]).unwrap();
        let cards: Vec<u32> = b.bins().iter().map(TaskBin::cardinality).collect();
        assert_eq!(cards, vec![1, 3]);
    }

    #[test]
    fn duplicate_cardinality_rejected() {
        let e = BinSet::new([(2, 0.8, 0.2), (2, 0.9, 0.3)]).unwrap_err();
        assert!(matches!(e, SladeError::InvalidBinSet(_)));
    }

    #[test]
    fn invalid_bins_rejected() {
        assert!(TaskBin::new(0, 0.9, 0.1).is_err());
        assert!(TaskBin::new(1, 0.0, 0.1).is_err());
        assert!(TaskBin::new(1, 1.0, 0.1).is_err());
        assert!(TaskBin::new(1, 0.9, 0.0).is_err());
        assert!(TaskBin::new(1, 0.9, -1.0).is_err());
        assert!(TaskBin::new(1, 0.9, f64::INFINITY).is_err());
        assert!(BinSet::new(std::iter::empty()).is_err());
    }

    #[test]
    fn sparse_cardinalities_are_allowed() {
        let b = BinSet::new([(1, 0.9, 0.1), (5, 0.7, 0.3)]).unwrap();
        assert!(b.get(3).is_none());
        assert_eq!(b.get(5).unwrap().cardinality(), 5);
    }

    #[test]
    fn truncation_filters_large_bins() {
        let b = BinSet::paper_example();
        let t = b.truncated(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_cardinality(), 2);
        assert!(b.truncated(0).is_err());
    }

    #[test]
    fn weight_is_cached_correctly() {
        let b = TaskBin::new(2, 0.85, 0.18).unwrap();
        assert!((b.weight() - crate::reliability::weight(0.85)).abs() < 1e-15);
    }

    #[test]
    fn min_unit_weight_cost_matches_hand_computation() {
        let b = BinSet::paper_example();
        // c/(l*w): 0.1/2.3026 = 0.0434; 0.18/(2*1.8971) = 0.0474;
        // 0.24/(3*1.6094) = 0.0497. Min = b1's, whose weight is exactly
        // -ln(1 - 0.9) = ln 10.
        assert!((b.min_unit_weight_cost() - 0.1 / std::f64::consts::LN_10).abs() < 1e-12);
    }

    #[test]
    fn signature_is_content_based() {
        let a = BinSet::paper_example();
        let b = BinSet::new([(3, 0.80, 0.24), (1, 0.90, 0.10), (2, 0.85, 0.18)]).unwrap();
        // Construction order does not matter (bins are sorted), content does.
        assert_eq!(a.signature(), b.signature());
        let c = BinSet::new([(1, 0.90, 0.10), (2, 0.85, 0.18), (3, 0.80, 0.25)]).unwrap();
        assert_ne!(a.signature(), c.signature());
        let d = a.truncated(2).unwrap();
        assert_ne!(a.signature(), d.signature());
    }

    #[test]
    fn min_weight_is_smallest_bin_weight() {
        let b = BinSet::paper_example();
        assert!((b.min_weight() - crate::reliability::weight(0.8)).abs() < 1e-15);
    }
}
