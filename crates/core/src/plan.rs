//! Decomposition plans and their audits.
//!
//! A [`DecompositionPlan`] is the output of every SLADE solver: a list of
//! *posted bins*, each a concrete instance of a [`TaskBin`] type filled with
//! up to `l` distinct atomic tasks. Plans are plain data —
//! they carry no proof of feasibility. [`DecompositionPlan::validate`]
//! re-derives everything from the instance and returns a [`PlanAudit`], the
//! single source of truth used by tests, benchmarks, and the `slade-crowd`
//! simulator.

use crate::bin_set::{BinSet, TaskBin};
use crate::error::SladeError;
use crate::reliability;
use crate::task::{TaskId, Workload};

/// One posted bin: a bin type (identified by cardinality) plus the atomic
/// tasks assigned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBin {
    cardinality: u32,
    tasks: Vec<TaskId>,
}

impl PlannedBin {
    /// Creates a posted bin of the given type holding `tasks`.
    ///
    /// Validation (capacity, duplicates, unknown cardinality) is deferred to
    /// [`DecompositionPlan::validate`] so solvers can build plans cheaply.
    pub fn new(cardinality: u32, tasks: Vec<TaskId>) -> Self {
        PlannedBin { cardinality, tasks }
    }

    /// Cardinality of the bin type this instance was posted as.
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Tasks assigned to this bin instance.
    #[inline]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }
}

/// A complete decomposition: the multiset of posted bins plus the
/// task-to-bin assignment, as produced by one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionPlan {
    algorithm: &'static str,
    bins: Vec<PlannedBin>,
    total_cost: f64,
}

impl DecompositionPlan {
    /// Creates an empty plan attributed to `algorithm`.
    pub fn empty(algorithm: &'static str) -> Self {
        DecompositionPlan {
            algorithm,
            bins: Vec::new(),
            total_cost: 0.0,
        }
    }

    /// Reassembles a plan from parts previously read off an existing plan —
    /// the decode half of the engine's durable plan codec. `total_cost` is
    /// restored verbatim (not recomputed) so a decoded plan is bit-identical
    /// to the encoded one; [`DecompositionPlan::validate`] still audits the
    /// recorded cost against the recomputed one like any other plan, so a
    /// corrupted cost cannot slip through as valid.
    pub fn from_parts(algorithm: &'static str, bins: Vec<PlannedBin>, total_cost: f64) -> Self {
        DecompositionPlan {
            algorithm,
            bins,
            total_cost,
        }
    }

    /// Appends one posted instance of `bin` holding `tasks`, accumulating its
    /// cost.
    pub fn push(&mut self, bin: &TaskBin, tasks: Vec<TaskId>) {
        debug_assert!(
            tasks.len() <= bin.cardinality() as usize,
            "bin of cardinality {} overfilled with {} tasks",
            bin.cardinality(),
            tasks.len()
        );
        self.total_cost += bin.cost();
        self.bins.push(PlannedBin::new(bin.cardinality(), tasks));
    }

    /// Name of the solver that produced the plan.
    #[inline]
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// The posted bins.
    #[inline]
    pub fn bins(&self) -> &[PlannedBin] {
        &self.bins
    }

    /// Number of posted bins.
    #[inline]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total posting cost `Σ c_l` over all posted bins.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Rewrites every task id through `map` (e.g. from bucket-local indices
    /// back to global ids when merging per-bucket sub-plans, as
    /// [`OpqExtended`](crate::hetero::OpqExtended) does).
    pub fn remap_tasks(&mut self, map: impl Fn(TaskId) -> TaskId) {
        for bin in &mut self.bins {
            for t in &mut bin.tasks {
                *t = map(*t);
            }
        }
    }

    /// Absorbs all bins (and cost) of `other` into `self`.
    pub fn merge(&mut self, other: DecompositionPlan) {
        self.total_cost += other.total_cost;
        self.bins.extend(other.bins);
    }

    /// Audits the plan against an instance.
    ///
    /// Structural inconsistencies — a cardinality absent from `bins`, an
    /// out-of-range task id, a duplicated task inside one bin, an overfilled
    /// bin, or a recorded cost that disagrees with the recomputed one —
    /// return [`SladeError::InvalidPlan`]. A structurally sound plan that
    /// merely fails to reach some thresholds is *not* an error: it yields an
    /// audit with [`PlanAudit::feasible`] `== false` and the offenders listed
    /// in [`PlanAudit::unsatisfied`].
    pub fn validate(&self, workload: &Workload, bins: &BinSet) -> Result<PlanAudit, SladeError> {
        let n = workload.len() as usize;
        let mut weight_sums = vec![0.0f64; n];
        let mut recomputed_cost = 0.0f64;
        let mut seen: Vec<u32> = vec![u32::MAX; n];

        for (idx, posted) in self.bins.iter().enumerate() {
            let Some(bin) = bins.get(posted.cardinality) else {
                return Err(SladeError::InvalidPlan(format!(
                    "bin {idx} has cardinality {} which is not in the bin set",
                    posted.cardinality
                )));
            };
            if posted.tasks.len() > bin.cardinality() as usize {
                return Err(SladeError::InvalidPlan(format!(
                    "bin {idx} holds {} tasks but cardinality is {}",
                    posted.tasks.len(),
                    bin.cardinality()
                )));
            }
            recomputed_cost += bin.cost();
            for &t in &posted.tasks {
                let Some(sum) = weight_sums.get_mut(t as usize) else {
                    return Err(SladeError::InvalidPlan(format!(
                        "bin {idx} references task {t}, but the workload has only {n} tasks"
                    )));
                };
                if seen[t as usize] == idx as u32 {
                    return Err(SladeError::InvalidPlan(format!(
                        "bin {idx} contains task {t} more than once"
                    )));
                }
                seen[t as usize] = idx as u32;
                *sum += bin.weight();
            }
        }

        if (recomputed_cost - self.total_cost).abs() > 1e-6 * (1.0 + recomputed_cost.abs()) {
            return Err(SladeError::InvalidPlan(format!(
                "plan records cost {} but its bins cost {recomputed_cost}",
                self.total_cost
            )));
        }

        let mut unsatisfied = Vec::new();
        let mut min_slack = f64::INFINITY;
        for i in 0..workload.len() {
            let slack = weight_sums[i as usize] - workload.theta(i);
            min_slack = min_slack.min(slack);
            if !reliability::satisfies(weight_sums[i as usize], workload.theta(i)) {
                unsatisfied.push(i);
            }
        }

        Ok(PlanAudit {
            feasible: unsatisfied.is_empty(),
            total_cost: recomputed_cost,
            bins_posted: self.bins.len(),
            min_slack,
            unsatisfied,
        })
    }
}

/// The result of auditing a [`DecompositionPlan`] against an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAudit {
    /// Whether every task reaches its reliability threshold (within
    /// [`reliability::WEIGHT_EPS`]).
    pub feasible: bool,
    /// Recomputed total posting cost.
    pub total_cost: f64,
    /// Number of bins the plan posts.
    pub bins_posted: usize,
    /// Minimum over tasks of `accumulated weight − θ_i`; negative iff some
    /// task is under-covered.
    pub min_slack: f64,
    /// Tasks whose reliability threshold is not met, in id order.
    pub unsatisfied: Vec<TaskId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> (Workload, BinSet) {
        (
            Workload::homogeneous(4, 0.95).unwrap(),
            BinSet::paper_example(),
        )
    }

    /// The hand-built plan from Example 9 of the paper: tasks {0,1,2} in two
    /// b3 bins, task 3 in two b1 bins, total cost 0.68.
    fn example9_plan(bins: &BinSet) -> DecompositionPlan {
        let mut plan = DecompositionPlan::empty("hand");
        let b3 = bins.get(3).unwrap();
        let b1 = bins.get(1).unwrap();
        plan.push(b3, vec![0, 1, 2]);
        plan.push(b3, vec![0, 1, 2]);
        plan.push(b1, vec![3]);
        plan.push(b1, vec![3]);
        plan
    }

    #[test]
    fn example9_plan_is_feasible_at_cost_068() {
        let (w, b) = instance();
        let plan = example9_plan(&b);
        assert!((plan.total_cost() - 0.68).abs() < 1e-12);
        let audit = plan.validate(&w, &b).unwrap();
        assert!(audit.feasible);
        assert!(audit.unsatisfied.is_empty());
        assert_eq!(audit.bins_posted, 4);
        assert!((audit.total_cost - 0.68).abs() < 1e-12);
        assert!(audit.min_slack > 0.0);
    }

    #[test]
    fn under_covered_plan_audits_infeasible_without_error() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        // One b3 per task group is not enough weight for t = 0.95.
        plan.push(b.get(3).unwrap(), vec![0, 1, 2]);
        plan.push(b.get(3).unwrap(), vec![3]);
        let audit = plan.validate(&w, &b).unwrap();
        assert!(!audit.feasible);
        assert_eq!(audit.unsatisfied, vec![0, 1, 2, 3]);
        assert!(audit.min_slack < 0.0);
    }

    #[test]
    fn unknown_cardinality_is_structural_error() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        plan.bins.push(PlannedBin::new(7, vec![0]));
        assert!(matches!(
            plan.validate(&w, &b),
            Err(SladeError::InvalidPlan(_))
        ));
    }

    #[test]
    fn duplicate_task_in_one_bin_is_structural_error() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        plan.bins.push(PlannedBin::new(3, vec![0, 0]));
        plan.total_cost = 0.24;
        let err = plan.validate(&w, &b).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn same_task_in_two_bins_is_fine() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        plan.push(b.get(1).unwrap(), vec![0]);
        plan.push(b.get(1).unwrap(), vec![0]);
        let audit = plan.validate(&w, &b).unwrap();
        assert_eq!(audit.unsatisfied, vec![1, 2, 3]); // 0 is satisfied
    }

    #[test]
    fn out_of_range_task_is_structural_error() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        plan.push(b.get(1).unwrap(), vec![9]);
        assert!(matches!(
            plan.validate(&w, &b),
            Err(SladeError::InvalidPlan(_))
        ));
    }

    #[test]
    fn overfilled_bin_is_structural_error() {
        let (w, b) = instance();
        let mut plan = DecompositionPlan::empty("hand");
        plan.bins.push(PlannedBin::new(1, vec![0, 1]));
        plan.total_cost = 0.10;
        assert!(matches!(
            plan.validate(&w, &b),
            Err(SladeError::InvalidPlan(_))
        ));
    }

    #[test]
    fn cost_mismatch_is_structural_error() {
        let (w, b) = instance();
        let mut plan = example9_plan(&b);
        plan.total_cost = 0.50;
        let err = plan.validate(&w, &b).unwrap_err();
        assert!(err.to_string().contains("cost"), "{err}");
    }

    #[test]
    fn remap_and_merge_compose_sub_plans() {
        let (w, b) = instance();
        let mut left = DecompositionPlan::empty("hand");
        left.push(b.get(1).unwrap(), vec![0]);
        left.push(b.get(1).unwrap(), vec![0]);
        let mut right = DecompositionPlan::empty("hand");
        right.push(b.get(1).unwrap(), vec![0]);
        right.push(b.get(1).unwrap(), vec![0]);
        // `right` covers bucket-local task 0 -> global task 3.
        right.remap_tasks(|t| t + 3);
        left.merge(right);
        assert_eq!(left.num_bins(), 4);
        assert!((left.total_cost() - 0.40).abs() < 1e-12);
        let audit = left.validate(&w, &b).unwrap();
        assert_eq!(audit.unsatisfied, vec![1, 2]);
    }

    #[test]
    fn empty_plan_on_nonempty_workload_is_infeasible() {
        let (w, b) = instance();
        let plan = DecompositionPlan::empty("hand");
        let audit = plan.validate(&w, &b).unwrap();
        assert!(!audit.feasible);
        assert_eq!(audit.unsatisfied.len(), 4);
        assert_eq!(audit.bins_posted, 0);
        assert_eq!(audit.total_cost, 0.0);
    }
}
