//! NP-hardness of SLADE: the Unbounded-Knapsack reduction (Theorem 1 of the
//! paper).
//!
//! ## The reduction
//!
//! The decision version of the *unbounded min-knapsack* problem — given item
//! sizes `s_1..s_m`, item costs `c_1..c_m` (unlimited copies), a demand `W`,
//! and a budget `C`, is there a multiset of items of total size `≥ W` and
//! total cost `≤ C`? — is NP-complete. It embeds into SLADE with a **single
//! atomic task**:
//!
//! * item `i` becomes a task bin with confidence `r_i = 1 − e^{−s_i}`
//!   (so its transformed weight `-ln(1 − r_i)` is exactly `s_i`), cost
//!   `c_i`, and an arbitrary distinct cardinality (capacity is irrelevant
//!   when only one task exists);
//! * the demand becomes the task's threshold `t = 1 − e^{−W}` (transformed
//!   threshold exactly `W`).
//!
//! A bin multiset satisfies the task iff its weights sum to at least `W`, and
//! its posting cost equals the knapsack cost — so the optimal SLADE cost
//! equals the optimal knapsack cost, and a polynomial SLADE solver would
//! decide unbounded min-knapsack. Hence SLADE is NP-hard **even with one
//! task and homogeneous thresholds**; the hardness lives entirely in
//! choosing the bin combination, which is why the OPQ machinery
//! ([`crate::opq`]) only *enumerates* combinations best-first instead of
//! pretending to pick the optimum in polynomial time.
//!
//! Contrast with the relaxed case (§4.2, [`crate::relaxed`]): when one bin
//! suffices per task the combination choice disappears and the rod-cutting
//! DP is exact in `O(n·m)` — the reduction's weight-stacking is exactly what
//! relaxed instances forbid.
//!
//! [`knapsack_to_slade`] makes the embedding executable; the tests solve
//! reduced instances with [`ExactSolver`](crate::exact::ExactSolver) and
//! check them against a direct knapsack brute force.

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::reliability::confidence_from_weight;
use crate::task::Workload;

/// One unbounded-knapsack item: a positive size and a positive cost,
/// available in unlimited copies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Item size (maps to a bin's transformed weight).
    pub size: f64,
    /// Item cost (maps to the bin's posting cost).
    pub cost: f64,
}

/// Embeds an unbounded min-knapsack instance into SLADE; see the module
/// docs. Returns the single-task workload and the bin menu whose optimal
/// decomposition cost equals the knapsack optimum.
///
/// Errors with [`SladeError::InvalidBinSet`] / [`SladeError::InvalidWorkload`]
/// if a size, cost, or the demand is non-positive or non-finite.
pub fn knapsack_to_slade(
    items: &[KnapsackItem],
    demand: f64,
) -> Result<(Workload, BinSet), SladeError> {
    if demand <= 0.0 || !demand.is_finite() {
        return Err(SladeError::InvalidWorkload(format!(
            "knapsack demand must be positive and finite, got {demand}"
        )));
    }
    let bins = BinSet::new(items.iter().enumerate().map(|(i, item)| {
        (
            i as u32 + 1, // distinct, arbitrary cardinalities
            confidence_from_weight(item.size),
            item.cost,
        )
    }))?;
    let workload = Workload::homogeneous(1, confidence_from_weight(demand))?;
    Ok((workload, bins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use crate::solver::DecompositionSolver;

    /// Direct brute force for unbounded min-knapsack (cover `demand` at
    /// minimum cost), via DFS with a cost bound.
    fn knapsack_opt(items: &[KnapsackItem], demand: f64) -> f64 {
        fn dfs(items: &[KnapsackItem], remaining: f64, spent: f64, best: &mut f64) {
            if remaining <= 1e-12 {
                *best = best.min(spent);
                return;
            }
            // Bound: cheapest cost per unit size finishes the cover.
            let best_rate = items
                .iter()
                .map(|i| i.cost / i.size)
                .fold(f64::INFINITY, f64::min);
            if spent + remaining * best_rate >= *best - 1e-12 {
                return;
            }
            for item in items {
                dfs(items, remaining - item.size, spent + item.cost, best);
            }
        }
        let mut best = f64::INFINITY;
        dfs(items, demand, 0.0, &mut best);
        best
    }

    #[test]
    fn reduced_instance_matches_knapsack_bruteforce() {
        // Sizes/costs chosen so the optimum (two mediums: cost 0.5,
        // size 2.4 >= 2.2) beats both the big item (0.65) and small-item
        // stacks (3 x 0.2 = 0.6 only reaches 2.1 < 2.2; 4 x 0.2 = 0.8).
        let items = [
            KnapsackItem {
                size: 0.7,
                cost: 0.2,
            },
            KnapsackItem {
                size: 1.2,
                cost: 0.25,
            },
            KnapsackItem {
                size: 2.3,
                cost: 0.65,
            },
        ];
        let demand = 2.2;
        let (workload, bins) = knapsack_to_slade(&items, demand).unwrap();
        let plan = ExactSolver::default().solve(&workload, &bins).unwrap();
        let expect = knapsack_opt(&items, demand);
        assert!((expect - 0.5).abs() < 1e-12);
        assert!(
            (plan.total_cost() - expect).abs() < 1e-9,
            "SLADE said {}, knapsack says {expect}",
            plan.total_cost()
        );
        assert!(plan.validate(&workload, &bins).unwrap().feasible);
    }

    #[test]
    fn weights_survive_the_confidence_round_trip() {
        let items = [
            KnapsackItem {
                size: 0.5,
                cost: 1.0,
            },
            KnapsackItem {
                size: 3.0,
                cost: 2.0,
            },
        ];
        let (_, bins) = knapsack_to_slade(&items, 1.0).unwrap();
        // BinSet sorts by cardinality, which here preserves item order.
        for (bin, item) in bins.bins().iter().zip(&items) {
            assert!((bin.weight() - item.size).abs() < 1e-12);
            assert!((bin.cost() - item.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let good = KnapsackItem {
            size: 1.0,
            cost: 1.0,
        };
        assert!(knapsack_to_slade(&[good], 0.0).is_err());
        assert!(knapsack_to_slade(&[good], f64::NAN).is_err());
        assert!(knapsack_to_slade(&[], 1.0).is_err());
        assert!(knapsack_to_slade(
            &[KnapsackItem {
                size: 1.0,
                cost: -1.0
            }],
            1.0
        )
        .is_err());
        assert!(knapsack_to_slade(
            &[KnapsackItem {
                size: 0.0,
                cost: 1.0
            }],
            1.0
        )
        .is_err());
    }
}
