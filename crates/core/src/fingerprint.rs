//! Stable instance fingerprinting.
//!
//! `slade-engine` memoizes solve artifacts across requests, so it needs a
//! canonical, cheap, content-based key for "the same prepare computation":
//! the bin menu, the transformed threshold, and the solver knobs that shape
//! the artifacts. [`Fnv1a`] is the tiny hasher behind
//! [`BinSet::signature`](crate::bin_set::BinSet::signature) and
//! [`Workload::signature`](crate::task::Workload::signature); floats are
//! hashed by bit pattern, so two instances fingerprint equal iff their
//! parameters are bitwise equal — exactly the granularity at which solver
//! output is reproducible.
//!
//! [`Fingerprint`] lives here, next to the signatures it hashes, rather than
//! in the engine: its knob material comes from
//! [`PreparedSolver::fingerprint_knobs`], the same trait whose
//! [`prepare`](PreparedSolver::prepare) builds the artifacts — so the key
//! can never drift from the artifact definition.

use crate::bin_set::BinSet;
use crate::solver::PreparedSolver;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A 64-bit FNV-1a accumulator.
///
/// Not cryptographic and not collision-resistant, so digests must never be
/// treated as identities on their own: consumers use them as *hash buckets*
/// and decide equality over the full key material (the engine's
/// `Fingerprint` stores the material in every cache entry and compares it
/// on each hit, so a collision costs one spurious probe, never a wrong
/// artifact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh accumulator at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs one `u64` (little-endian byte order).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one `f64` by bit pattern (`-0.0` and `0.0` hash differently;
    /// validated SLADE parameters exclude both anyway).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The accumulated 64-bit digest.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Collects the solver-knob words that enter a [`Fingerprint`].
///
/// Each solver's [`PreparedSolver::fingerprint_knobs`] writes every
/// configuration value that shapes its *artifacts* (and nothing that only
/// shapes the per-workload solve step, such as the baseline's rounding
/// seed). The sink keeps the raw words so the fingerprint can compare full
/// key material on digest collisions, not just the hash.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KnobSink {
    words: Vec<u64>,
}

impl KnobSink {
    /// An empty sink.
    pub fn new() -> Self {
        KnobSink::default()
    }

    /// Records one `u64` knob.
    pub fn write_u64(&mut self, value: u64) {
        self.words.push(value);
    }

    /// Records one `usize` knob.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Records one `f64` knob by bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Records an optional size, with `None` mapped to `u64::MAX` (no valid
    /// size reaches it, so the encoding stays injective).
    pub fn write_opt_usize(&mut self, value: Option<usize>) {
        self.write_u64(value.map_or(u64::MAX, |s| s as u64));
    }

    /// The words recorded so far, in write order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The canonical identity of one artifact computation: the bin-menu
/// signature, the transformed threshold (bit pattern), and every solver knob
/// that shapes the artifacts, as reported by the solver itself through
/// [`PreparedSolver::fingerprint_knobs`].
///
/// FNV-1a is not collision-resistant, so the digest alone is never trusted
/// as an identity: the digest is only the *hash* of a cache key, while
/// `Fingerprint`'s `Eq` is decided over the full key material (the engine's
/// cache stores the material in each entry and verifies it on every hit, so
/// a collision costs one spurious probe, never a wrong artifact). Two equal
/// fingerprints are served by identical artifacts — `prepare` is
/// deterministic — which is the invariant that makes cache hits
/// indistinguishable from cold solves.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    digest: u64,
    // The full key material, kept for exact equality on hash collisions.
    bins: Arc<BinSet>,
    theta_bits: u64,
    knobs: KnobSink,
}

impl Fingerprint {
    /// Fingerprints `solver`'s artifact computation for `bins` at
    /// transformed threshold `theta`.
    pub fn new(bins: Arc<BinSet>, theta: f64, solver: &dyn PreparedSolver) -> Self {
        let mut knobs = KnobSink::new();
        solver.fingerprint_knobs(&mut knobs);
        let mut h = Fnv1a::new();
        h.write_u64(bins.signature());
        h.write_f64(theta);
        for &word in knobs.words() {
            h.write_u64(word);
        }
        Fingerprint {
            digest: h.finish(),
            bins,
            theta_bits: theta.to_bits(),
            knobs,
        }
    }

    /// The raw 64-bit digest.
    pub fn as_u64(&self) -> u64 {
        self.digest
    }

    /// Whether `other` carries the same full key material — the bin menu is
    /// compared by content, not by digest, so a digest collision between
    /// distinct instances can never alias their cache entries.
    fn matches(&self, other: &Self) -> bool {
        self.digest == other.digest
            && self.theta_bits == other.theta_bits
            && self.knobs == other.knobs
            && *self.bins == *other.bins
    }

    #[cfg(test)]
    pub(crate) fn forge_digest(&mut self, digest: u64) {
        self.digest = digest;
    }
}

impl PartialEq for Fingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.matches(other)
    }
}
impl Eq for Fingerprint {}

impl Hash for Fingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn digests_depend_on_every_input() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(1);
        b.write_u64(3);
        let mut c = Fnv1a::new();
        c.write_u64(2);
        c.write_u64(2);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn order_matters() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = Fnv1a::new();
        a.write_f64(0.95);
        let mut b = Fnv1a::new();
        b.write_f64(0.95);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_f64(0.95 + 1e-12);
        assert_ne!(a.finish(), c.finish());
    }

    mod fingerprint {
        use super::super::*;
        use crate::opq_based::OpqBased;
        use crate::reliability::theta;
        use crate::solver::Algorithm;

        #[test]
        fn equal_inputs_fingerprint_equal() {
            let bins = Arc::new(BinSet::paper_example());
            let same_bins = Arc::new(BinSet::paper_example()); // distinct Arc
            let solver = OpqBased::default();
            let a = Fingerprint::new(bins, theta(0.95), &solver);
            let b = Fingerprint::new(same_bins, theta(0.95), &solver);
            assert_eq!(a, b);
            assert_eq!(a.as_u64(), b.as_u64());
        }

        #[test]
        fn every_component_discriminates() {
            let bins = Arc::new(BinSet::paper_example());
            let solver = OpqBased::default();
            let base = Fingerprint::new(Arc::clone(&bins), theta(0.95), &solver);

            assert_ne!(
                base,
                Fingerprint::new(Arc::clone(&bins), theta(0.9501), &solver)
            );

            let other_bins = Arc::new(bins.truncated(2).unwrap());
            assert_ne!(base, Fingerprint::new(other_bins, theta(0.95), &solver));

            let other_solver = OpqBased {
                pool_size: solver.pool_size + 1,
                ..OpqBased::default()
            };
            assert_ne!(
                base,
                Fingerprint::new(Arc::clone(&bins), theta(0.95), &other_solver)
            );

            let other_cap = OpqBased {
                dp_cap: 128,
                ..OpqBased::default()
            };
            assert_ne!(base, Fingerprint::new(bins, theta(0.95), &other_cap));
        }

        #[test]
        fn digest_collisions_do_not_compare_equal() {
            // Forge two fingerprints with the same digest but different key
            // material: equality must still distinguish them (the engine's
            // cache relies on this to survive FNV collisions).
            let bins = Arc::new(BinSet::paper_example());
            let solver = OpqBased::default();
            let a = Fingerprint::new(Arc::clone(&bins), theta(0.95), &solver);
            let mut b = Fingerprint::new(bins, theta(0.90), &solver);
            b.forge_digest(a.as_u64());
            assert_eq!(a.as_u64(), b.as_u64());
            assert_ne!(a, b);
        }

        #[test]
        fn knob_words_come_from_the_solver_trait() {
            // Every algorithm can fingerprint itself; solvers with the same
            // artifact-shaping knobs (and only those) fingerprint equal.
            let bins = Arc::new(BinSet::paper_example());
            for algorithm in Algorithm::ALL {
                let solver = algorithm.solver();
                let a = Fingerprint::new(Arc::clone(&bins), theta(0.9), solver.as_ref());
                let b = Fingerprint::new(Arc::clone(&bins), theta(0.9), solver.as_ref());
                assert_eq!(a, b, "{algorithm}");
            }
        }
    }
}
