//! Stable instance fingerprinting.
//!
//! `slade-engine` memoizes OPQ pools and group-DP tables across requests, so
//! it needs a canonical, cheap, content-based key for "the same instance
//! shape": the bin menu and the transformed threshold (plus the solver knobs
//! that shape the artifacts). [`Fnv1a`] is the tiny hasher behind
//! [`BinSet::signature`](crate::bin_set::BinSet::signature) and
//! [`Workload::signature`](crate::task::Workload::signature); floats are
//! hashed by bit pattern, so two instances fingerprint equal iff their
//! parameters are bitwise equal — exactly the granularity at which solver
//! output is reproducible.

/// A 64-bit FNV-1a accumulator.
///
/// Not cryptographic and not collision-resistant, so digests must never be
/// treated as identities on their own: consumers use them as *hash buckets*
/// and decide equality over the full key material (the engine's
/// `Fingerprint` stores the material in every cache entry and compares it
/// on each hit, so a collision costs one spurious probe, never a wrong
/// artifact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh accumulator at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs one `u64` (little-endian byte order).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one `f64` by bit pattern (`-0.0` and `0.0` hash differently;
    /// validated SLADE parameters exclude both anyway).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The accumulated 64-bit digest.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn digests_depend_on_every_input() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(1);
        b.write_u64(3);
        let mut c = Fnv1a::new();
        c.write_u64(2);
        c.write_u64(2);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn order_matters() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = Fnv1a::new();
        a.write_f64(0.95);
        let mut b = Fnv1a::new();
        b.write_f64(0.95);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_f64(0.95 + 1e-12);
        assert_ne!(a.finish(), c.finish());
    }
}
