//! Log-space reliability arithmetic (§4.1 of the paper).
//!
//! The reliability of an atomic task assigned to bins with confidences
//! `r_1..r_k` is `Rel = 1 - Π (1 - r_j)` — the probability that at least one
//! bin answers it correctly. The paper's key reduction rewrites the
//! constraint `Rel >= t` additively:
//!
//! ```text
//! -ln(1 - Rel) = Σ -ln(1 - r_j)  >=  -ln(1 - t)
//! ```
//!
//! We call `w(r) = -ln(1 - r)` the *weight* of a confidence and
//! `θ(t) = -ln(1 - t)` the *transformed threshold*. All solvers in this crate
//! operate on weights and thetas; this module centralizes the conversions and
//! their numerical-stability concerns (`ln_1p` near `r → 1`).

/// Absolute tolerance used when comparing accumulated weights against
/// transformed thresholds.
///
/// Weights are sums of a handful of `-ln(1-r)` terms, each of magnitude
/// `O(1)`; `1e-9` absorbs the associated rounding while staying far below any
/// meaningful reliability difference.
pub const WEIGHT_EPS: f64 = 1e-9;

/// Transformed weight `w(r) = -ln(1 - r)` of a bin confidence.
///
/// Computed as `-ln_1p(-r)` for accuracy when `r` is close to 1.
///
/// # Panics
/// Debug-asserts `r ∈ (0, 1)`; release builds clamp nothing and propagate
/// whatever `ln_1p` yields.
#[inline]
pub fn weight(confidence: f64) -> f64 {
    debug_assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0,1), got {confidence}"
    );
    -(-confidence).ln_1p()
}

/// Transformed threshold `θ(t) = -ln(1 - t)`.
#[inline]
pub fn theta(threshold: f64) -> f64 {
    debug_assert!(
        threshold > 0.0 && threshold < 1.0,
        "threshold must lie in (0,1), got {threshold}"
    );
    -(-threshold).ln_1p()
}

/// Inverse transform: the confidence/reliability whose weight is `w`.
///
/// `confidence_from_weight(weight(r)) == r` up to floating-point error.
#[inline]
pub fn confidence_from_weight(w: f64) -> f64 {
    debug_assert!(w >= 0.0, "weights are nonnegative, got {w}");
    -(-w).exp_m1()
}

/// Reliability `1 - Π (1 - r_j)` of a task covered by bins with the given
/// confidences, computed stably in log space.
pub fn reliability<I: IntoIterator<Item = f64>>(confidences: I) -> f64 {
    let total: f64 = confidences.into_iter().map(weight).sum();
    confidence_from_weight(total)
}

/// Whether an accumulated `weight_sum` satisfies a transformed threshold
/// `theta`, within [`WEIGHT_EPS`].
#[inline]
pub fn satisfies(weight_sum: f64, theta: f64) -> bool {
    weight_sum + WEIGHT_EPS >= theta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_matches_definition() {
        for r in [0.1, 0.5, 0.8, 0.9, 0.99] {
            assert!((weight(r) - -(1.0 - r).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_running_example_weights() {
        // Table 1: r = 0.9, 0.85, 0.8 and threshold t = 0.95. Note that
        // w(0.9) = -ln(0.1) is exactly ln 10.
        assert!((weight(0.9) - std::f64::consts::LN_10).abs() < 1e-5);
        assert!((weight(0.85) - 1.897120).abs() < 1e-5);
        assert!((weight(0.8) - 1.609438).abs() < 1e-5);
        assert!((theta(0.95) - 2.995732).abs() < 1e-5);
    }

    #[test]
    fn example7_opq_feasibility_check() {
        // "2 × (-ln(1-0.8)) = 3.22 > -ln(1-0.95) = 2.996" (Example 7).
        assert!(satisfies(2.0 * weight(0.8), theta(0.95)));
        // One b3 alone is not enough.
        assert!(!satisfies(weight(0.8), theta(0.95)));
    }

    #[test]
    fn round_trip_inverse() {
        for r in [0.01, 0.3, 0.632, 0.86, 0.999] {
            let w = weight(r);
            assert!((confidence_from_weight(w) - r).abs() < 1e-12);
        }
    }

    #[test]
    fn reliability_of_two_bins_matches_example4() {
        // Example 4: two bins of confidence 0.85 give 1-(0.15)^2 = 0.9775.
        let rel = reliability([0.85, 0.85]);
        assert!((rel - 0.9775).abs() < 1e-12);
        assert!(rel > 0.95);
    }

    #[test]
    fn weight_is_stable_at_extreme_confidences() {
        // r = 1 - 2^-50 is exactly representable, so w = 50·ln 2 exactly.
        let r = 1.0 - f64::powi(2.0, -50);
        assert!((weight(r) - 50.0 * std::f64::consts::LN_2).abs() < 1e-9);
        // Tiny confidences: w(r) ≈ r. The naive (1.0 - r).ln() rounds
        // 1 - 1e-18 to 1.0 and reports zero weight; ln_1p keeps it.
        let r = 1e-18;
        assert!((weight(r) - 1e-18).abs() < 1e-33);
        assert_eq!(-(1.0f64 - r).ln(), 0.0);
    }

    #[test]
    fn reliability_is_monotone_in_coverage() {
        let one = reliability([0.6]);
        let two = reliability([0.6, 0.6]);
        let three = reliability([0.6, 0.6, 0.6]);
        assert!(one < two && two < three && three < 1.0);
    }

    #[test]
    fn hetero_example_thetas() {
        // Example 10: thresholds 0.5, 0.6, 0.86 -> θ = 0.69, 0.92, 1.97;
        // θ(0.5) is exactly ln 2.
        assert!((theta(0.5) - std::f64::consts::LN_2).abs() < 1e-4);
        assert!((theta(0.6) - 0.9163).abs() < 1e-4);
        assert!((theta(0.86) - 1.9661).abs() < 1e-4);
        // Paper's Example 10 prints θ(0.7) as 1.61; the correct value is
        // 1.204 (1.609 is θ(0.8)). We implement the math, not the typo.
        assert!((theta(0.7) - 1.2040).abs() < 1e-4);
        assert!((theta(0.8) - 1.6094).abs() < 1e-4);
    }
}
