//! The OPQ-Based decomposition solver for homogeneous workloads
//! (Algorithm 3 of the paper, built on the Algorithm-2 queue in [`crate::opq`]).
//!
//! ## How it works
//!
//! With one shared threshold `t`, every atomic task must receive bins whose
//! weights sum to `θ = -ln(1 - t)`, so any solution assigns each task a
//! feasible *combination* of bin types. Tasks using the same combination can
//! share physical bins: a group of `g` tasks all using combination
//! `q = {k_l × b_l}` needs `max(k_l, ⌈g·k_l / l⌉)` bins of each type `l`
//! (round-robin placement), which for fully shared groups costs the per-task
//! *price* `p(q) = Σ k_l · c_l / l`.
//!
//! The solver pulls the cheapest combinations from the OPQ under both of its
//! keys, then optimizes the group structure:
//!
//! * **small `n`** — an exact dynamic program over group splits:
//!   `R(j) = min_{q, 1 ≤ g ≤ j} R(j − g) + cost(g, q)`;
//! * **large `n`** — one bulk group of `n − j` tasks (the per-task price of
//!   the best combination is a lower bound on `OPT / n`, and a single bulk
//!   group pays at most `c(q*)` over it) plus the same DP for the tail `j`.
//!
//! This reproduces the paper's Example 9 and carries its `O(log n)`
//! approximation guarantee (Theorem 4); the bulk-group bound above is in
//! fact much tighter — `OPT + c(q*)` — for large `n`.
//!
//! ## Example 9 of the paper
//!
//! ```
//! use slade_core::prelude::*;
//!
//! let bins = BinSet::paper_example();
//! let workload = Workload::homogeneous(4, 0.95).unwrap();
//! let plan = OpqBased::default().solve(&workload, &bins).unwrap();
//! // Three tasks share two 3-cardinality bins (0.48) and the leftover task
//! // takes two 1-cardinality bins (0.20): 0.68 in total.
//! assert!((plan.total_cost() - 0.68).abs() < 1e-9);
//! assert!(plan.validate(&workload, &bins).unwrap().feasible);
//! ```

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::fingerprint::KnobSink;
use crate::opq::{Combination, CombinationKey, OpqConfig, OptimalPriorityQueue};
use crate::plan::DecompositionPlan;
use crate::solver::{expect_artifacts, DecompositionSolver, PreparedSolver, SolveArtifacts};
use crate::task::{TaskId, Workload};
use std::any::Any;
use std::sync::Arc;

/// The OPQ-Based solver (homogeneous workloads only).
#[derive(Debug, Clone)]
pub struct OpqBased {
    /// Enumeration bounds forwarded to the [`OptimalPriorityQueue`].
    pub opq: OpqConfig,
    /// How many candidate combinations to pull from the OPQ *per key*
    /// (per-task price and total cost); the union forms the DP's menu.
    pub pool_size: usize,
    /// Largest task count optimized by the exact group DP; instances beyond
    /// it use one bulk group plus a DP tail of this size.
    pub dp_cap: u32,
}

impl Default for OpqBased {
    fn default() -> Self {
        OpqBased {
            opq: OpqConfig::default(),
            pool_size: 24,
            dp_cap: 256,
        }
    }
}

/// Reusable solve artifacts for one `(BinSet, θ)` pair: the OPQ candidate
/// pool plus the group-DP tables, computed once up to a task-count cap.
///
/// Artifacts are *instance-size independent*: the DP tables are bottom-up,
/// so `best[j]`/`choice[j]` for `j ≤ cap` do not depend on `cap`, and any
/// homogeneous workload against the same menu and threshold can be planned
/// from the same artifacts via [`OpqBased::solve_with_artifacts`] — with a
/// plan identical to what [`OpqBased::solve`] would build from scratch.
/// `slade-engine`'s `ArtifactCache` shares them across requests behind an
/// `Arc`, which is why the type is plain owned data (`Send + Sync`).
#[derive(Debug, Clone, PartialEq)]
pub struct OpqArtifacts {
    /// Candidate combination pool (union of both OPQ keys, deduplicated).
    pool: Vec<Combination>,
    /// `best[j]` — cheapest cost of serving `j` tasks with DP groups.
    best: Vec<f64>,
    /// `(group size, pool index)` realizing each `best[j]`.
    choice: Vec<(u32, usize)>,
    /// The transformed threshold the artifacts were enumerated against.
    theta: f64,
    /// Signature of the bin menu the pool indices refer to; `solve_with`
    /// rejects a different menu (pool/DP indices would silently misapply).
    bins_signature: u64,
}

impl OpqArtifacts {
    /// The transformed threshold `θ` these artifacts serve.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The candidate combinations the group DP optimizes over.
    #[inline]
    pub fn pool(&self) -> &[Combination] {
        &self.pool
    }

    /// Largest task count the DP tables cover exactly.
    #[inline]
    pub fn dp_cap(&self) -> u32 {
        (self.best.len() - 1) as u32
    }
}

/// One group in the solver's internal plan sketch.
struct Group {
    /// First task id in the group (tasks are assigned contiguously).
    base: TaskId,
    /// Number of tasks in the group.
    size: u32,
    /// Index into the candidate pool.
    combo: usize,
}

impl OpqBased {
    /// Cost of serving a group of `g` tasks that all use combination `q`:
    /// `Σ_l c_l · max(k_l, ⌈g·k_l / l⌉)`.
    fn group_cost(q: &Combination, bins: &BinSet, g: u64) -> f64 {
        debug_assert!(g >= 1);
        q.counts()
            .iter()
            .enumerate()
            .filter(|(_, &k)| k > 0)
            .map(|(i, &k)| {
                let b = &bins.bins()[i];
                let needed = bins_needed(g, k, b.cardinality());
                b.cost() * needed as f64
            })
            .sum()
    }

    /// Runs the exact group DP for `cap` tasks over the candidate `pool`.
    /// Returns per-size best costs `R[0..=cap]` and the `(group size, combo)`
    /// choice realizing each.
    fn group_dp(pool: &[Combination], bins: &BinSet, cap: u32) -> (Vec<f64>, Vec<(u32, usize)>) {
        let cap = cap as usize;
        let mut best = vec![f64::INFINITY; cap + 1];
        let mut choice = vec![(0u32, 0usize); cap + 1];
        best[0] = 0.0;
        for j in 1..=cap {
            for (qi, q) in pool.iter().enumerate() {
                for g in 1..=j {
                    let c = best[j - g] + Self::group_cost(q, bins, g as u64);
                    if c < best[j] {
                        best[j] = c;
                        choice[j] = (g as u32, qi);
                    }
                }
            }
        }
        (best, choice)
    }

    /// Reconstructs the DP's group list for `j` tasks starting at `base`.
    fn unroll(choice: &[(u32, usize)], mut j: u32, mut base: TaskId, groups: &mut Vec<Group>) {
        while j > 0 {
            let (g, qi) = choice[j as usize];
            groups.push(Group {
                base,
                size: g,
                combo: qi,
            });
            base += g;
            j -= g;
        }
    }

    /// Materializes a group as physical bins via round-robin placement.
    fn emit_group(
        group: &Group,
        pool: &[Combination],
        bins: &BinSet,
        plan: &mut DecompositionPlan,
    ) {
        let q = &pool[group.combo];
        let g = group.size as u64;
        for (i, &k) in q.counts().iter().enumerate() {
            if k == 0 {
                continue;
            }
            let bin = &bins.bins()[i];
            let n_bins = bins_needed(g, k, bin.cardinality()) as usize;
            let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); n_bins];
            for t in 0..g {
                for j in 0..u64::from(k) {
                    let slot = (t * u64::from(k) + j) as usize % n_bins;
                    members[slot].push(group.base + t as TaskId);
                }
            }
            for tasks in members {
                debug_assert!(tasks.len() <= bin.cardinality() as usize);
                plan.push(bin, tasks);
            }
        }
    }

    /// Precomputes the enumeration pool and group-DP tables for transformed
    /// threshold `theta` up to this configuration's full `dp_cap`, so the
    /// result can serve workloads of any size (see [`OpqArtifacts`]).
    ///
    /// This is the expensive, workload-independent part of
    /// [`OpqBased::solve`]; callers that face repeated `(BinSet, θ)` pairs
    /// (the `slade-engine` service) compute it once and share it.
    pub fn artifacts(&self, bins: &BinSet, theta: f64) -> Result<OpqArtifacts, SladeError> {
        self.artifacts_up_to(bins, theta, self.dp_cap.max(1))
    }

    /// [`OpqBased::artifacts`] with an explicit DP cap (the one-shot solve
    /// path trims it to `n` so tiny instances don't pay for the full table).
    fn artifacts_up_to(
        &self,
        bins: &BinSet,
        theta: f64,
        cap: u32,
    ) -> Result<OpqArtifacts, SladeError> {
        let pool = self.candidate_pool(bins, theta);
        if pool.is_empty() {
            return Err(SladeError::EmptyEnumeration);
        }
        let (best, choice) = Self::group_dp(&pool, bins, cap);
        Ok(OpqArtifacts {
            pool,
            best,
            choice,
            theta,
            bins_signature: bins.signature(),
        })
    }

    /// Plans `n` tasks (dense ids `0..n`) from precomputed `artifacts`.
    ///
    /// Produces exactly the plan [`OpqBased::solve`] would produce for a
    /// homogeneous workload of `n` tasks at the artifacts' threshold,
    /// provided `artifacts` came from [`OpqBased::artifacts`] on the same
    /// solver configuration and bin set — the caller's contract.
    pub fn solve_with_artifacts(
        &self,
        n: u32,
        artifacts: &OpqArtifacts,
        bins: &BinSet,
    ) -> DecompositionPlan {
        debug_assert!(n >= 1);
        let mut groups: Vec<Group> = Vec::new();
        let cap = artifacts.dp_cap();
        if n <= cap {
            Self::unroll(&artifacts.choice, n, 0, &mut groups);
        } else {
            // One bulk group of n - j tasks plus the best DP tail of j tasks.
            let mut best_total = f64::INFINITY;
            let mut pick = (0u32, 0usize);
            for j in 0..=cap {
                let bulk = u64::from(n - j);
                for (qi, q) in artifacts.pool.iter().enumerate() {
                    let total = artifacts.best[j as usize] + Self::group_cost(q, bins, bulk);
                    if total < best_total {
                        best_total = total;
                        pick = (j, qi);
                    }
                }
            }
            let (tail, qi) = pick;
            groups.push(Group {
                base: 0,
                size: n - tail,
                combo: qi,
            });
            Self::unroll(&artifacts.choice, tail, n - tail, &mut groups);
        }

        let mut plan = DecompositionPlan::empty(self.name());
        for group in &groups {
            Self::emit_group(group, &artifacts.pool, bins, &mut plan);
        }
        plan
    }

    /// Gathers the candidate combination pool: the `pool_size` cheapest
    /// combinations under each OPQ key, deduplicated.
    fn candidate_pool(&self, bins: &BinSet, theta: f64) -> Vec<Combination> {
        let mut pool: Vec<Combination> = Vec::new();
        for key in [CombinationKey::PerTaskPrice, CombinationKey::TotalCost] {
            let mut opq = OptimalPriorityQueue::new(bins, theta, key, self.opq.clone());
            for combo in opq.take_feasible(self.pool_size) {
                if !pool.iter().any(|c| c.counts() == combo.counts()) {
                    pool.push(combo);
                }
            }
        }
        pool
    }
}

/// Physical bins of one type needed so that each of `g` tasks sits in `k`
/// distinct bins of cardinality `l`: `max(k, ⌈g·k / l⌉)`.
fn bins_needed(g: u64, k: u32, l: u32) -> u64 {
    let slots = g * u64::from(k);
    u64::from(k).max(slots.div_ceil(u64::from(l)))
}

impl SolveArtifacts for OpqArtifacts {
    fn theta(&self) -> f64 {
        self.theta
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl PreparedSolver for OpqBased {
    fn prepare(&self, bins: &BinSet, theta: f64) -> Result<Arc<dyn SolveArtifacts>, SladeError> {
        Ok(Arc::new(self.artifacts(bins, theta)?))
    }

    fn solve_with(
        &self,
        artifacts: &dyn SolveArtifacts,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        if !workload.is_homogeneous() {
            return Err(SladeError::HeterogeneousUnsupported { solver: "OpqBased" });
        }
        let artifacts = expect_artifacts::<OpqArtifacts>(self.name(), artifacts)?;
        if artifacts.bins_signature != bins.signature() {
            return Err(SladeError::ArtifactMismatch {
                solver: self.name(),
                detail: "artifacts were prepared for a different bin menu".into(),
            });
        }
        let theta = workload.theta(0);
        if theta.to_bits() != artifacts.theta.to_bits() {
            return Err(SladeError::ArtifactMismatch {
                solver: self.name(),
                detail: format!(
                    "artifacts prepared for θ = {}, workload demands θ = {theta}",
                    artifacts.theta
                ),
            });
        }
        Ok(self.solve_with_artifacts(workload.len(), artifacts, bins))
    }

    fn fingerprint_knobs(&self, sink: &mut KnobSink) {
        sink.write_usize(self.pool_size);
        sink.write_u64(u64::from(self.dp_cap));
        sink.write_opt_usize(self.opq.max_combination_size);
        sink.write_usize(self.opq.max_expansions);
    }
}

impl DecompositionSolver for OpqBased {
    fn name(&self) -> &'static str {
        "OpqBased"
    }

    fn supports_heterogeneous(&self) -> bool {
        false
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        if !workload.is_homogeneous() {
            return Err(SladeError::HeterogeneousUnsupported { solver: "OpqBased" });
        }
        let n = workload.len();
        let theta = workload.theta(0);
        let cap = n.min(self.dp_cap.max(1));
        let artifacts = self.artifacts_up_to(bins, theta, cap)?;
        Ok(self.solve_with_artifacts(n, &artifacts, bins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability;

    #[test]
    fn example9_cost_is_068() {
        let bins = BinSet::paper_example();
        let workload = Workload::homogeneous(4, 0.95).unwrap();
        let plan = OpqBased::default().solve(&workload, &bins).unwrap();
        assert!(
            (plan.total_cost() - 0.68).abs() < 1e-9,
            "{}",
            plan.total_cost()
        );
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible);
        // Example 9's structure: two b3 bins + two b1 bins.
        assert_eq!(audit.bins_posted, 4);
    }

    #[test]
    fn tiny_instances_match_hand_computation() {
        let bins = BinSet::paper_example();
        // n = 1: two b1 bins (0.20) beat every other feasible combination.
        let w1 = Workload::homogeneous(1, 0.95).unwrap();
        let p1 = OpqBased::default().solve(&w1, &bins).unwrap();
        assert!((p1.total_cost() - 0.20).abs() < 1e-9);
        // n = 2: both tasks in two shared b2 bins (0.36).
        let w2 = Workload::homogeneous(2, 0.95).unwrap();
        let p2 = OpqBased::default().solve(&w2, &bins).unwrap();
        assert!((p2.total_cost() - 0.36).abs() < 1e-9);
        // n = 3: the Example-8 group — three tasks in two b3 bins (0.48).
        let w3 = Workload::homogeneous(3, 0.95).unwrap();
        let p3 = OpqBased::default().solve(&w3, &bins).unwrap();
        assert!((p3.total_cost() - 0.48).abs() < 1e-9);
    }

    #[test]
    fn large_instance_is_feasible_and_near_price_bound() {
        let bins = BinSet::paper_example();
        let n = 10_000u32;
        let workload = Workload::homogeneous(n, 0.95).unwrap();
        let plan = OpqBased::default().solve(&workload, &bins).unwrap();
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible);
        // Best per-task price for t = 0.95 is 0.16 ({b3, b3}); the plan must
        // stay within one combination's posting cost of n times that.
        let lower = f64::from(n) * 0.16;
        assert!(plan.total_cost() >= lower - 1e-6);
        assert!(
            plan.total_cost() <= lower + 0.48 + 1e-6,
            "{}",
            plan.total_cost()
        );
    }

    #[test]
    fn bulk_path_matches_dp_path_at_the_boundary() {
        let bins = BinSet::paper_example();
        let n = 300u32;
        let workload = Workload::homogeneous(n, 0.95).unwrap();
        let small_dp = OpqBased {
            dp_cap: 64,
            ..OpqBased::default()
        };
        let big_dp = OpqBased {
            dp_cap: 512,
            ..OpqBased::default()
        };
        let a = small_dp.solve(&workload, &bins).unwrap();
        let b = big_dp.solve(&workload, &bins).unwrap();
        assert!((a.total_cost() - b.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn artifact_path_reproduces_one_shot_solve_exactly() {
        // Cached artifacts carry the FULL dp_cap table; the one-shot path
        // trims the DP to n. The plans must still be identical because the
        // DP is bottom-up (a prefix of a longer table is the shorter table).
        let bins = BinSet::paper_example();
        let solver = OpqBased::default();
        let artifacts = solver.artifacts(&bins, reliability::theta(0.95)).unwrap();
        assert_eq!(artifacts.dp_cap(), solver.dp_cap);
        assert!(!artifacts.pool().is_empty());
        for n in [1u32, 4, 100, 256, 300, 5_000] {
            let w = Workload::homogeneous(n, 0.95).unwrap();
            let one_shot = solver.solve(&w, &bins).unwrap();
            let from_artifacts = solver.solve_with_artifacts(n, &artifacts, &bins);
            assert_eq!(one_shot, from_artifacts, "n = {n}");
        }
    }

    #[test]
    fn prepared_pipeline_matches_one_shot_and_rejects_mismatches() {
        let bins = BinSet::paper_example();
        let solver = OpqBased::default();
        let theta95 = reliability::theta(0.95);
        let artifacts = solver.prepare(&bins, theta95).unwrap();
        for n in [1u32, 4, 300, 5_000] {
            let w = Workload::homogeneous(n, 0.95).unwrap();
            let two_phase = solver.solve_with(artifacts.as_ref(), &w, &bins).unwrap();
            assert_eq!(two_phase, solver.solve(&w, &bins).unwrap(), "n = {n}");
        }
        // θ mismatch: artifacts for 0.95 cannot serve a 0.9 workload.
        let w90 = Workload::homogeneous(4, 0.9).unwrap();
        assert!(matches!(
            solver.solve_with(artifacts.as_ref(), &w90, &bins),
            Err(SladeError::ArtifactMismatch {
                solver: "OpqBased",
                ..
            })
        ));
        // Heterogeneous workloads are rejected before any downcast.
        let hetero = Workload::heterogeneous(vec![0.5, 0.9]).unwrap();
        assert!(matches!(
            solver.solve_with(artifacts.as_ref(), &hetero, &bins),
            Err(SladeError::HeterogeneousUnsupported { solver: "OpqBased" })
        ));
    }

    #[test]
    fn artifacts_surface_empty_enumeration() {
        let bins = BinSet::paper_example();
        let solver = OpqBased {
            opq: OpqConfig {
                max_combination_size: Some(1),
                ..OpqConfig::default()
            },
            ..OpqBased::default()
        };
        assert!(matches!(
            solver.artifacts(&bins, reliability::theta(0.95)),
            Err(SladeError::EmptyEnumeration)
        ));
    }

    #[test]
    fn rejects_heterogeneous_workloads() {
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.5, 0.9]).unwrap();
        assert!(matches!(
            OpqBased::default().solve(&w, &bins),
            Err(SladeError::HeterogeneousUnsupported { solver: "OpqBased" })
        ));
    }

    #[test]
    fn empty_enumeration_is_reported() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(4, 0.95).unwrap();
        let solver = OpqBased {
            opq: OpqConfig {
                max_combination_size: Some(1),
                ..OpqConfig::default()
            },
            ..OpqBased::default()
        };
        assert!(matches!(
            solver.solve(&w, &bins),
            Err(SladeError::EmptyEnumeration)
        ));
    }

    #[test]
    fn single_bin_type_reduces_to_ceiling_formula() {
        // One bin type <2, 0.9, 0.3>, t = 0.8: one bin per task suffices
        // (w = 2.30 >= θ = 1.61), so OPT = ⌈n/2⌉ · 0.3.
        let bins = BinSet::new([(2, 0.9, 0.3)]).unwrap();
        for n in [1u32, 2, 3, 7, 100] {
            let w = Workload::homogeneous(n, 0.8).unwrap();
            let plan = OpqBased::default().solve(&w, &bins).unwrap();
            let expect = f64::from(n.div_ceil(2)) * 0.3;
            assert!(
                (plan.total_cost() - expect).abs() < 1e-9,
                "n = {n}: {} != {expect}",
                plan.total_cost()
            );
            assert!(plan.validate(&w, &bins).unwrap().feasible);
        }
    }

    #[test]
    fn round_robin_respects_capacity_and_distinctness() {
        let bins = BinSet::new([(3, 0.7, 0.2), (5, 0.6, 0.25)]).unwrap();
        for n in [1u32, 4, 5, 6, 11, 50] {
            for t in [0.9, 0.99, 0.999] {
                let w = Workload::homogeneous(n, t).unwrap();
                let plan = OpqBased::default().solve(&w, &bins).unwrap();
                // validate() errors on capacity violations / duplicates.
                let audit = plan.validate(&w, &bins).unwrap();
                assert!(audit.feasible, "n = {n}, t = {t}");
            }
        }
    }

    #[test]
    fn reported_cost_is_consistent_with_min_price_lower_bound() {
        // OPT >= n · p(q*) (each bin's cost splits over at most l tasks), so
        // the solver must never report less.
        let bins = BinSet::new([(1, 0.9, 0.1), (4, 0.75, 0.22)]).unwrap();
        let w = Workload::homogeneous(37, 0.97).unwrap();
        let theta = reliability::theta(0.97);
        let plan = OpqBased::default().solve(&w, &bins).unwrap();
        let mut opq = OptimalPriorityQueue::new(
            &bins,
            theta,
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        );
        let best_price = opq.pop_feasible().unwrap().price();
        assert!(plan.total_cost() >= 37.0 * best_price - 1e-9);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }
}
