//! # slade-core — Smart Large-scAle task DEcomposer
//!
//! A from-scratch implementation of the SLADE crowdsourcing task-decomposition
//! system (Tong, Chen, Zhou, Jagadish, Shou, Lv — IEEE TKDE 30(8), 2018).
//!
//! ## Problem
//!
//! A large-scale crowdsourcing task is a set of `n` *atomic tasks* (binary
//! questions). Atomic tasks are packed into *task bins*: an `l`-cardinality
//! bin holds up to `l` distinct atomic tasks, gives each a per-task confidence
//! `r_l`, and costs `c_l` to post. A task assigned to several bins succeeds if
//! *any* of them answers it correctly, so its *reliability* is
//! `1 - Π (1 - r)`. SLADE finds a multiset of bins plus a task→bin assignment
//! of minimum total cost such that every atomic task `a_i` reaches its
//! reliability threshold `t_i`. The problem is NP-hard (reduction from
//! Unbounded Knapsack; see [`hardness`]).
//!
//! ## Solvers
//!
//! | Solver | Paper | Scope | Guarantee |
//! |--------|-------|-------|-----------|
//! | [`greedy::Greedy`] | Algorithm 1 | homo + hetero | none (heuristic) |
//! | [`opq_based::OpqBased`] | Algorithms 2–3 | homogeneous | `log n`-approx |
//! | [`hetero::OpqExtended`] | Algorithms 4–5 | homo + hetero | `2⌈log(θmax/θmin)⌉ log n`-approx |
//! | [`baseline::Baseline`] | §4.3 (CIP + LP rounding) | homo + hetero | `O(log n)` w.h.p. |
//! | [`relaxed::solve_relaxed`] | §4.2 rod-cutting DP | all `r_l ≥ t_max` | exact, `O(nm)` |
//! | [`exact::ExactSolver`] | — (validation) | tiny instances | exact |
//!
//! ## Quickstart
//!
//! ```
//! use slade_core::prelude::*;
//!
//! // Table 1 of the paper: bins of cardinality 1..=3.
//! let bins = BinSet::paper_example();
//! // Four atomic tasks, every one requiring reliability >= 0.95.
//! let workload = Workload::homogeneous(4, 0.95).unwrap();
//!
//! let plan = OpqBased::default().solve(&workload, &bins).unwrap();
//! let audit = plan.validate(&workload, &bins).unwrap();
//! assert!(audit.feasible);
//! assert!((plan.total_cost() - 0.68).abs() < 1e-9); // Example 9 of the paper
//! ```

pub mod baseline;
pub mod bin_set;
pub mod error;
pub mod exact;
pub mod fingerprint;
pub mod greedy;
pub mod hardness;
pub mod hetero;
pub mod opq;
pub mod opq_based;
pub mod plan;
pub mod relaxed;
pub mod reliability;
pub mod solver;
pub mod task;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::baseline::{Baseline, BaselineConfig};
    pub use crate::bin_set::{BinSet, TaskBin};
    pub use crate::error::SladeError;
    pub use crate::exact::ExactSolver;
    pub use crate::fingerprint::{Fingerprint, KnobSink};
    pub use crate::greedy::Greedy;
    pub use crate::hetero::OpqExtended;
    pub use crate::opq::OptimalPriorityQueue;
    pub use crate::opq_based::OpqBased;
    pub use crate::plan::{DecompositionPlan, PlanAudit};
    pub use crate::solver::{Algorithm, DecompositionSolver, PreparedSolver, SolveArtifacts};
    pub use crate::task::{TaskId, Workload};
}

pub use prelude::*;
