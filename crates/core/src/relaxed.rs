//! The relaxed SLADE problem and its exact rod-cutting DP (§4.2 of the
//! paper).
//!
//! When every bin confidence satisfies `r_l ≥ t_max`, a *single* bin already
//! pushes any task past its threshold, so an optimal plan assigns each task
//! exactly one bin and the problem collapses to: cover `n` task slots with
//! bins of capacities `l` and costs `c_l` at minimum cost. That is the
//! classic rod-cutting / coin-change recurrence
//!
//! ```text
//! f(0) = 0,    f(j) = min_l  f(max(j - l, 0)) + c_l
//! ```
//!
//! solved exactly in `O(n·m)` time and `O(n)` space by [`solve_relaxed`].
//! Instances violating the precondition are rejected with
//! [`SladeError::NotRelaxed`]; the general solvers
//! ([`OpqBased`](crate::opq_based::OpqBased),
//! [`OpqExtended`](crate::hetero::OpqExtended)) handle them instead.
//!
//! ```
//! use slade_core::prelude::*;
//! use slade_core::relaxed::solve_relaxed;
//!
//! // All confidences (0.9, 0.85, 0.8) meet t_max = 0.8, so the instance is
//! // relaxed: each of the 7 tasks needs exactly one bin.
//! let bins = BinSet::paper_example();
//! let workload = Workload::homogeneous(7, 0.8).unwrap();
//! let plan = solve_relaxed(&workload, &bins).unwrap();
//! // Optimal covering of 7 slots: 2×b3 + 1×b1 = 0.58.
//! assert!((plan.total_cost() - 0.58).abs() < 1e-9);
//! assert!(plan.validate(&workload, &bins).unwrap().feasible);
//! ```

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::plan::DecompositionPlan;
use crate::reliability::satisfies;
use crate::solver::DecompositionSolver;
use crate::task::{TaskId, Workload};

/// Solves a relaxed instance exactly; see the module docs.
///
/// Errors with [`SladeError::NotRelaxed`] if some bin confidence falls below
/// the workload's maximum threshold.
pub fn solve_relaxed(workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
    let t_max = workload.max_threshold();
    let theta_max = crate::reliability::theta(t_max);
    for b in bins.bins() {
        if !satisfies(b.weight(), theta_max) {
            return Err(SladeError::NotRelaxed {
                cardinality: b.cardinality(),
                confidence: b.confidence(),
                t_max,
            });
        }
    }

    let n = workload.len() as usize;
    // f[j] = min cost to cover j tasks; choice[j] = bin index realizing it.
    let mut f = vec![f64::INFINITY; n + 1];
    let mut choice = vec![usize::MAX; n + 1];
    f[0] = 0.0;
    for j in 1..=n {
        for (i, b) in bins.bins().iter().enumerate() {
            let prev = j.saturating_sub(b.cardinality() as usize);
            let c = f[prev] + b.cost();
            if c < f[j] {
                f[j] = c;
                choice[j] = i;
            }
        }
    }

    let mut plan = DecompositionPlan::empty("Relaxed");
    let mut j = n;
    while j > 0 {
        let bin = &bins.bins()[choice[j]];
        let take = (bin.cardinality() as usize).min(j);
        let tasks: Vec<TaskId> = ((j - take)..j).map(|t| t as TaskId).collect();
        plan.push(bin, tasks);
        j -= take;
    }
    Ok(plan)
}

/// [`DecompositionSolver`] adapter over [`solve_relaxed`], used by
/// [`Algorithm::Relaxed`](crate::solver::Algorithm::Relaxed).
#[derive(Debug, Clone, Copy, Default)]
pub struct Relaxed;

impl DecompositionSolver for Relaxed {
    fn name(&self) -> &'static str {
        "Relaxed"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        solve_relaxed(workload, bins)
    }
}

// The rod-cutting DP is `O(n·m)` with no workload-independent prefix worth
// caching, so the two-phase pipeline is the trait's trivial pass-through.
impl crate::solver::PreparedSolver for Relaxed {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_relaxed_instances_are_rejected_with_context() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(4, 0.95).unwrap();
        let err = solve_relaxed(&w, &bins).unwrap_err();
        match err {
            SladeError::NotRelaxed {
                cardinality,
                confidence,
                t_max,
            } => {
                // b2 <2, 0.85, 0.18> is the first offender in cardinality
                // order (b1's 0.90 < 0.95 too — but b1 fails first).
                assert_eq!(cardinality, 1);
                assert!((confidence - 0.90).abs() < 1e-12);
                assert!((t_max - 0.95).abs() < 1e-12);
            }
            other => panic!("expected NotRelaxed, got {other}"),
        }
    }

    #[test]
    fn dp_beats_naive_single_bin_type_choices() {
        // Capacities 3 and 4 with a price break on the 4: n = 6 is cheapest
        // as 3 + 3 (0.40) rather than 4 + 3 (0.42) or 4 + 4 (0.44).
        let bins = BinSet::new([(3, 0.9, 0.20), (4, 0.9, 0.22)]).unwrap();
        let w = Workload::homogeneous(6, 0.85).unwrap();
        let plan = solve_relaxed(&w, &bins).unwrap();
        assert!((plan.total_cost() - 0.40).abs() < 1e-9);
        assert_eq!(plan.num_bins(), 2);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn every_task_gets_exactly_one_bin() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(10, 0.8).unwrap();
        let plan = solve_relaxed(&w, &bins).unwrap();
        let mut coverage = vec![0u32; 10];
        for b in plan.bins() {
            for &t in b.tasks() {
                coverage[t as usize] += 1;
            }
        }
        assert!(coverage.iter().all(|&c| c == 1), "{coverage:?}");
    }

    #[test]
    fn heterogeneous_relaxed_instances_are_supported() {
        let bins = BinSet::paper_example();
        // t_max = 0.8 == the smallest confidence, so still relaxed.
        let w = Workload::heterogeneous(vec![0.5, 0.8, 0.3, 0.75, 0.6]).unwrap();
        let plan = solve_relaxed(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
        // 5 slots: b3 + b2 = 0.42 beats b3 + 2×b1 (0.44) and b3 + b3 (0.48).
        assert!((plan.total_cost() - 0.42).abs() < 1e-9);
    }

    #[test]
    fn boundary_confidence_equal_to_threshold_counts_as_relaxed() {
        let bins = BinSet::new([(2, 0.8, 0.1)]).unwrap();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        let plan = solve_relaxed(&w, &bins).unwrap();
        assert!((plan.total_cost() - 0.2).abs() < 1e-12);
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }
}
