//! The Optimal Priority Queue (Algorithm 2 of the paper).
//!
//! A *combination* is a multiset of task-bin types whose transformed weights
//! sum to at least a target θ — i.e. a recipe that, applied to one atomic
//! task, satisfies a reliability threshold `t` with `θ = -ln(1 - t)`. The
//! OPQ enumerates **minimal** feasible combinations (dropping any single bin
//! breaks feasibility) in nondecreasing key order, lazily: it is a best-first
//! search over multisets, so the `k` cheapest combinations are produced
//! without materializing the exponential combination space.
//!
//! Two keys are supported (see [`CombinationKey`]):
//!
//! * [`CombinationKey::PerTaskPrice`] — `Σ k_l · c_l / l`, the cost one task
//!   pays when every bin in the combination is shared by a full group
//!   (Algorithm 3 uses this for its bulk groups);
//! * [`CombinationKey::TotalCost`] — `Σ k_l · c_l`, the cost of posting the
//!   combination outright (what a leftover group of fewer than `l` tasks
//!   pays).
//!
//! ```
//! use slade_core::bin_set::BinSet;
//! use slade_core::opq::{CombinationKey, OpqConfig, OptimalPriorityQueue};
//! use slade_core::reliability::theta;
//!
//! let bins = BinSet::paper_example();
//! let mut opq = OptimalPriorityQueue::new(
//!     &bins,
//!     theta(0.95),
//!     CombinationKey::PerTaskPrice,
//!     OpqConfig::default(),
//! );
//! // Example 7/8 of the paper: the per-task-cheapest feasible combination
//! // for t = 0.95 is two bins of cardinality 3 at price 2 * 0.24/3 = 0.16.
//! let best = opq.next().unwrap();
//! assert_eq!(best.counts(), &[0, 0, 2]);
//! assert!((best.price() - 0.16).abs() < 1e-12);
//! ```

use crate::bin_set::BinSet;
use crate::reliability::{satisfies, WEIGHT_EPS};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Bounds on the OPQ's lazy enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct OpqConfig {
    /// Maximum number of bins in one combination. `None` (the default)
    /// derives the bound `⌈θ / w_min⌉ + 1` from the instance, which is always
    /// sufficient; tightening it below that can make the enumeration empty
    /// (surfaced as [`SladeError::EmptyEnumeration`] by the solvers).
    ///
    /// [`SladeError::EmptyEnumeration`]: crate::error::SladeError::EmptyEnumeration
    pub max_combination_size: Option<usize>,
    /// Hard cap on heap expansions, guarding against pathological instances
    /// (hundreds of bin types with near-zero weights).
    pub max_expansions: usize,
}

impl Default for OpqConfig {
    fn default() -> Self {
        OpqConfig {
            max_combination_size: None,
            max_expansions: 1 << 20,
        }
    }
}

/// Ordering key for the OPQ enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinationKey {
    /// `Σ k_l · c_l / l` — cost per task when bins are fully shared.
    PerTaskPrice,
    /// `Σ k_l · c_l` — cost of posting every bin in the combination once.
    TotalCost,
}

/// A minimal feasible combination popped from the OPQ.
#[derive(Debug, Clone, PartialEq)]
pub struct Combination {
    counts: Vec<u32>,
    weight: f64,
    total_cost: f64,
    price: f64,
}

impl Combination {
    /// Multiplicity per bin type, aligned with [`BinSet::bins`] order.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total transformed weight `Σ k_l · w_l` delivered to a task.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Posting cost `Σ k_l · c_l` of one instance of the combination.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Per-task price `Σ k_l · c_l / l` under full sharing.
    #[inline]
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Number of bins in the combination.
    pub fn size(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Best-first enumerator of minimal feasible combinations; see the module
/// docs. Iterates in nondecreasing key order and ends (yielding `None`) when
/// the search space or the configured budget is exhausted.
#[derive(Debug)]
pub struct OptimalPriorityQueue<'a> {
    bins: &'a BinSet,
    theta: f64,
    key: CombinationKey,
    max_size: usize,
    max_expansions: usize,
    expansions: usize,
    heap: BinaryHeap<State>,
}

#[derive(Debug)]
struct State {
    key: f64,
    /// Multiplicity per bin index.
    counts: Vec<u32>,
    weight: f64,
    /// Highest bin index present; children only add indices `>= last` so each
    /// multiset is generated exactly once.
    last: usize,
    size: usize,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.counts == other.counts
    }
}
impl Eq for State {}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key pops first.
        // Ties break toward fewer bins, then lexicographically smaller
        // counts, for determinism.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.size.cmp(&self.size))
            .then_with(|| other.counts.cmp(&self.counts))
    }
}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> OptimalPriorityQueue<'a> {
    /// Creates an OPQ over `bins` for transformed threshold `theta`.
    pub fn new(bins: &'a BinSet, theta: f64, key: CombinationKey, config: OpqConfig) -> Self {
        debug_assert!(theta > 0.0 && theta.is_finite());
        let auto_size = (theta / bins.min_weight()).ceil() as usize + 1;
        let max_size = config.max_combination_size.unwrap_or(auto_size);
        let mut opq = OptimalPriorityQueue {
            bins,
            theta,
            key,
            max_size,
            max_expansions: config.max_expansions,
            expansions: 0,
            heap: BinaryHeap::new(),
        };
        for i in 0..bins.len() {
            let mut counts = vec![0u32; bins.len()];
            counts[i] = 1;
            let weight = bins.bins()[i].weight();
            let key = opq.key_of(i, 1);
            opq.heap.push(State {
                key,
                counts,
                weight,
                last: i,
                size: 1,
            });
        }
        opq
    }

    fn key_of(&self, bin_index: usize, count: u32) -> f64 {
        let b = &self.bins.bins()[bin_index];
        let unit = match self.key {
            CombinationKey::PerTaskPrice => b.cost() / b.cardinality() as f64,
            CombinationKey::TotalCost => b.cost(),
        };
        unit * count as f64
    }

    /// Whether `counts` is minimal: removing any present bin drops the weight
    /// below θ. Since removal of the *lightest* present bin leaves the most
    /// weight, checking that single removal suffices.
    fn is_minimal(&self, counts: &[u32], weight: f64) -> bool {
        let min_present = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| self.bins.bins()[i].weight())
            .fold(f64::INFINITY, f64::min);
        !satisfies(weight - min_present, self.theta)
    }

    /// Pops the next minimal feasible combination, or `None` when the search
    /// space (or expansion budget) is exhausted.
    pub fn pop_feasible(&mut self) -> Option<Combination> {
        while let Some(state) = self.heap.pop() {
            if satisfies(state.weight, self.theta) {
                // Feasible. Supersets are never minimal, so do not expand.
                if self.is_minimal(&state.counts, state.weight) {
                    let total_cost: f64 = state
                        .counts
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| c as f64 * self.bins.bins()[i].cost())
                        .sum();
                    let price: f64 = state
                        .counts
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            let b = &self.bins.bins()[i];
                            c as f64 * b.cost() / b.cardinality() as f64
                        })
                        .sum();
                    return Some(Combination {
                        counts: state.counts,
                        weight: state.weight,
                        total_cost,
                        price,
                    });
                }
                continue;
            }
            // Infeasible: expand children (append one bin of index >= last).
            if state.size >= self.max_size || self.expansions >= self.max_expansions {
                continue;
            }
            self.expansions += 1;
            for i in state.last..self.bins.len() {
                let mut counts = state.counts.clone();
                counts[i] += 1;
                let child_key = state.key + self.key_of(i, 1);
                let weight = state.weight + self.bins.bins()[i].weight();
                self.heap.push(State {
                    key: child_key,
                    counts,
                    weight,
                    last: i,
                    size: state.size + 1,
                });
            }
        }
        None
    }

    /// Convenience: the first `k` minimal feasible combinations in key order,
    /// fewer if the space is smaller.
    pub fn take_feasible(&mut self, k: usize) -> Vec<Combination> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.pop_feasible() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }

    /// The transformed threshold this queue enumerates against.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl Iterator for OptimalPriorityQueue<'_> {
    type Item = Combination;

    fn next(&mut self) -> Option<Combination> {
        self.pop_feasible()
    }
}

/// Re-exported tolerance so callers comparing popped keys use the same
/// epsilon as the enumeration itself.
pub const KEY_EPS: f64 = WEIGHT_EPS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::theta;

    fn paper_opq(key: CombinationKey) -> Vec<Combination> {
        let bins = BinSet::paper_example();
        let mut opq = OptimalPriorityQueue::new(&bins, theta(0.95), key, OpqConfig::default());
        opq.take_feasible(16)
    }

    #[test]
    fn paper_example_price_order() {
        // All minimal feasible combinations for Table 1 at t = 0.95 are
        // pairs: {b3,b3} 0.16, {b2,b3} 0.17, {b2,b2} 0.18, {b1,b3} 0.18,
        // {b1,b2} 0.19, {b1,b1} 0.20 (per-task price order).
        let combos = paper_opq(CombinationKey::PerTaskPrice);
        assert_eq!(combos.len(), 6);
        let prices: Vec<f64> = combos.iter().map(Combination::price).collect();
        for pair in prices.windows(2) {
            assert!(pair[0] <= pair[1] + KEY_EPS);
        }
        assert_eq!(combos[0].counts(), &[0, 0, 2]);
        assert!((combos[0].price() - 0.16).abs() < 1e-12);
        assert!((combos[0].weight() - 2.0 * crate::reliability::weight(0.8)).abs() < 1e-12);
    }

    #[test]
    fn paper_example_total_cost_order() {
        // By posting cost the order flips: {b1,b1} 0.20 is cheapest.
        let combos = paper_opq(CombinationKey::TotalCost);
        assert_eq!(combos.len(), 6);
        assert_eq!(combos[0].counts(), &[2, 0, 0]);
        assert!((combos[0].total_cost() - 0.20).abs() < 1e-12);
        let costs: Vec<f64> = combos.iter().map(Combination::total_cost).collect();
        for pair in costs.windows(2) {
            assert!(pair[0] <= pair[1] + KEY_EPS);
        }
    }

    #[test]
    fn all_popped_combinations_are_minimal_and_feasible() {
        let bins = BinSet::new([(1, 0.6, 0.1), (2, 0.5, 0.15), (4, 0.4, 0.2)]).unwrap();
        let th = theta(0.99);
        let mut opq = OptimalPriorityQueue::new(
            &bins,
            th,
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        );
        let combos = opq.take_feasible(50);
        assert!(!combos.is_empty());
        for c in &combos {
            assert!(satisfies(c.weight(), th));
            // Minimality: removing the lightest present bin breaks it.
            let lightest = c
                .counts()
                .iter()
                .enumerate()
                .filter(|(_, &k)| k > 0)
                .map(|(i, _)| bins.bins()[i].weight())
                .fold(f64::INFINITY, f64::min);
            assert!(!satisfies(c.weight() - lightest, th));
        }
    }

    #[test]
    fn no_duplicate_combinations() {
        let bins = BinSet::paper_example();
        let mut opq = OptimalPriorityQueue::new(
            &bins,
            theta(0.999),
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        );
        let combos = opq.take_feasible(100);
        for (i, a) in combos.iter().enumerate() {
            for b in &combos[i + 1..] {
                assert_ne!(a.counts(), b.counts());
            }
        }
    }

    #[test]
    fn tight_size_limit_empties_the_enumeration() {
        let bins = BinSet::paper_example();
        // t = 0.95 needs two bins; capping combinations at one bin leaves
        // nothing feasible.
        let mut opq = OptimalPriorityQueue::new(
            &bins,
            theta(0.95),
            CombinationKey::PerTaskPrice,
            OpqConfig {
                max_combination_size: Some(1),
                ..OpqConfig::default()
            },
        );
        assert!(opq.pop_feasible().is_none());
    }

    #[test]
    fn single_bin_suffices_for_low_threshold() {
        let bins = BinSet::paper_example();
        // t = 0.5: every single bin already satisfies it; the cheapest by
        // price is one b3 (0.08/task).
        let mut opq = OptimalPriorityQueue::new(
            &bins,
            theta(0.5),
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        );
        let first = opq.pop_feasible().unwrap();
        assert_eq!(first.counts(), &[0, 0, 1]);
        assert_eq!(first.size(), 1);
    }

    #[test]
    fn iterator_interface_matches_pop() {
        let bins = BinSet::paper_example();
        let a: Vec<_> = OptimalPriorityQueue::new(
            &bins,
            theta(0.95),
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        )
        .take(3)
        .collect();
        let b = OptimalPriorityQueue::new(
            &bins,
            theta(0.95),
            CombinationKey::PerTaskPrice,
            OpqConfig::default(),
        )
        .take_feasible(3);
        assert_eq!(a, b);
    }
}
