//! Error type shared across the SLADE solvers.

use std::fmt;

/// Errors raised while building SLADE inputs or solving instances.
#[derive(Debug, Clone, PartialEq)]
pub enum SladeError {
    /// A bin set failed validation (empty, duplicate cardinality, confidence
    /// or cost out of range, ...). The payload describes the violation.
    InvalidBinSet(String),
    /// A workload failed validation (zero tasks or a threshold outside
    /// `(0, 1)`).
    InvalidWorkload(String),
    /// A solver that only supports homogeneous workloads received a
    /// heterogeneous one.
    HeterogeneousUnsupported {
        /// Name of the rejecting solver.
        solver: &'static str,
    },
    /// The OPQ enumeration produced no feasible combination within its
    /// configured depth limit (only possible with extreme thresholds or a
    /// tightened [`crate::opq::OpqConfig`]).
    EmptyEnumeration,
    /// The exact solver exceeded its node budget or task-count cap.
    ExactBudgetExceeded {
        /// Number of branch-and-bound nodes expanded before giving up.
        nodes: u64,
    },
    /// The relaxed (rod-cutting) solver requires every bin confidence to meet
    /// the maximum threshold; this instance violates that precondition.
    NotRelaxed {
        /// The offending bin cardinality.
        cardinality: u32,
        /// That bin's confidence.
        confidence: f64,
        /// The workload's maximum threshold.
        t_max: f64,
    },
    /// `solve_with` received artifacts that were not produced by this
    /// solver's `prepare` (wrong concrete type, or prepared for a different
    /// transformed threshold than the workload demands).
    ArtifactMismatch {
        /// Name of the rejecting solver.
        solver: &'static str,
        /// What was expected versus what arrived.
        detail: String,
    },
    /// The baseline's covering-program substrate reported an error.
    Covering(String),
    /// A plan references data inconsistent with the instance (unknown bin
    /// cardinality, out-of-range task, duplicate task within one bin, ...).
    InvalidPlan(String),
}

impl fmt::Display for SladeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SladeError::InvalidBinSet(msg) => write!(f, "invalid bin set: {msg}"),
            SladeError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SladeError::HeterogeneousUnsupported { solver } => {
                write!(
                    f,
                    "solver `{solver}` supports only homogeneous workloads; \
                     use OpqExtended, Greedy, or Baseline for per-task thresholds"
                )
            }
            SladeError::EmptyEnumeration => {
                write!(f, "OPQ enumeration found no feasible bin combination")
            }
            SladeError::ExactBudgetExceeded { nodes } => {
                write!(f, "exact solver exceeded its budget after {nodes} nodes")
            }
            SladeError::NotRelaxed {
                cardinality,
                confidence,
                t_max,
            } => write!(
                f,
                "relaxed solver precondition violated: bin of cardinality {cardinality} \
                 has confidence {confidence} < maximum threshold {t_max}"
            ),
            SladeError::ArtifactMismatch { solver, detail } => {
                write!(
                    f,
                    "solver `{solver}` received mismatched artifacts: {detail}"
                )
            }
            SladeError::Covering(msg) => write!(f, "baseline covering program: {msg}"),
            SladeError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for SladeError {}

impl From<slade_lp::covering::CoveringError> for SladeError {
    fn from(e: slade_lp::covering::CoveringError) -> Self {
        SladeError::Covering(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SladeError::HeterogeneousUnsupported { solver: "OpqBased" };
        assert!(e.to_string().contains("OpqBased"));
        let e = SladeError::NotRelaxed {
            cardinality: 3,
            confidence: 0.8,
            t_max: 0.9,
        };
        assert!(e.to_string().contains("cardinality 3"));
        let e = SladeError::ExactBudgetExceeded { nodes: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn covering_errors_convert() {
        let ce = slade_lp::covering::CoveringError::Infeasible;
        let se: SladeError = ce.into();
        assert!(matches!(se, SladeError::Covering(_)));
    }
}
