//! The common solver interface and the algorithm registry.
//!
//! Every decomposition algorithm in this crate implements
//! [`DecompositionSolver`]; [`Algorithm`] is the closed enumeration used to
//! select one by name (CLI flags, benchmark sweeps, config files).

use crate::baseline::Baseline;
use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::exact::ExactSolver;
use crate::greedy::Greedy;
use crate::hetero::OpqExtended;
use crate::opq_based::OpqBased;
use crate::plan::DecompositionPlan;
use crate::relaxed::Relaxed;
use crate::task::Workload;
use std::fmt;
use std::str::FromStr;

/// A task-decomposition algorithm: turns an instance into a
/// [`DecompositionPlan`].
///
/// Implementations must be deterministic for a fixed configuration (the
/// randomized [`Baseline`] carries its seed in its config) and must return
/// plans that pass [`DecompositionPlan::validate`] structurally; feasibility
/// of the result is part of each solver's contract and is asserted by the
/// crate's tests.
pub trait DecompositionSolver {
    /// Stable, human-readable solver name (also stamped on produced plans).
    fn name(&self) -> &'static str;

    /// Whether per-task thresholds are supported; solvers returning `false`
    /// answer heterogeneous workloads with
    /// [`SladeError::HeterogeneousUnsupported`].
    fn supports_heterogeneous(&self) -> bool {
        true
    }

    /// Decomposes `workload` over the bin menu `bins`.
    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError>;
}

/// The closed set of algorithms shipped by this crate, with their
/// default configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 — cost-effectiveness greedy heuristic.
    Greedy,
    /// Algorithms 2–3 — OPQ-Based solver (homogeneous only).
    OpqBased,
    /// Algorithms 4–5 — OPQ-Extended solver (threshold bucketing).
    OpqExtended,
    /// §4.3 — covering-integer-program baseline (LP + randomized rounding).
    Baseline,
    /// §4.2 — rod-cutting dynamic program for relaxed instances.
    Relaxed,
    /// Brute-force branch-and-bound for tiny validation instances.
    Exact,
}

impl Algorithm {
    /// All algorithms, in documentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Greedy,
        Algorithm::OpqBased,
        Algorithm::OpqExtended,
        Algorithm::Baseline,
        Algorithm::Relaxed,
        Algorithm::Exact,
    ];

    /// The canonical (kebab-case) name, accepted back by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::OpqBased => "opq-based",
            Algorithm::OpqExtended => "opq-extended",
            Algorithm::Baseline => "baseline",
            Algorithm::Relaxed => "relaxed",
            Algorithm::Exact => "exact",
        }
    }

    /// Instantiates the algorithm with its default configuration.
    ///
    /// The box is `Send + Sync`: every solver is plain configuration data,
    /// so instances can be shared with or moved across worker threads (the
    /// `slade-engine` service relies on this).
    pub fn solver(self) -> Box<dyn DecompositionSolver + Send + Sync> {
        match self {
            Algorithm::Greedy => Box::new(Greedy),
            Algorithm::OpqBased => Box::new(OpqBased::default()),
            Algorithm::OpqExtended => Box::new(OpqExtended::default()),
            Algorithm::Baseline => Box::new(Baseline::default()),
            Algorithm::Relaxed => Box::new(Relaxed),
            Algorithm::Exact => Box::new(ExactSolver::default()),
        }
    }

    /// Convenience: solve with the default configuration.
    pub fn solve(
        self,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        self.solver().solve(workload, bins)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The valid names are derived from Algorithm::ALL so this message
        // can never drift from the registry (names are case-insensitive and
        // `_` is accepted for `-`).
        write!(f, "unknown algorithm `{}`; expected one of: ", self.0)?;
        for (i, a) in Algorithm::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(a.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownAlgorithm {}

impl FromStr for Algorithm {
    type Err = UnknownAlgorithm;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase().replace('_', "-");
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == normalized)
            .ok_or_else(|| UnknownAlgorithm(s.to_string()))
    }
}

// Thread-safety audit: the engine shards solves across worker threads, so
// every type that crosses a thread boundary — solver configurations, the
// data model, plans, and the cacheable artifacts — must be `Send + Sync`.
// These are compile-time assertions; they cost nothing at runtime and break
// the build if a future field (an `Rc`, a raw pointer, a `RefCell`) ever
// removes the auto impls.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Greedy>();
    assert_send_sync::<OpqBased>();
    assert_send_sync::<OpqExtended>();
    assert_send_sync::<Baseline>();
    assert_send_sync::<Relaxed>();
    assert_send_sync::<ExactSolver>();
    assert_send_sync::<Algorithm>();
    assert_send_sync::<BinSet>();
    assert_send_sync::<Workload>();
    assert_send_sync::<DecompositionPlan>();
    assert_send_sync::<SladeError>();
    assert_send_sync::<crate::opq::Combination>();
    assert_send_sync::<crate::opq_based::SolveArtifacts>();
    assert_send_sync::<crate::hetero::ThresholdBucket>();
    assert_send_sync::<Box<dyn DecompositionSolver + Send + Sync>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for a in Algorithm::ALL {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
        assert_eq!("OPQ_Based".parse::<Algorithm>().unwrap(), Algorithm::OpqBased);
        assert!("simplex".parse::<Algorithm>().is_err());
    }

    #[test]
    fn parsing_is_case_insensitive() {
        for (raw, expect) in [
            ("GREEDY", Algorithm::Greedy),
            ("Opq-Based", Algorithm::OpqBased),
            ("OPQ_EXTENDED", Algorithm::OpqExtended),
            ("  baseline ", Algorithm::Baseline),
        ] {
            assert_eq!(raw.parse::<Algorithm>().unwrap(), expect, "{raw}");
        }
    }

    #[test]
    fn unknown_algorithm_error_lists_every_valid_name() {
        let err = "simplex".parse::<Algorithm>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`simplex`"), "{msg}");
        for a in Algorithm::ALL {
            assert!(msg.contains(a.name()), "missing {a} in: {msg}");
        }
    }

    #[test]
    fn solver_names_match_enum_spirit() {
        for a in Algorithm::ALL {
            let s = a.solver();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn every_algorithm_solves_a_small_homogeneous_instance() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        for a in Algorithm::ALL {
            let plan = a.solve(&w, &bins).unwrap_or_else(|e| panic!("{a}: {e}"));
            let audit = plan.validate(&w, &bins).unwrap();
            assert!(audit.feasible, "{a} produced an infeasible plan");
        }
    }

    #[test]
    fn heterogeneous_support_is_reported_accurately() {
        let bins = BinSet::paper_example();
        // t_max = 0.75 keeps the instance relaxed (every bin confidence in
        // the paper menu is >= 0.8), so even the Relaxed solver accepts it.
        let w = Workload::heterogeneous(vec![0.5, 0.75]).unwrap();
        for a in Algorithm::ALL {
            let s = a.solver();
            let result = s.solve(&w, &bins);
            if s.supports_heterogeneous() {
                let plan = result.unwrap_or_else(|e| panic!("{a}: {e}"));
                let audit = plan.validate(&w, &bins).unwrap();
                assert!(audit.feasible, "{a} infeasible");
            } else {
                assert!(matches!(
                    result,
                    Err(SladeError::HeterogeneousUnsupported { .. })
                ));
            }
        }
    }
}
