//! The common solver interface and the algorithm registry.
//!
//! Every decomposition algorithm in this crate implements
//! [`DecompositionSolver`] plus the two-phase [`PreparedSolver`] pipeline;
//! [`Algorithm`] is the closed enumeration used to select one by name (CLI
//! flags, benchmark sweeps, config files).
//!
//! ## The two-phase pipeline
//!
//! Most of a solver's work is a function of `(BinSet, θ)` alone, not of the
//! workload size `n`: OPQ enumeration, the group DP, the greedy's
//! cost-effectiveness ladder, the baseline's column scaffolding. The
//! [`PreparedSolver`] contract splits every solver accordingly:
//!
//! * [`prepare`](PreparedSolver::prepare) runs the instance-independent part
//!   once and returns shareable [`SolveArtifacts`] behind an `Arc`;
//! * [`solve_with`](PreparedSolver::solve_with) plans one workload from
//!   those artifacts, **byte-identically** to what the one-shot
//!   [`solve`](DecompositionSolver::solve) would produce — the invariant
//!   every implementation pins in tests;
//! * [`fingerprint_knobs`](PreparedSolver::fingerprint_knobs) reports the
//!   configuration values that shape the artifacts, so cache keys
//!   ([`Fingerprint`](crate::fingerprint::Fingerprint)) are derived from the
//!   same impl that builds the artifacts and can never drift from it.
//!
//! Solvers whose work has no reusable prefix ([`ExactSolver`], [`Relaxed`])
//! fall back to the trait's trivial pass-through defaults.

use crate::baseline::Baseline;
use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::exact::ExactSolver;
use crate::fingerprint::KnobSink;
use crate::greedy::Greedy;
use crate::hetero::OpqExtended;
use crate::opq_based::OpqBased;
use crate::plan::DecompositionPlan;
use crate::relaxed::Relaxed;
use crate::task::Workload;
use std::any::Any;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A task-decomposition algorithm: turns an instance into a
/// [`DecompositionPlan`].
///
/// Implementations must be deterministic for a fixed configuration (the
/// randomized [`Baseline`] carries its seed in its config) and must return
/// plans that pass [`DecompositionPlan::validate`] structurally; feasibility
/// of the result is part of each solver's contract and is asserted by the
/// crate's tests.
pub trait DecompositionSolver {
    /// Stable, human-readable solver name (also stamped on produced plans).
    fn name(&self) -> &'static str;

    /// Whether per-task thresholds are supported; solvers returning `false`
    /// answer heterogeneous workloads with
    /// [`SladeError::HeterogeneousUnsupported`].
    fn supports_heterogeneous(&self) -> bool {
        true
    }

    /// Decomposes `workload` over the bin menu `bins`.
    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError>;
}

/// Workload-independent state computed by [`PreparedSolver::prepare`] for
/// one `(BinSet, θ)` pair, shared across solves behind an `Arc`.
///
/// Implementations are plain owned data (`Send + Sync`) so caches can hand
/// them to worker threads; `as_any` lets each solver's `solve_with` downcast
/// back to its own concrete artifact type.
pub trait SolveArtifacts: Any + Send + Sync + fmt::Debug {
    /// The transformed threshold the artifacts were prepared for.
    fn theta(&self) -> f64;

    /// The artifacts as [`Any`], for solver-side downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Whether caching these artifacts buys anything. Pass-through solvers
    /// return `false` so caches need not spend entries on empty state.
    fn cacheable(&self) -> bool {
        true
    }
}

/// The artifacts of a solver with no reusable prepare step: just the θ the
/// prepare was asked for. Returned by [`PreparedSolver::prepare`]'s default
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassThroughArtifacts {
    theta: f64,
}

impl PassThroughArtifacts {
    /// Pass-through artifacts for transformed threshold `theta`.
    pub fn new(theta: f64) -> Self {
        PassThroughArtifacts { theta }
    }
}

impl SolveArtifacts for PassThroughArtifacts {
    fn theta(&self) -> f64 {
        self.theta
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn cacheable(&self) -> bool {
        false
    }
}

/// Downcasts `artifacts` to the concrete type `solver` expects, or reports
/// an [`SladeError::ArtifactMismatch`] naming both sides.
pub fn expect_artifacts<'a, T: SolveArtifacts>(
    solver: &'static str,
    artifacts: &'a dyn SolveArtifacts,
) -> Result<&'a T, SladeError> {
    artifacts
        .as_any()
        .downcast_ref::<T>()
        .ok_or_else(|| SladeError::ArtifactMismatch {
            solver,
            // Deliberately NOT `{artifacts:?}`: an OPQ artifact set debugs
            // to its full pool and DP tables — far too much for an error.
            detail: format!(
                "expected {}, got foreign artifacts prepared for θ = {}",
                std::any::type_name::<T>(),
                artifacts.theta()
            ),
        })
}

/// The two-phase solve pipeline: an instance-independent `prepare` step
/// producing shareable [`SolveArtifacts`], plus a per-workload `solve_with`
/// step. See the module docs for the contract; the defaults implement the
/// trivial pass-through used by solvers without a reusable prefix.
pub trait PreparedSolver: DecompositionSolver {
    /// Computes the workload-independent artifacts for `bins` at transformed
    /// threshold `theta` — the expensive part of
    /// [`solve`](DecompositionSolver::solve) that repeated `(BinSet, θ)`
    /// pairs should pay only once.
    fn prepare(&self, bins: &BinSet, theta: f64) -> Result<Arc<dyn SolveArtifacts>, SladeError> {
        let _ = bins;
        Ok(Arc::new(PassThroughArtifacts::new(theta)))
    }

    /// Plans `workload` from artifacts this solver's
    /// [`prepare`](PreparedSolver::prepare) produced (on the same
    /// configuration, bin set, and a compatible θ — the caller's contract,
    /// policed by downcast/θ checks where it matters).
    ///
    /// **Identity invariant:** the plan is byte-identical to what
    /// [`solve`](DecompositionSolver::solve) returns for the same inputs.
    fn solve_with(
        &self,
        artifacts: &dyn SolveArtifacts,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        expect_artifacts::<PassThroughArtifacts>(self.name(), artifacts)?;
        self.solve(workload, bins)
    }

    /// Writes every configuration knob that shapes this solver's artifacts
    /// into `sink` (and nothing that only shapes the per-workload solve
    /// step, e.g. rounding seeds). Cache keys hash these words, so the key
    /// material is defined by the same impl that builds the artifacts.
    fn fingerprint_knobs(&self, sink: &mut KnobSink) {
        let _ = sink;
    }
}

/// The closed set of algorithms shipped by this crate, with their
/// default configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 — cost-effectiveness greedy heuristic.
    Greedy,
    /// Algorithms 2–3 — OPQ-Based solver (homogeneous only).
    OpqBased,
    /// Algorithms 4–5 — OPQ-Extended solver (threshold bucketing).
    OpqExtended,
    /// §4.3 — covering-integer-program baseline (LP + randomized rounding).
    Baseline,
    /// §4.2 — rod-cutting dynamic program for relaxed instances.
    Relaxed,
    /// Brute-force branch-and-bound for tiny validation instances.
    Exact,
}

impl Algorithm {
    /// All algorithms, in documentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Greedy,
        Algorithm::OpqBased,
        Algorithm::OpqExtended,
        Algorithm::Baseline,
        Algorithm::Relaxed,
        Algorithm::Exact,
    ];

    /// The canonical (kebab-case) name, accepted back by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::OpqBased => "opq-based",
            Algorithm::OpqExtended => "opq-extended",
            Algorithm::Baseline => "baseline",
            Algorithm::Relaxed => "relaxed",
            Algorithm::Exact => "exact",
        }
    }

    /// Instantiates the algorithm with its default configuration.
    ///
    /// The box is `Send + Sync`: every solver is plain configuration data,
    /// so instances can be shared with or moved across worker threads (the
    /// `slade-engine` service relies on this). It is a [`PreparedSolver`],
    /// so callers get both the one-shot `solve` and the two-phase
    /// `prepare`/`solve_with` pipeline.
    pub fn solver(self) -> Box<dyn PreparedSolver + Send + Sync> {
        match self {
            Algorithm::Greedy => Box::new(Greedy),
            Algorithm::OpqBased => Box::new(OpqBased::default()),
            Algorithm::OpqExtended => Box::new(OpqExtended::default()),
            Algorithm::Baseline => Box::new(Baseline::default()),
            Algorithm::Relaxed => Box::new(Relaxed),
            Algorithm::Exact => Box::new(ExactSolver::default()),
        }
    }

    /// Convenience: solve with the default configuration.
    pub fn solve(
        self,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        self.solver().solve(workload, bins)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The valid names are derived from Algorithm::ALL so this message
        // can never drift from the registry (names are case-insensitive and
        // `_` is accepted for `-`).
        write!(f, "unknown algorithm `{}`; expected one of: ", self.0)?;
        for (i, a) in Algorithm::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(a.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownAlgorithm {}

impl FromStr for Algorithm {
    type Err = UnknownAlgorithm;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase().replace('_', "-");
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == normalized)
            .ok_or_else(|| UnknownAlgorithm(s.to_string()))
    }
}

// Thread-safety audit: the engine shards solves across worker threads, so
// every type that crosses a thread boundary — solver configurations, the
// data model, plans, and the cacheable artifacts — must be `Send + Sync`.
// These are compile-time assertions; they cost nothing at runtime and break
// the build if a future field (an `Rc`, a raw pointer, a `RefCell`) ever
// removes the auto impls.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Greedy>();
    assert_send_sync::<OpqBased>();
    assert_send_sync::<OpqExtended>();
    assert_send_sync::<Baseline>();
    assert_send_sync::<Relaxed>();
    assert_send_sync::<ExactSolver>();
    assert_send_sync::<Algorithm>();
    assert_send_sync::<BinSet>();
    assert_send_sync::<Workload>();
    assert_send_sync::<DecompositionPlan>();
    assert_send_sync::<SladeError>();
    assert_send_sync::<crate::opq::Combination>();
    assert_send_sync::<crate::opq_based::OpqArtifacts>();
    assert_send_sync::<crate::hetero::ThresholdBucket>();
    assert_send_sync::<PassThroughArtifacts>();
    assert_send_sync::<Box<dyn DecompositionSolver + Send + Sync>>();
    assert_send_sync::<Box<dyn PreparedSolver + Send + Sync>>();
    assert_send_sync::<Arc<dyn SolveArtifacts>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for a in Algorithm::ALL {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
        assert_eq!(
            "OPQ_Based".parse::<Algorithm>().unwrap(),
            Algorithm::OpqBased
        );
        assert!("simplex".parse::<Algorithm>().is_err());
    }

    #[test]
    fn parsing_is_case_insensitive() {
        for (raw, expect) in [
            ("GREEDY", Algorithm::Greedy),
            ("Opq-Based", Algorithm::OpqBased),
            ("OPQ_EXTENDED", Algorithm::OpqExtended),
            ("  baseline ", Algorithm::Baseline),
        ] {
            assert_eq!(raw.parse::<Algorithm>().unwrap(), expect, "{raw}");
        }
    }

    #[test]
    fn unknown_algorithm_error_lists_every_valid_name() {
        let err = "simplex".parse::<Algorithm>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`simplex`"), "{msg}");
        for a in Algorithm::ALL {
            assert!(msg.contains(a.name()), "missing {a} in: {msg}");
        }
    }

    #[test]
    fn solver_names_match_enum_spirit() {
        for a in Algorithm::ALL {
            let s = a.solver();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn every_algorithm_solves_a_small_homogeneous_instance() {
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        for a in Algorithm::ALL {
            let plan = a.solve(&w, &bins).unwrap_or_else(|e| panic!("{a}: {e}"));
            let audit = plan.validate(&w, &bins).unwrap();
            assert!(audit.feasible, "{a} produced an infeasible plan");
        }
    }

    #[test]
    fn every_algorithm_round_trips_through_prepare_and_solve_with() {
        // t = 0.8 keeps the instance relaxed (every paper-menu confidence is
        // >= 0.8), so even the Relaxed solver participates.
        let bins = BinSet::paper_example();
        let theta = crate::reliability::theta(0.8);
        let w = Workload::homogeneous(5, 0.8).unwrap();
        for a in Algorithm::ALL {
            let s = a.solver();
            let artifacts = s
                .prepare(&bins, theta)
                .unwrap_or_else(|e| panic!("{a}: {e}"));
            assert_eq!(artifacts.theta().to_bits(), theta.to_bits(), "{a}");
            let two_phase = s.solve_with(artifacts.as_ref(), &w, &bins).unwrap();
            let one_shot = s.solve(&w, &bins).unwrap();
            assert_eq!(two_phase, one_shot, "{a} two-phase plan diverged");
        }
    }

    #[test]
    fn artifacts_of_one_solver_are_rejected_by_another() {
        let bins = BinSet::paper_example();
        let theta = crate::reliability::theta(0.9);
        let w = Workload::homogeneous(3, 0.9).unwrap();
        let pass_through = Arc::new(PassThroughArtifacts::new(theta));
        let opq = Algorithm::OpqBased.solver();
        assert!(matches!(
            opq.solve_with(pass_through.as_ref(), &w, &bins),
            Err(SladeError::ArtifactMismatch {
                solver: "OpqBased",
                ..
            })
        ));
        // And the reverse: real OPQ artifacts handed to a pass-through
        // solver are equally mismatched.
        let opq_artifacts = opq.prepare(&bins, theta).unwrap();
        let exact = Algorithm::Exact.solver();
        assert!(matches!(
            exact.solve_with(opq_artifacts.as_ref(), &w, &bins),
            Err(SladeError::ArtifactMismatch {
                solver: "Exact",
                ..
            })
        ));
    }

    #[test]
    fn artifacts_prepared_for_another_bin_menu_are_rejected() {
        // Artifacts carry bin indices (OPQ pool, greedy ladder), so serving
        // a different menu must fail with ArtifactMismatch, not misapply
        // indices or silently change the plan.
        let bins_a = BinSet::paper_example();
        let bins_b = BinSet::new([(1, 0.9, 0.1), (4, 0.7, 0.3)]).unwrap();
        let theta = crate::reliability::theta(0.9);
        let w = Workload::homogeneous(5, 0.9).unwrap();
        for a in [
            Algorithm::Greedy,
            Algorithm::OpqBased,
            Algorithm::OpqExtended,
            Algorithm::Baseline,
        ] {
            let s = a.solver();
            let artifacts = s.prepare(&bins_a, theta).unwrap();
            assert!(
                matches!(
                    s.solve_with(artifacts.as_ref(), &w, &bins_b),
                    Err(SladeError::ArtifactMismatch { .. })
                ),
                "{a} accepted foreign-menu artifacts"
            );
        }
    }

    #[test]
    fn pass_through_artifacts_are_not_cacheable() {
        let bins = BinSet::paper_example();
        let theta = crate::reliability::theta(0.9);
        for a in [Algorithm::Relaxed, Algorithm::Exact] {
            let artifacts = a.solver().prepare(&bins, theta).unwrap();
            assert!(!artifacts.cacheable(), "{a}");
        }
        for a in [
            Algorithm::Greedy,
            Algorithm::OpqBased,
            Algorithm::OpqExtended,
            Algorithm::Baseline,
        ] {
            let artifacts = a.solver().prepare(&bins, theta).unwrap();
            assert!(artifacts.cacheable(), "{a}");
        }
    }

    #[test]
    fn heterogeneous_support_is_reported_accurately() {
        let bins = BinSet::paper_example();
        // t_max = 0.75 keeps the instance relaxed (every bin confidence in
        // the paper menu is >= 0.8), so even the Relaxed solver accepts it.
        let w = Workload::heterogeneous(vec![0.5, 0.75]).unwrap();
        for a in Algorithm::ALL {
            let s = a.solver();
            let result = s.solve(&w, &bins);
            if s.supports_heterogeneous() {
                let plan = result.unwrap_or_else(|e| panic!("{a}: {e}"));
                let audit = plan.validate(&w, &bins).unwrap();
                assert!(audit.feasible, "{a} infeasible");
            } else {
                assert!(matches!(
                    result,
                    Err(SladeError::HeterogeneousUnsupported { .. })
                ));
            }
        }
    }
}
