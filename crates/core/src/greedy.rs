//! The greedy decomposition heuristic (Algorithm 1 of the paper).
//!
//! A set-cover-style heuristic that works for both homogeneous and
//! heterogeneous workloads and carries no approximation guarantee: while any
//! task is short of its threshold, post the single bin with the best
//! *cost-effectiveness* — the bin type `l` whose cost `c_l`, divided by the
//! useful weight it delivers to the `l` currently most-deprived tasks
//! (`Σ min(w_l, residual_i)` over the top-`l` residuals), is smallest — and
//! assign exactly those tasks to it.
//!
//! Fast in practice and the reference point the paper's experiments compare
//! against; OPQ-Based/OPQ-Extended dominate it on cost in the homogeneous
//! and heterogeneous settings respectively.
//!
//! ```
//! use slade_core::prelude::*;
//!
//! let bins = BinSet::paper_example();
//! let workload = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86]).unwrap();
//! let plan = Greedy::default().solve(&workload, &bins).unwrap();
//! assert!(plan.validate(&workload, &bins).unwrap().feasible);
//! ```

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::plan::DecompositionPlan;
use crate::reliability::{satisfies, WEIGHT_EPS};
use crate::solver::DecompositionSolver;
use crate::task::{TaskId, Workload};

/// The Algorithm-1 greedy heuristic. Stateless; the unit struct is its own
/// default configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl DecompositionSolver for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        let n = workload.len();
        // Residual transformed demand per task.
        let mut residual: Vec<f64> = workload.thetas().collect();
        // Unsatisfied task ids, kept sorted by residual (descending) lazily.
        let mut open: Vec<TaskId> = (0..n).collect();
        let mut plan = DecompositionPlan::empty(self.name());

        while !open.is_empty() {
            // Most-deprived tasks first; ties by id for determinism.
            open.sort_unstable_by(|&a, &b| {
                residual[b as usize]
                    .partial_cmp(&residual[a as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });

            // Pick the most cost-effective bin type for the current top
            // residuals.
            let mut best: Option<(usize, f64)> = None;
            for (i, b) in bins.bins().iter().enumerate() {
                let take = (b.cardinality() as usize).min(open.len());
                let useful: f64 = open[..take]
                    .iter()
                    .map(|&t| b.weight().min(residual[t as usize]))
                    .sum();
                if useful <= WEIGHT_EPS {
                    continue;
                }
                let ratio = b.cost() / useful;
                if best.map_or(true, |(_, r)| ratio < r) {
                    best = Some((i, ratio));
                }
            }
            // Residuals of open tasks are strictly positive and weights are
            // strictly positive, so some bin is always effective.
            let (i, _) = best.expect("positive residuals admit an effective bin");
            let bin = &bins.bins()[i];
            let take = (bin.cardinality() as usize).min(open.len());
            let members: Vec<TaskId> = open[..take].to_vec();
            for &t in &members {
                residual[t as usize] -= bin.weight();
            }
            plan.push(bin, members);
            open.retain(|&t| !satisfies(0.0, residual[t as usize]));
        }

        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_plans_are_feasible() {
        let bins = BinSet::paper_example();
        for n in [1u32, 4, 17, 100] {
            for t in [0.5, 0.95, 0.999] {
                let w = Workload::homogeneous(n, t).unwrap();
                let plan = Greedy.solve(&w, &bins).unwrap();
                let audit = plan.validate(&w, &bins).unwrap();
                assert!(audit.feasible, "n = {n}, t = {t}");
            }
        }
    }

    #[test]
    fn heterogeneous_plans_are_feasible() {
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86, 0.99, 0.31]).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn single_cheap_wide_bin_is_preferred() {
        // b3 delivers 3 × 1.609 weight units for 0.24 (ratio 0.0497) versus
        // b1's 0.10 / 2.30 = 0.0434 — for t = 0.8 one b1 per task wins on
        // effectiveness only when few tasks remain; with three tasks open the
        // greedy grabs the wide bin first.
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
        // Never more than one bin per task here: θ = 1.609 <= every weight.
        assert!(plan.num_bins() <= 3);
    }

    #[test]
    fn greedy_cost_is_bounded_by_singleton_cover() {
        // Upper-bound sanity: the greedy never exceeds the trivial plan that
        // covers each task with copies of the cheapest single bin.
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(20, 0.95).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        // Trivial plan: 2 × b1 per task = 0.20 each.
        assert!(plan.total_cost() <= 20.0 * 0.20 + 1e-9);
    }

    #[test]
    fn residual_aware_choice_mixes_bin_types() {
        // One straggler with a tall threshold among easy tasks: the greedy
        // must still terminate and satisfy it with stacked bins.
        let bins = BinSet::new([(1, 0.9, 0.1), (3, 0.55, 0.12)]).unwrap();
        let w = Workload::heterogeneous(vec![0.9999, 0.3, 0.3, 0.3]).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }
}
