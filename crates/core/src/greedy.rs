//! The greedy decomposition heuristic (Algorithm 1 of the paper).
//!
//! A set-cover-style heuristic that works for both homogeneous and
//! heterogeneous workloads and carries no approximation guarantee: while any
//! task is short of its threshold, post the single bin with the best
//! *cost-effectiveness* — the bin type `l` whose cost `c_l`, divided by the
//! useful weight it delivers to the `l` currently most-deprived tasks
//! (`Σ min(w_l, residual_i)` over the top-`l` residuals), is smallest — and
//! assign exactly those tasks to it.
//!
//! The top-`l` residuals come from a *lazy max-heap* with versioned entries:
//! each open task keeps exactly one live entry keyed by its current residual
//! (descending, ties by ascending id); superseded entries stay in the heap
//! and are discarded when popped. One round pops `O(l_max)` entries and
//! pushes back the untouched ones, so a full solve is
//! `O((n + A + rounds·l_max) log n)` for `A` total task-to-bin assignments —
//! versus the `O(n log n)` *per round* of the naive re-sort it replaced
//! (DESIGN.md scaling seam #1). The pop order equals the old sort order, so
//! plans are bit-for-bit identical to the previous implementation.
//!
//! Fast in practice and the reference point the paper's experiments compare
//! against; OPQ-Based/OPQ-Extended dominate it on cost in the homogeneous
//! and heterogeneous settings respectively.
//!
//! ```
//! use slade_core::prelude::*;
//!
//! let bins = BinSet::paper_example();
//! let workload = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86]).unwrap();
//! let plan = Greedy::default().solve(&workload, &bins).unwrap();
//! assert!(plan.validate(&workload, &bins).unwrap().feasible);
//! ```

use crate::bin_set::BinSet;
use crate::error::SladeError;
use crate::plan::DecompositionPlan;
use crate::reliability::{satisfies, WEIGHT_EPS};
use crate::solver::{expect_artifacts, DecompositionSolver, PreparedSolver, SolveArtifacts};
use crate::task::{TaskId, Workload};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The Algorithm-1 greedy heuristic. Stateless; the unit struct is its own
/// default configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

/// Upper bound on precomputed ladder rungs; extreme `θ / min-weight` ratios
/// stop early (deeper levels just fall back to the per-round scan).
const LADDER_CAP: usize = 4_096;

/// The greedy's reusable artifacts for one `(BinSet, θ)`: the transformed
/// threshold plus the *uniform-level ladder* — for every residual level `r`
/// reachable from `θ` by repeatedly applying the most cost-effective bin,
/// the precomputed winner of the per-round bin scan when at least
/// `max_cardinality` open tasks all sit at residual `r`.
///
/// In a homogeneous solve every interior round (all popped tasks at the same
/// residual, enough tasks open) is exactly that situation, so
/// [`Greedy::solve_with`] answers it from the ladder instead of rescanning
/// the menu — and seeds the residual vector from the cached `θ` instead of
/// recomputing `-ln(1-t)` per task. Rounds that mix residual levels (bucket
/// boundaries, the endgame, heterogeneous workloads) take the ordinary scan,
/// so plans stay bit-for-bit identical to [`Greedy::solve`]: the ladder is
/// consulted only when its precondition — identical inputs to the scan —
/// holds by bit comparison.
#[derive(Debug, Clone)]
pub struct GreedyArtifacts {
    theta: f64,
    /// Signature of the bin menu the ladder's bin indices refer to;
    /// `solve_with` rejects a different menu.
    bins_signature: u64,
    /// `(residual bit pattern, winning bin index)` per uniform level, in
    /// descent order from `θ`.
    ladder: Vec<(u64, usize)>,
}

impl GreedyArtifacts {
    /// The precomputed scan winner for a uniform top at `residual_bits`.
    ///
    /// The ladder descends strictly (each rung subtracts a positive bin
    /// weight from a positive residual), and positive `f64` bit patterns
    /// order like the values, so this is a binary search over the
    /// descending `bits` — `O(log rungs)` per round even for deep ladders.
    fn lookup(&self, residual_bits: u64) -> Option<usize> {
        self.ladder
            .binary_search_by(|&(bits, _)| residual_bits.cmp(&bits))
            .ok()
            .map(|i| self.ladder[i].1)
    }

    /// Number of precomputed uniform levels (test hook).
    pub fn rungs(&self) -> usize {
        self.ladder.len()
    }
}

impl SolveArtifacts for GreedyArtifacts {
    fn theta(&self) -> f64 {
        self.theta
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The per-round bin election: the bin minimizing `c / Σ_{j<min(l,count)}
/// min(w, residual(j))`, ties to the earlier menu index; `None` when no bin
/// is effective. This is the ONE copy of the scan — both the in-solve round
/// (per-entry residuals) and the ladder precompute (uniform residual) call
/// it, so the float operations are identical by construction and the
/// ladder's precomputed winner is bit-for-bit the winner a live scan would
/// elect.
fn scan_bins(bins: &BinSet, count: usize, residual: impl Fn(usize) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, b) in bins.bins().iter().enumerate() {
        let take = (b.cardinality() as usize).min(count);
        let useful: f64 = (0..take).map(|j| b.weight().min(residual(j))).sum();
        if useful <= WEIGHT_EPS {
            continue;
        }
        let ratio = b.cost() / useful;
        if best.map_or(true, |(_, r)| ratio < r) {
            best = Some((i, ratio));
        }
    }
    best.map(|(i, _)| i)
}

/// One heap entry: a task at the residual it had when pushed. `version`
/// invalidates superseded entries (lazy deletion): an entry is live iff its
/// version matches the task's current one.
#[derive(Debug)]
struct Entry {
    residual: f64,
    task: TaskId,
    version: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.residual == other.residual && self.task == other.task
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: larger residual pops first; ties pop the smaller id, so
        // the pop order matches a sort by (residual desc, id asc). Residuals
        // are finite, so partial_cmp never actually falls back.
        self.residual
            .partial_cmp(&other.residual)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.task.cmp(&self.task))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Greedy {
    /// The shared greedy loop behind [`Greedy::solve`] (no artifacts) and
    /// [`Greedy::solve_with`] (ladder-seeded). The ladder only short-circuits
    /// rounds whose scan inputs provably (by bit comparison) match the
    /// precomputed uniform level, so both paths emit identical plans.
    fn run(
        &self,
        workload: &Workload,
        bins: &BinSet,
        artifacts: Option<&GreedyArtifacts>,
    ) -> DecompositionPlan {
        let n = workload.len();
        // Residual transformed demand per task, seeded from the cached θ
        // when it bit-matches the workload's (same value, n - 1 fewer logs).
        let mut residual: Vec<f64> = match artifacts {
            Some(arts)
                if workload.is_homogeneous()
                    && workload.theta(0).to_bits() == arts.theta.to_bits() =>
            {
                vec![arts.theta; n as usize]
            }
            _ => workload.thetas().collect(),
        };
        // Current entry version per task; heap entries with an older version
        // are stale and dropped when popped.
        let mut version: Vec<u32> = vec![0; n as usize];
        let mut open_count = n as usize;
        let mut heap: BinaryHeap<Entry> = (0..n)
            .map(|t| Entry {
                residual: residual[t as usize],
                task: t,
                version: 0,
            })
            .collect();
        let max_card = bins.max_cardinality() as usize;
        let mut top: Vec<Entry> = Vec::with_capacity(max_card);
        let mut plan = DecompositionPlan::empty(self.name());

        while open_count > 0 {
            // Most-deprived open tasks first; ties by id for determinism.
            top.clear();
            while top.len() < max_card.min(open_count) {
                let entry = heap.pop().expect("every open task has a live heap entry");
                if entry.version != version[entry.task as usize] {
                    continue; // superseded by a later residual update
                }
                top.push(entry);
            }

            // Interior fast path: a full top whose residuals are all
            // bit-equal is exactly the situation the ladder precomputed —
            // the scan's winner is already known.
            let precomputed = artifacts.and_then(|arts| {
                if top.len() == max_card {
                    let bits = top[0].residual.to_bits();
                    if top.iter().all(|e| e.residual.to_bits() == bits) {
                        return arts.lookup(bits);
                    }
                }
                None
            });

            // Pick the most cost-effective bin type for the current top
            // residuals.
            let i = match precomputed {
                Some(i) => i,
                // Residuals of open tasks are strictly positive and weights
                // are strictly positive, so some bin is always effective.
                None => scan_bins(bins, top.len(), |j| top[j].residual)
                    .expect("positive residuals admit an effective bin"),
            };
            let bin = &bins.bins()[i];
            let take = (bin.cardinality() as usize).min(top.len());
            let members: Vec<TaskId> = top[..take].iter().map(|e| e.task).collect();
            for &t in &members {
                let r = residual[t as usize] - bin.weight();
                residual[t as usize] = r;
                version[t as usize] += 1;
                if satisfies(0.0, r) {
                    open_count -= 1; // done; its stale entries die lazily
                } else {
                    heap.push(Entry {
                        residual: r,
                        task: t,
                        version: version[t as usize],
                    });
                }
            }
            // Untouched popped entries are still live; put them back as-is.
            for entry in top.drain(take..) {
                heap.push(entry);
            }
            plan.push(bin, members);
        }

        plan
    }
}

impl DecompositionSolver for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        Ok(self.run(workload, bins, None))
    }
}

impl PreparedSolver for Greedy {
    fn prepare(&self, bins: &BinSet, theta: f64) -> Result<Arc<dyn SolveArtifacts>, SladeError> {
        let max_card = bins.max_cardinality() as usize;
        let mut ladder = Vec::new();
        let mut r = theta;
        while !satisfies(0.0, r) && ladder.len() < LADDER_CAP {
            let Some(bin) = scan_bins(bins, max_card, |_| r) else {
                break; // no effective bin at this level: let solves scan
            };
            debug_assert!(
                ladder.last().map_or(true, |&(bits, _)| bits > r.to_bits()),
                "ladder must descend strictly (lookup binary-searches it)"
            );
            ladder.push((r.to_bits(), bin));
            let next = r - bins.bins()[bin].weight();
            if next.to_bits() == r.to_bits() {
                break; // denormal-small weight: no progress, stop the walk
            }
            r = next;
        }
        Ok(Arc::new(GreedyArtifacts {
            theta,
            bins_signature: bins.signature(),
            ladder,
        }))
    }

    fn solve_with(
        &self,
        artifacts: &dyn SolveArtifacts,
        workload: &Workload,
        bins: &BinSet,
    ) -> Result<DecompositionPlan, SladeError> {
        let artifacts = expect_artifacts::<GreedyArtifacts>(self.name(), artifacts)?;
        if artifacts.bins_signature != bins.signature() {
            return Err(SladeError::ArtifactMismatch {
                solver: self.name(),
                detail: "artifacts were prepared for a different bin menu".into(),
            });
        }
        Ok(self.run(workload, bins, Some(artifacts)))
    }

    // No knobs: the greedy is a unit struct, so `(BinSet, θ)` alone
    // identifies its artifacts.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The pre-heap reference implementation: full re-sort of the open list
    /// every round. Kept verbatim so the lazy-heap rework is pinned to
    /// produce bit-for-bit identical plans.
    fn reference_solve(workload: &Workload, bins: &BinSet) -> DecompositionPlan {
        let n = workload.len();
        let mut residual: Vec<f64> = workload.thetas().collect();
        let mut open: Vec<TaskId> = (0..n).collect();
        let mut plan = DecompositionPlan::empty("Greedy");
        while !open.is_empty() {
            open.sort_unstable_by(|&a, &b| {
                residual[b as usize]
                    .partial_cmp(&residual[a as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });
            let mut best: Option<(usize, f64)> = None;
            for (i, b) in bins.bins().iter().enumerate() {
                let take = (b.cardinality() as usize).min(open.len());
                let useful: f64 = open[..take]
                    .iter()
                    .map(|&t| b.weight().min(residual[t as usize]))
                    .sum();
                if useful <= WEIGHT_EPS {
                    continue;
                }
                let ratio = b.cost() / useful;
                if best.map_or(true, |(_, r)| ratio < r) {
                    best = Some((i, ratio));
                }
            }
            let (i, _) = best.expect("positive residuals admit an effective bin");
            let bin = &bins.bins()[i];
            let take = (bin.cardinality() as usize).min(open.len());
            let members: Vec<TaskId> = open[..take].to_vec();
            for &t in &members {
                residual[t as usize] -= bin.weight();
            }
            plan.push(bin, members);
            open.retain(|&t| !satisfies(0.0, residual[t as usize]));
        }
        plan
    }

    #[test]
    fn lazy_heap_matches_resort_reference_exactly() {
        let menus = [
            BinSet::paper_example(),
            BinSet::new([(1, 0.9, 0.1), (3, 0.55, 0.12), (5, 0.6, 0.22)]).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0x9eed);
        for bins in &menus {
            for n in [1u32, 2, 7, 40, 300] {
                // Homogeneous (many residual ties) and heterogeneous spreads.
                let homo = Workload::homogeneous(n, 0.95).unwrap();
                assert_eq!(
                    Greedy.solve(&homo, bins).unwrap(),
                    reference_solve(&homo, bins)
                );
                let thresholds: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..0.995)).collect();
                let hetero = Workload::heterogeneous(thresholds).unwrap();
                assert_eq!(
                    Greedy.solve(&hetero, bins).unwrap(),
                    reference_solve(&hetero, bins),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn prepared_pipeline_matches_one_shot_exactly() {
        let menus = [
            BinSet::paper_example(),
            BinSet::new([(1, 0.9, 0.1), (3, 0.55, 0.12), (5, 0.6, 0.22)]).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0x1adde);
        for bins in &menus {
            for n in [1u32, 2, 7, 40, 300] {
                for t in [0.5, 0.95, 0.999] {
                    let w = Workload::homogeneous(n, t).unwrap();
                    let artifacts = Greedy.prepare(bins, w.theta(0)).unwrap();
                    let two_phase = Greedy.solve_with(artifacts.as_ref(), &w, bins).unwrap();
                    assert_eq!(
                        two_phase,
                        Greedy.solve(&w, bins).unwrap(),
                        "n = {n}, t = {t}"
                    );
                }
                // Heterogeneous workloads with artifacts anchored at θ_max:
                // the ladder rarely fires, but plans must stay identical.
                let thresholds: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..0.995)).collect();
                let w = Workload::heterogeneous(thresholds).unwrap();
                let theta_max = w.thetas().fold(f64::MIN, f64::max);
                let artifacts = Greedy.prepare(bins, theta_max).unwrap();
                let two_phase = Greedy.solve_with(artifacts.as_ref(), &w, bins).unwrap();
                assert_eq!(two_phase, Greedy.solve(&w, bins).unwrap(), "n = {n}");
            }
        }
    }

    #[test]
    fn ladder_walks_the_uniform_descent() {
        // t = 0.95 over the paper menu: level θ(0.95) elects b1 (ratio
        // 0.0434 beats b2's 0.0474 and b3's 0.0497), then level
        // θ - w(0.9) = 0.693 elects b3 (0.115 beats b1's 0.144 and b2's
        // 0.130), after which one b3 weight clears the residual.
        let bins = BinSet::paper_example();
        let theta = crate::reliability::theta(0.95);
        let artifacts = Greedy.prepare(&bins, theta).unwrap();
        let arts = artifacts
            .as_any()
            .downcast_ref::<GreedyArtifacts>()
            .unwrap();
        assert_eq!(arts.rungs(), 2);
        assert_eq!(arts.lookup(theta.to_bits()), Some(0));
        let level1 = theta - bins.bins()[0].weight();
        assert_eq!(arts.lookup(level1.to_bits()), Some(2));
        assert_eq!(arts.lookup(1.0f64.to_bits()), None);
    }

    #[test]
    fn homogeneous_plans_are_feasible() {
        let bins = BinSet::paper_example();
        for n in [1u32, 4, 17, 100] {
            for t in [0.5, 0.95, 0.999] {
                let w = Workload::homogeneous(n, t).unwrap();
                let plan = Greedy.solve(&w, &bins).unwrap();
                let audit = plan.validate(&w, &bins).unwrap();
                assert!(audit.feasible, "n = {n}, t = {t}");
            }
        }
    }

    #[test]
    fn heterogeneous_plans_are_feasible() {
        let bins = BinSet::paper_example();
        let w = Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86, 0.99, 0.31]).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }

    #[test]
    fn single_cheap_wide_bin_is_preferred() {
        // b3 delivers 3 × 1.609 weight units for 0.24 (ratio 0.0497) versus
        // b1's 0.10 / 2.30 = 0.0434 — for t = 0.8 one b1 per task wins on
        // effectiveness only when few tasks remain; with three tasks open the
        // greedy grabs the wide bin first.
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(3, 0.8).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
        // Never more than one bin per task here: θ = 1.609 <= every weight.
        assert!(plan.num_bins() <= 3);
    }

    #[test]
    fn greedy_cost_is_bounded_by_singleton_cover() {
        // Upper-bound sanity: the greedy never exceeds the trivial plan that
        // covers each task with copies of the cheapest single bin.
        let bins = BinSet::paper_example();
        let w = Workload::homogeneous(20, 0.95).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        // Trivial plan: 2 × b1 per task = 0.20 each.
        assert!(plan.total_cost() <= 20.0 * 0.20 + 1e-9);
    }

    #[test]
    fn residual_aware_choice_mixes_bin_types() {
        // One straggler with a tall threshold among easy tasks: the greedy
        // must still terminate and satisfy it with stacked bins.
        let bins = BinSet::new([(1, 0.9, 0.1), (3, 0.55, 0.12)]).unwrap();
        let w = Workload::heterogeneous(vec![0.9999, 0.3, 0.3, 0.3]).unwrap();
        let plan = Greedy.solve(&w, &bins).unwrap();
        assert!(plan.validate(&w, &bins).unwrap().feasible);
    }
}
