//! The artifact cache: a sharded, lock-free-on-the-read-path table of
//! `Arc`-shared solve artifacts with single-flight cold misses, plus the
//! original mutex LRU kept selectable for A/B benchmarking.

use slade_core::fingerprint::Fingerprint;
use slade_core::solver::{Algorithm, SolveArtifacts};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// The cache key: which algorithm's `prepare` ran, over which
/// [`Fingerprint`] (bin-menu signature, θ bits, and the solver's own knob
/// digest). One cache serves every request type; the `Algorithm` component
/// keeps two solvers' artifacts apart even when their knob words coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The algorithm whose [`prepare`](slade_core::solver::PreparedSolver)
    /// produced (or will produce) the entry.
    pub algorithm: Algorithm,
    /// The canonical identity of the prepare computation.
    pub fingerprint: Fingerprint,
}

/// Which concurrent table implementation an [`ArtifactCache`] runs.
///
/// The default, [`CacheImpl::Sharded`], is the scalable design: warm hits
/// touch only their shard's `RwLock` read half plus relaxed atomics, so N
/// workers hitting the cache never serialize behind one process-global
/// mutex. [`CacheImpl::MutexLru`] is the engine's original single
/// `Mutex<HashMap + BTreeMap>` exact LRU, kept selectable (engine config,
/// `slade serve --cache-impl`) for honest A/B comparison — the same
/// precedent as [`SchedulerMode`](crate::SchedulerMode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheImpl {
    /// Fixed-array sharded table, per-entry atomic recency stamps,
    /// shard-local approximate-LRU eviction, single-flight cold misses.
    #[default]
    Sharded,
    /// One mutex around an exact-LRU map — the pre-sharding implementation.
    MutexLru,
}

impl CacheImpl {
    /// The flag spelling, e.g. for `--cache-impl`.
    pub fn name(self) -> &'static str {
        match self {
            CacheImpl::Sharded => "sharded",
            CacheImpl::MutexLru => "mutex-lru",
        }
    }
}

impl std::str::FromStr for CacheImpl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sharded" => Ok(CacheImpl::Sharded),
            "mutex-lru" => Ok(CacheImpl::MutexLru),
            other => Err(format!(
                "unknown cache impl `{other}` (expected `sharded` or `mutex-lru`)"
            )),
        }
    }
}

/// Shards of the [`CacheImpl::Sharded`] table. A small fixed power of two:
/// shard choice is the fingerprint digest's low bits, and 16 independent
/// locks already out-number the worker pool on every deployment target.
pub const CACHE_SHARDS: usize = 16;

/// A thread-safe cache from [`CacheKey`] to type-erased [`SolveArtifacts`],
/// shared by every worker of an [`Engine`].
///
/// Keys hash by the fingerprint's 64-bit digest but compare by full key
/// material (`Fingerprint`'s `Eq` checks the bin menu by content), so an FNV
/// digest collision between two distinct instances lands in the same shard
/// and hash bucket yet can never alias entries — the `HashMap` probe rejects
/// the mismatched key and the second instance simply computes its own
/// artifacts.
///
/// ## The sharded design (default)
///
/// * **Warm hits take no process-global lock.** The shard is chosen from
///   the fingerprint digest, the lookup takes that shard's `RwLock` *read*
///   half (shared — readers never serialize each other), and recency is a
///   relaxed store into the entry's atomic access stamp. Nothing on the hit
///   path writes to memory any other shard's hits touch, except the sharded
///   global clock and the stats counters — all relaxed atomics.
/// * **Eviction is approximate LRU, off the hot path.** Only an inserting
///   thread evicts, only within its own shard, by scanning that shard's
///   entries for the coldest stamp while the *global* (relaxed-atomic)
///   entry count exceeds capacity. Hits never rewrite an ordering
///   structure. A shard holding nothing but the fresh entry yields no
///   victim, so occupancy may overshoot capacity by up to
///   [`CACHE_SHARDS`]` − 1` entries when residents spread one-per-shard —
///   a documented approximation, not a leak (any shard reaching two
///   entries while over capacity sheds its coldest). Evicting an
///   approximately-coldest entry instead of the globally-coldest one can
///   cost an extra `prepare` later; it can never change plan bytes,
///   because artifacts for equal fingerprints are interchangeable by the
///   determinism of `prepare`.
/// * **Cold misses are single-flight.** The first worker to miss a key
///   becomes its *leader* and computes; workers racing the same key park on
///   a per-key flight entry and adopt the leader's artifacts instead of
///   burning N−1 redundant `prepare`s. Any winner is interchangeable —
///   `prepare` is a pure function of the key — so warm==cold byte-identity
///   is preserved no matter which racer leads. A leader's *error* releases
///   the waiters to compute individually (errors pass through, nothing is
///   cached, and no caller inherits another's failure context).
///
/// Values are `Arc`ed, so a hit hands out a shared reference while the entry
/// may be concurrently evicted — readers are never invalidated.
///
/// Artifacts reporting [`SolveArtifacts::cacheable`]` == false`
/// (pass-through solvers) are computed but never inserted, so trivial
/// entries cannot evict expensive ones; under single-flight the leader's
/// value is still handed to the waiters of that one race.
///
/// A capacity of `0` disables caching (every lookup computes); the engine
/// uses that for apples-to-apples cold benchmarks.
///
/// [`Engine`]: crate::Engine
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Resident entries, kept relaxed-atomically current by insert/evict so
    /// [`ArtifactCache::stats`] and [`ArtifactCache::len`] never take any
    /// table lock (the `stats`/`metrics` verbs must not contend with the
    /// solve path).
    entries: AtomicU64,
    evictions: AtomicU64,
    singleflight_waits: AtomicU64,
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Sharded {
        shards: Vec<Shard>,
        /// Monotone logical clock stamping every access. Relaxed: ties or
        /// slightly stale stamps only blur *which* cold entry eviction
        /// picks, never correctness.
        clock: AtomicU64,
    },
    MutexLru(Mutex<LruInner>),
}

/// One shard of the sharded table. The `map` lock is the only thing a warm
/// hit takes (read half); `flights` is a cold-miss-only side table.
#[derive(Debug, Default)]
struct Shard {
    map: RwLock<HashMap<CacheKey, ShardedSlot>>,
    /// In-flight cold computations, keyed like `map`. Only missing lookups
    /// touch this mutex, so it cannot contend with warm hits.
    flights: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

#[derive(Debug)]
struct ShardedSlot {
    artifacts: Arc<dyn SolveArtifacts>,
    /// Last-access stamp from the backend clock, stored relaxed on every
    /// hit — the entire recency bookkeeping of the hot path.
    stamp: AtomicU64,
}

/// A single-flight rendezvous: the leader computes, waiters park here.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum FlightState {
    Pending,
    /// The leader's artifacts (published whether or not they were
    /// cacheable — the racers of this one key still share the value).
    Ready(Arc<dyn SolveArtifacts>),
    /// The leader's compute failed; waiters fall back to computing
    /// individually, so each caller sees its own error.
    Failed,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        })
    }

    /// Publishes the outcome and wakes every waiter.
    fn finish(&self, state: FlightState) {
        *lock(&self.state) = state;
        self.done.notify_all();
    }

    /// Parks until the leader publishes.
    fn wait(&self) -> FlightState {
        let mut state = lock(&self.state);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .done
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                resolved => return resolved.clone(),
            }
        }
    }
}

#[derive(Debug)]
struct LruInner {
    map: HashMap<CacheKey, LruSlot>,
    /// Recency index: `last_used` stamp → key, mirroring `map` one-to-one
    /// (stamps are unique — the clock only ticks under the lock), so
    /// eviction pops the smallest stamp in `O(log entries)` instead of
    /// scanning the whole map.
    order: BTreeMap<u64, CacheKey>,
    /// Monotone logical clock stamping every access, for LRU eviction.
    clock: u64,
}

#[derive(Debug)]
struct LruSlot {
    artifacts: Arc<dyn SolveArtifacts>,
    last_used: u64,
}

/// A point-in-time snapshot of cache effectiveness. Every field is read
/// from relaxed atomics — taking a snapshot never contends with the solve
/// path on any lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (including single-flight waiters
    /// adopting a leader's artifacts).
    pub hits: u64,
    /// Lookups that computed (includes every lookup when disabled, and
    /// waiters that recomputed after a leader's failure).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (`0` = caching disabled). The sharded
    /// implementation enforces it approximately — occupancy may overshoot
    /// by up to [`CACHE_SHARDS`]` − 1` when residents spread one-per-shard.
    pub capacity: usize,
    /// Entries evicted to stay within capacity since construction.
    pub evictions: u64,
    /// Times a lookup parked on another worker's in-flight computation
    /// instead of redundantly computing (always 0 under
    /// [`CacheImpl::MutexLru`], which has no single-flight).
    pub singleflight_waits: u64,
    /// Which implementation produced this snapshot.
    pub cache_impl: CacheImpl,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Locks a mutex, shrugging off poisoning: cache state is `Arc`s and plain
/// maps, valid at every instruction boundary (and no lock here is ever held
/// across a solver call).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifact sets, on the
    /// default [`CacheImpl::Sharded`] backend.
    pub fn new(capacity: usize) -> Self {
        Self::with_impl(CacheImpl::default(), capacity)
    }

    /// Creates a cache on an explicit backend implementation.
    pub fn with_impl(cache_impl: CacheImpl, capacity: usize) -> Self {
        let backend = match cache_impl {
            CacheImpl::Sharded => Backend::Sharded {
                shards: (0..CACHE_SHARDS).map(|_| Shard::default()).collect(),
                clock: AtomicU64::new(0),
            },
            CacheImpl::MutexLru => Backend::MutexLru(Mutex::new(LruInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
            })),
        };
        ArtifactCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            backend,
        }
    }

    /// Which implementation this cache runs.
    pub fn cache_impl(&self) -> CacheImpl {
        match &self.backend {
            Backend::Sharded { .. } => CacheImpl::Sharded,
            Backend::MutexLru(_) => CacheImpl::MutexLru,
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident entries (relaxed read — never locks).
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/occupancy counters. Reads only relaxed atomics, so the
    /// `stats`/`metrics` verbs never contend with the solve path.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            evictions: self.evictions.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
            cache_impl: self.cache_impl(),
        }
    }

    /// Resident entries per shard (a single `[len]` for the mutex LRU,
    /// which has one logical shard). Diagnostic — takes each shard's read
    /// lock briefly, so it belongs on the `metrics` path, not the hot one.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        match &self.backend {
            Backend::Sharded { shards, .. } => shards
                .iter()
                .map(|shard| {
                    shard
                        .map
                        .read()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .len()
                })
                .collect(),
            Backend::MutexLru(inner) => vec![lock(inner).map.len()],
        }
    }

    /// Returns the artifacts for `key`, computing and caching them with
    /// `compute` on a miss. Errors from `compute` are passed through and
    /// nothing is cached; non-[`cacheable`](SolveArtifacts::cacheable)
    /// results are returned without being inserted. Under the sharded
    /// backend, concurrent misses on the same key compute **once**
    /// (single-flight); `compute` runs outside every table lock on either
    /// backend.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Arc<dyn SolveArtifacts>, E>,
    ) -> Result<Arc<dyn SolveArtifacts>, E> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compute();
        }
        match &self.backend {
            Backend::Sharded { shards, clock } => self.sharded_lookup(shards, clock, key, compute),
            Backend::MutexLru(inner) => self.lru_lookup(inner, key, compute),
        }
    }

    /// The shard `key` lives in: the fingerprint digest's low bits (the
    /// digest already mixes every key component except the algorithm, whose
    /// co-residence in one shard is harmless).
    fn shard_of<'s>(shards: &'s [Shard], key: &CacheKey) -> &'s Shard {
        &shards[(key.fingerprint.as_u64() as usize) % shards.len()]
    }

    /// The sharded read path. Warm hit = shard read lock + relaxed atomics;
    /// see the type-level docs for the full protocol.
    fn sharded_lookup<E>(
        &self,
        shards: &[Shard],
        clock: &AtomicU64,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Arc<dyn SolveArtifacts>, E>,
    ) -> Result<Arc<dyn SolveArtifacts>, E> {
        let shard = Self::shard_of(shards, &key);
        if let Some(found) = Self::probe(shard, clock, &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }

        // Cold: join or found the key's flight.
        let (flight, leader) = {
            let mut flights = lock(&shard.flights);
            // Re-probe under the flights lock: a leader that just published
            // has already left `flights`, so only the map can answer.
            if let Some(found) = Self::probe(shard, clock, &key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(found);
            }
            match flights.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Flight::new();
                    flights.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if !leader {
            self.singleflight_waits.fetch_add(1, Ordering::Relaxed);
            match flight.wait() {
                FlightState::Ready(artifacts) => {
                    // Served without computing: a hit, same as if the
                    // leader's insert had landed a moment earlier.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(artifacts);
                }
                // The leader failed; compute individually so this caller
                // gets its own error (or its own success — transient
                // failures must not infect unrelated requests).
                FlightState::Failed => {
                    return self.sharded_compute(shard, None, clock, key, compute)
                }
                FlightState::Pending => unreachable!("wait() only returns resolved states"),
            }
        }

        self.sharded_compute(shard, Some(flight), clock, key, compute)
    }

    /// Leader (or post-failure fallback) compute: run `compute` outside all
    /// locks, publish to the map and to any waiters.
    fn sharded_compute<E>(
        &self,
        shard: &Shard,
        flight: Option<Arc<Flight>>,
        clock: &AtomicU64,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Arc<dyn SolveArtifacts>, E>,
    ) -> Result<Arc<dyn SolveArtifacts>, E> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = match compute() {
            Ok(artifacts) => artifacts,
            Err(e) => {
                if let Some(flight) = flight {
                    lock(&shard.flights).remove(&key);
                    flight.finish(FlightState::Failed);
                }
                return Err(e);
            }
        };

        if computed.cacheable() {
            let mut map = shard
                .map
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // A fallback (non-leader) compute may race another fallback;
            // first insert wins, as in the pre-sharding design.
            if !map.contains_key(&key) {
                map.insert(
                    key.clone(),
                    ShardedSlot {
                        artifacts: Arc::clone(&computed),
                        stamp: AtomicU64::new(clock.fetch_add(1, Ordering::Relaxed)),
                    },
                );
                self.entries.fetch_add(1, Ordering::Relaxed);
                // Approximate LRU: while the *global* count is over
                // capacity, the inserting thread (and only it) sheds the
                // coldest-stamped entries of its own shard — never the one
                // it just inserted. A shard down to just the fresh entry
                // yields no victim, leaving the bounded overshoot the
                // type-level docs describe.
                while self.entries.load(Ordering::Relaxed) as usize > self.capacity {
                    let Some(coldest) = map
                        .iter()
                        .filter(|(k, _)| **k != key)
                        .min_by_key(|(_, slot)| slot.stamp.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone())
                    else {
                        break;
                    };
                    map.remove(&coldest);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        if let Some(flight) = flight {
            // Publish to waiters *after* the map insert: a waiter that
            // wakes and re-looks-up will find the entry. Remove the flight
            // first so late arrivals miss into the map, not a spent flight.
            lock(&shard.flights).remove(&key);
            flight.finish(FlightState::Ready(Arc::clone(&computed)));
        }
        Ok(computed)
    }

    /// One warm probe: shard read lock, stamp bump, `Arc` clone.
    fn probe(shard: &Shard, clock: &AtomicU64, key: &CacheKey) -> Option<Arc<dyn SolveArtifacts>> {
        let map = shard
            .map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let slot = map.get(key)?;
        slot.stamp
            .store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Some(Arc::clone(&slot.artifacts))
    }

    /// The original exact-LRU path, unchanged in semantics: both racers of
    /// a cold key compute (no single-flight), first insert wins.
    fn lru_lookup<E>(
        &self,
        inner: &Mutex<LruInner>,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Arc<dyn SolveArtifacts>, E>,
    ) -> Result<Arc<dyn SolveArtifacts>, E> {
        if let Some(found) = Self::lru_touch(inner, &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Compute outside the lock; see the type-level docs for the race.
        let computed = compute()?;
        if !computed.cacheable() {
            return Ok(computed);
        }

        let mut inner = lock(inner);
        inner.clock += 1;
        let stamp = inner.clock;
        let result = match inner.map.get_mut(&key) {
            // Another worker inserted first: hand out ITS value so every
            // caller from here on shares one allocation.
            Some(slot) => {
                let stale = slot.last_used;
                slot.last_used = stamp;
                let shared = Arc::clone(&slot.artifacts);
                inner.order.remove(&stale);
                inner.order.insert(stamp, key);
                shared
            }
            None => {
                inner.map.insert(
                    key.clone(),
                    LruSlot {
                        artifacts: Arc::clone(&computed),
                        last_used: stamp,
                    },
                );
                inner.order.insert(stamp, key);
                self.entries.fetch_add(1, Ordering::Relaxed);
                computed
            }
        };
        while inner.map.len() > self.capacity {
            let Some((_, coldest)) = inner.order.pop_first() else {
                break;
            };
            inner.map.remove(&coldest);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(result)
    }

    /// Looks `key` up in the LRU and refreshes its recency stamp.
    fn lru_touch(inner: &Mutex<LruInner>, key: &CacheKey) -> Option<Arc<dyn SolveArtifacts>> {
        let mut inner = lock(inner);
        inner.clock += 1;
        let stamp = inner.clock;
        let slot = inner.map.get_mut(key)?;
        let stale = slot.last_used;
        slot.last_used = stamp;
        let shared = Arc::clone(&slot.artifacts);
        inner.order.remove(&stale);
        inner.order.insert(stamp, key.clone());
        Some(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_core::bin_set::BinSet;
    use slade_core::opq_based::OpqBased;
    use slade_core::reliability::theta;
    use slade_core::solver::{PassThroughArtifacts, PreparedSolver};
    use slade_core::SladeError;

    const BOTH_IMPLS: [CacheImpl; 2] = [CacheImpl::Sharded, CacheImpl::MutexLru];

    fn key_and_artifacts(t: f64) -> (CacheKey, Arc<dyn SolveArtifacts>) {
        let bins = Arc::new(BinSet::paper_example());
        let solver = OpqBased::default();
        let key = CacheKey {
            algorithm: Algorithm::OpqBased,
            fingerprint: Fingerprint::new(Arc::clone(&bins), theta(t), &solver),
        };
        let artifacts = solver.prepare(&bins, theta(t)).unwrap();
        (key, artifacts)
    }

    #[test]
    fn hit_returns_the_cached_arc_under_both_impls() {
        for cache_impl in BOTH_IMPLS {
            let cache = ArtifactCache::with_impl(cache_impl, 4);
            let (key, artifacts) = key_and_artifacts(0.95);
            let first = cache
                .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
                .unwrap();
            let second = cache
                .get_or_try_insert_with::<SladeError>(key, || panic!("must not recompute"))
                .unwrap();
            assert!(Arc::ptr_eq(&first, &second), "{cache_impl:?}");
            let stats = cache.stats();
            assert_eq!(
                (stats.hits, stats.misses, stats.entries),
                (1, 1, 1),
                "{cache_impl:?}"
            );
            assert_eq!(stats.cache_impl, cache_impl);
        }
    }

    #[test]
    fn same_fingerprint_under_two_algorithms_is_two_entries() {
        // Greedy and OpqExtended can share a fingerprint digest shape; the
        // Algorithm component must still keep their artifacts apart.
        for cache_impl in BOTH_IMPLS {
            let cache = ArtifactCache::with_impl(cache_impl, 4);
            let (key, artifacts) = key_and_artifacts(0.95);
            let other_key = CacheKey {
                algorithm: Algorithm::OpqExtended,
                fingerprint: key.fingerprint.clone(),
            };
            cache
                .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
                .unwrap();
            let mut recomputed = false;
            let (_, other) = key_and_artifacts(0.95);
            cache
                .get_or_try_insert_with::<SladeError>(other_key, || {
                    recomputed = true;
                    Ok(other)
                })
                .unwrap();
            assert!(recomputed, "{cache_impl:?}");
            assert_eq!(cache.len(), 2, "{cache_impl:?}");
        }
    }

    #[test]
    fn mutex_lru_evicts_the_exactly_coldest_entry() {
        let cache = ArtifactCache::with_impl(CacheImpl::MutexLru, 2);
        let (k1, a1) = key_and_artifacts(0.90);
        let (k2, a2) = key_and_artifacts(0.95);
        let (k3, a3) = key_and_artifacts(0.99);
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || Ok(Arc::clone(&a1)))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k2.clone(), || Ok(a2))
            .unwrap();
        // Touch k1 so k2 is now the coldest, then overflow with k3.
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || panic!("k1 is resident"))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k3, || Ok(a3))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // k1 survived the eviction (it was touched after k2)...
        cache
            .get_or_try_insert_with::<SladeError>(k1, || panic!("k1 must survive"))
            .unwrap();
        // ...and k2, the coldest at overflow time, was the one evicted.
        let mut recomputed = false;
        let (_, a2_again) = key_and_artifacts(0.95);
        cache
            .get_or_try_insert_with::<SladeError>(k2, || {
                recomputed = true;
                Ok(a2_again)
            })
            .unwrap();
        assert!(recomputed);
    }

    #[test]
    fn sharded_eviction_keeps_a_shard_within_budget_and_prefers_cold_entries() {
        // Capacity 1 with two keys in one shard: the insert that takes the
        // cache over capacity must shed the colder co-resident.
        let cache = ArtifactCache::with_impl(CacheImpl::Sharded, 1);
        // Find two thresholds whose fingerprints share a shard.
        let thresholds = [0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.99];
        let shard_of = |t: f64| {
            let (key, _) = key_and_artifacts(t);
            (key.fingerprint.as_u64() as usize) % CACHE_SHARDS
        };
        let (a, b) = 'found: {
            for (i, &ta) in thresholds.iter().enumerate() {
                for &tb in &thresholds[i + 1..] {
                    if shard_of(ta) == shard_of(tb) {
                        break 'found (ta, tb);
                    }
                }
            }
            // 9 digests over 16 shards always collide somewhere (pigeonhole
            // needs 17, but FNV spreads these; assert instead of looping).
            panic!("no two test thresholds landed in one shard");
        };
        let (ka, aa) = key_and_artifacts(a);
        let (kb, ab) = key_and_artifacts(b);
        cache
            .get_or_try_insert_with::<SladeError>(ka.clone(), || Ok(aa))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(kb.clone(), || Ok(ab))
            .unwrap();
        // Inserting b took the cache over capacity; a (the colder stamp,
        // same shard) was the victim.
        assert_eq!(cache.stats().evictions, 1);
        cache
            .get_or_try_insert_with::<SladeError>(kb, || panic!("the fresh entry must survive"))
            .unwrap();
        let mut recomputed = false;
        let (_, aa_again) = key_and_artifacts(a);
        cache
            .get_or_try_insert_with::<SladeError>(ka, || {
                recomputed = true;
                Ok(aa_again)
            })
            .unwrap();
        assert!(recomputed, "the cold entry was the victim");
    }

    #[test]
    fn sharded_occupancy_overshoot_is_bounded_by_one_entry_per_shard() {
        // Residents spread across shards can overshoot a tiny capacity
        // (each shard keeps at least its own fresh entry), but never beyond
        // one entry per shard — the approximation the docs pin.
        let cache = ArtifactCache::with_impl(CacheImpl::Sharded, 1);
        let thresholds = [0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.99];
        for t in thresholds {
            let (key, artifacts) = key_and_artifacts(t);
            cache
                .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
                .unwrap();
        }
        assert!(cache.len() <= CACHE_SHARDS);
        assert!(cache
            .shard_occupancy()
            .iter()
            .all(|&occupancy| occupancy <= 1));
        let stats = cache.stats();
        assert_eq!(
            stats.entries as u64 + stats.evictions,
            thresholds.len() as u64,
            "every insert is either resident or accounted an eviction"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        for cache_impl in BOTH_IMPLS {
            let cache = ArtifactCache::with_impl(cache_impl, 0);
            let (key, artifacts) = key_and_artifacts(0.95);
            let other = Arc::clone(&artifacts);
            cache
                .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
                .unwrap();
            let mut recomputed = false;
            cache
                .get_or_try_insert_with::<SladeError>(key, || {
                    recomputed = true;
                    Ok(other)
                })
                .unwrap();
            assert!(recomputed, "{cache_impl:?}");
            assert!(cache.is_empty(), "{cache_impl:?}");
            assert_eq!(cache.stats().misses, 2, "{cache_impl:?}");
        }
    }

    #[test]
    fn pass_through_artifacts_are_never_inserted() {
        for cache_impl in BOTH_IMPLS {
            let cache = ArtifactCache::with_impl(cache_impl, 4);
            let (key, _) = key_and_artifacts(0.95);
            for expected_misses in 1..=2u64 {
                cache
                    .get_or_try_insert_with::<SladeError>(key.clone(), || {
                        Ok(Arc::new(PassThroughArtifacts::new(theta(0.95))))
                    })
                    .unwrap();
                assert!(cache.is_empty(), "{cache_impl:?}");
                assert_eq!(cache.stats().misses, expected_misses, "{cache_impl:?}");
            }
        }
    }

    #[test]
    fn compute_errors_pass_through_and_cache_nothing() {
        for cache_impl in BOTH_IMPLS {
            let cache = ArtifactCache::with_impl(cache_impl, 4);
            let (key, artifacts) = key_and_artifacts(0.95);
            let err = cache
                .get_or_try_insert_with(key.clone(), || {
                    Err::<Arc<dyn SolveArtifacts>, _>(SladeError::EmptyEnumeration)
                })
                .unwrap_err();
            assert_eq!(err, SladeError::EmptyEnumeration, "{cache_impl:?}");
            assert!(cache.is_empty(), "{cache_impl:?}");
            // The next lookup can still succeed (in particular, a failed
            // single-flight leader must not wedge the key).
            cache
                .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
                .unwrap();
            assert_eq!(cache.len(), 1, "{cache_impl:?}");
        }
    }

    #[test]
    fn single_flight_dedups_concurrent_cold_misses() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        const RACERS: usize = 8;
        let cache = Arc::new(ArtifactCache::with_impl(CacheImpl::Sharded, 8));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(RACERS));
        let results: Vec<Arc<dyn SolveArtifacts>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let computes = Arc::clone(&computes);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let (key, _) = key_and_artifacts(0.95);
                        barrier.wait();
                        cache
                            .get_or_try_insert_with::<SladeError>(key, || {
                                computes.fetch_add(1, Ordering::SeqCst);
                                // Hold the flight open long enough that the
                                // other racers must park on it.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                let (_, artifacts) = key_and_artifacts(0.95);
                                Ok(artifacts)
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one racer computes"
        );
        // Everyone shares the winner's allocation.
        assert!(results.iter().all(|a| Arc::ptr_eq(a, &results[0])));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, RACERS - 1);
        assert_eq!(stats.singleflight_waits as usize, RACERS - 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn a_failed_leader_releases_waiters_to_compute_individually() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        const RACERS: usize = 4;
        let cache = Arc::new(ArtifactCache::with_impl(CacheImpl::Sharded, 8));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(RACERS));
        let outcomes: Vec<Result<(), SladeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let computes = Arc::clone(&computes);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let (key, _) = key_and_artifacts(0.95);
                        barrier.wait();
                        cache
                            .get_or_try_insert_with::<SladeError>(key, || {
                                let n = computes.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                if n == 0 {
                                    // Whoever leads first fails...
                                    Err(SladeError::EmptyEnumeration)
                                } else {
                                    // ...fallback computes succeed.
                                    let (_, artifacts) = key_and_artifacts(0.95);
                                    Ok(artifacts)
                                }
                            })
                            .map(|_| ())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let failures = outcomes.iter().filter(|o| o.is_err()).count();
        assert_eq!(failures, 1, "exactly the failing leader sees its error");
        assert!(computes.load(Ordering::SeqCst) >= 2, "waiters recomputed");
        // The key is not wedged: it is resident (some fallback inserted it).
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_impl_parses_its_flag_spellings() {
        assert_eq!("sharded".parse::<CacheImpl>(), Ok(CacheImpl::Sharded));
        assert_eq!("mutex-lru".parse::<CacheImpl>(), Ok(CacheImpl::MutexLru));
        assert!("lru".parse::<CacheImpl>().is_err());
        assert_eq!(CacheImpl::Sharded.name(), "sharded");
        assert_eq!(CacheImpl::MutexLru.name(), "mutex-lru");
        assert_eq!(CacheImpl::default(), CacheImpl::Sharded);
    }

    #[test]
    fn shard_occupancy_sums_to_len() {
        let cache = ArtifactCache::with_impl(CacheImpl::Sharded, 64);
        for t in [0.90, 0.93, 0.95, 0.97, 0.99] {
            let (key, artifacts) = key_and_artifacts(t);
            cache
                .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
                .unwrap();
        }
        let occupancy = cache.shard_occupancy();
        assert_eq!(occupancy.len(), CACHE_SHARDS);
        assert_eq!(occupancy.iter().sum::<usize>(), cache.len());
        assert_eq!(cache.len(), 5);

        let lru = ArtifactCache::with_impl(CacheImpl::MutexLru, 64);
        let (key, artifacts) = key_and_artifacts(0.95);
        lru.get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
            .unwrap();
        assert_eq!(lru.shard_occupancy(), vec![1]);
    }
}
