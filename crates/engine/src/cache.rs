//! The artifact cache: an LRU over `Arc`-shared solve artifacts.

use crate::fingerprint::Fingerprint;
use slade_core::opq_based::SolveArtifacts;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe LRU cache from [`Fingerprint`] to
/// [`SolveArtifacts`], shared by every worker of an [`Engine`].
///
/// Keys hash by their 64-bit digest but compare by full key material
/// (`Fingerprint`'s `Eq` checks the bin menu by content), so an FNV digest
/// collision between two distinct instances lands in the same hash bucket
/// yet can never alias entries — the standard `HashMap` probe rejects the
/// mismatched key and the second instance simply computes its own artifacts.
///
/// Values are `Arc`ed, so a hit hands out a shared reference while the entry
/// may be concurrently evicted — readers are never invalidated. The
/// computation in [`ArtifactCache::get_or_try_insert_with`] runs *outside*
/// the lock: two workers racing on the same cold fingerprint may both
/// compute, but artifact computation is deterministic, so whichever insert
/// lands first wins and both results are interchangeable. That keeps the
/// critical section to a map probe and preserves determinism.
///
/// A capacity of `0` disables caching (every lookup computes); the engine
/// uses that for apples-to-apples cold benchmarks.
///
/// [`Engine`]: crate::Engine
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<Fingerprint, Slot>,
    /// Recency index: `last_used` stamp → key, mirroring `map` one-to-one
    /// (stamps are unique — the clock only ticks under the lock), so
    /// eviction pops the smallest stamp in `O(log entries)` instead of
    /// scanning the whole map.
    order: BTreeMap<u64, Fingerprint>,
    /// Monotone logical clock stamping every access, for LRU eviction.
    clock: u64,
}

#[derive(Debug)]
struct Slot {
    artifacts: Arc<SolveArtifacts>,
    last_used: u64,
}

/// A point-in-time snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes every lookup when disabled).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (`0` = caching disabled).
    pub capacity: usize,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifact sets.
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Returns the artifacts for `key`, computing and caching them with
    /// `compute` on a miss. Errors from `compute` are passed through and
    /// nothing is cached.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: Fingerprint,
        compute: impl FnOnce() -> Result<SolveArtifacts, E>,
    ) -> Result<Arc<SolveArtifacts>, E> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compute().map(Arc::new);
        }

        if let Some(found) = self.touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Compute outside the lock; see the type-level docs for the race.
        let computed = Arc::new(compute()?);

        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let result = match inner.map.get_mut(&key) {
            // Another worker inserted first: hand out ITS value so every
            // caller from here on shares one allocation.
            Some(slot) => {
                let stale = slot.last_used;
                slot.last_used = stamp;
                let shared = Arc::clone(&slot.artifacts);
                inner.order.remove(&stale);
                inner.order.insert(stamp, key);
                shared
            }
            None => {
                inner.map.insert(
                    key.clone(),
                    Slot {
                        artifacts: Arc::clone(&computed),
                        last_used: stamp,
                    },
                );
                inner.order.insert(stamp, key);
                computed
            }
        };
        Self::evict_over_capacity(&mut inner, self.capacity);
        Ok(result)
    }

    /// Looks `key` up and refreshes its LRU stamp.
    fn touch(&self, key: &Fingerprint) -> Option<Arc<SolveArtifacts>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let slot = inner.map.get_mut(key)?;
        let stale = slot.last_used;
        slot.last_used = stamp;
        let shared = Arc::clone(&slot.artifacts);
        inner.order.remove(&stale);
        inner.order.insert(stamp, key.clone());
        Some(shared)
    }

    fn evict_over_capacity(inner: &mut Inner, capacity: usize) {
        while inner.map.len() > capacity {
            let Some((_, coldest)) = inner.order.pop_first() else {
                return;
            };
            inner.map.remove(&coldest);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Jobs never panic while holding this lock (it is released before
        // any solver runs), but recover from poisoning anyway: the map is
        // a cache, so its state is always safe to reuse.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use slade_core::bin_set::BinSet;
    use slade_core::opq_based::OpqBased;
    use slade_core::reliability::theta;
    use slade_core::SladeError;

    fn artifacts_for(t: f64) -> (Fingerprint, SolveArtifacts) {
        let bins = Arc::new(BinSet::paper_example());
        let solver = OpqBased::default();
        let key = Fingerprint::new(Arc::clone(&bins), theta(t), &solver);
        let artifacts = solver.artifacts(&bins, theta(t)).unwrap();
        (key, artifacts)
    }

    #[test]
    fn hit_returns_the_cached_arc() {
        let cache = ArtifactCache::new(4);
        let (key, artifacts) = artifacts_for(0.95);
        let first = cache
            .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
            .unwrap();
        let second = cache
            .get_or_try_insert_with::<SladeError>(key, || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2);
        let (k1, a1) = artifacts_for(0.90);
        let (k2, a2) = artifacts_for(0.95);
        let (k3, a3) = artifacts_for(0.99);
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || Ok(a1.clone()))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k2.clone(), || Ok(a2))
            .unwrap();
        // Touch k1 so k2 is now the coldest, then overflow with k3.
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || panic!("k1 is resident"))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k3, || Ok(a3))
            .unwrap();
        assert_eq!(cache.len(), 2);
        // k1 survived the eviction (it was touched after k2)...
        cache
            .get_or_try_insert_with::<SladeError>(k1, || panic!("k1 must survive"))
            .unwrap();
        // ...and k2, the coldest at overflow time, was the one evicted.
        let mut recomputed = false;
        let (_, a2_again) = artifacts_for(0.95);
        cache
            .get_or_try_insert_with::<SladeError>(k2, || {
                recomputed = true;
                Ok(a2_again)
            })
            .unwrap();
        assert!(recomputed);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ArtifactCache::new(0);
        let (key, artifacts) = artifacts_for(0.95);
        let other = artifacts.clone();
        cache
            .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
            .unwrap();
        let mut recomputed = false;
        cache
            .get_or_try_insert_with::<SladeError>(key, || {
                recomputed = true;
                Ok(other)
            })
            .unwrap();
        assert!(recomputed);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn compute_errors_pass_through_and_cache_nothing() {
        let cache = ArtifactCache::new(4);
        let (key, artifacts) = artifacts_for(0.95);
        let err = cache
            .get_or_try_insert_with(key.clone(), || {
                Err::<SolveArtifacts, _>(SladeError::EmptyEnumeration)
            })
            .unwrap_err();
        assert_eq!(err, SladeError::EmptyEnumeration);
        assert!(cache.is_empty());
        // The next lookup can still succeed.
        cache
            .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }
}
