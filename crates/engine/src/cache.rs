//! The artifact cache: an LRU over `Arc`-shared solve artifacts, shared by
//! every algorithm.

use slade_core::fingerprint::Fingerprint;
use slade_core::solver::{Algorithm, SolveArtifacts};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cache key: which algorithm's `prepare` ran, over which
/// [`Fingerprint`] (bin-menu signature, θ bits, and the solver's own knob
/// digest). One cache serves every request type; the `Algorithm` component
/// keeps two solvers' artifacts apart even when their knob words coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The algorithm whose [`prepare`](slade_core::solver::PreparedSolver)
    /// produced (or will produce) the entry.
    pub algorithm: Algorithm,
    /// The canonical identity of the prepare computation.
    pub fingerprint: Fingerprint,
}

/// A thread-safe LRU cache from [`CacheKey`] to type-erased
/// [`SolveArtifacts`], shared by every worker of an [`Engine`].
///
/// Keys hash by the fingerprint's 64-bit digest but compare by full key
/// material (`Fingerprint`'s `Eq` checks the bin menu by content), so an FNV
/// digest collision between two distinct instances lands in the same hash
/// bucket yet can never alias entries — the standard `HashMap` probe rejects
/// the mismatched key and the second instance simply computes its own
/// artifacts.
///
/// Values are `Arc`ed, so a hit hands out a shared reference while the entry
/// may be concurrently evicted — readers are never invalidated. The
/// computation in [`ArtifactCache::get_or_try_insert_with`] runs *outside*
/// the lock: two workers racing on the same cold key may both compute, but
/// `prepare` is deterministic, so whichever insert lands first wins and both
/// results are interchangeable. That keeps the critical section to a map
/// probe and preserves determinism.
///
/// Artifacts reporting [`SolveArtifacts::cacheable`]` == false`
/// (pass-through solvers) are computed but never inserted, so trivial
/// entries cannot evict expensive ones.
///
/// A capacity of `0` disables caching (every lookup computes); the engine
/// uses that for apples-to-apples cold benchmarks.
///
/// [`Engine`]: crate::Engine
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<CacheKey, Slot>,
    /// Recency index: `last_used` stamp → key, mirroring `map` one-to-one
    /// (stamps are unique — the clock only ticks under the lock), so
    /// eviction pops the smallest stamp in `O(log entries)` instead of
    /// scanning the whole map.
    order: BTreeMap<u64, CacheKey>,
    /// Monotone logical clock stamping every access, for LRU eviction.
    clock: u64,
}

#[derive(Debug)]
struct Slot {
    artifacts: Arc<dyn SolveArtifacts>,
    last_used: u64,
}

/// A point-in-time snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes every lookup when disabled).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (`0` = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifact sets.
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Returns the artifacts for `key`, computing and caching them with
    /// `compute` on a miss. Errors from `compute` are passed through and
    /// nothing is cached; non-[`cacheable`](SolveArtifacts::cacheable)
    /// results are returned without being inserted.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Arc<dyn SolveArtifacts>, E>,
    ) -> Result<Arc<dyn SolveArtifacts>, E> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compute();
        }

        if let Some(found) = self.touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Compute outside the lock; see the type-level docs for the race.
        let computed = compute()?;
        if !computed.cacheable() {
            return Ok(computed);
        }

        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let result = match inner.map.get_mut(&key) {
            // Another worker inserted first: hand out ITS value so every
            // caller from here on shares one allocation.
            Some(slot) => {
                let stale = slot.last_used;
                slot.last_used = stamp;
                let shared = Arc::clone(&slot.artifacts);
                inner.order.remove(&stale);
                inner.order.insert(stamp, key);
                shared
            }
            None => {
                inner.map.insert(
                    key.clone(),
                    Slot {
                        artifacts: Arc::clone(&computed),
                        last_used: stamp,
                    },
                );
                inner.order.insert(stamp, key);
                computed
            }
        };
        Self::evict_over_capacity(&mut inner, self.capacity);
        Ok(result)
    }

    /// Looks `key` up and refreshes its LRU stamp.
    fn touch(&self, key: &CacheKey) -> Option<Arc<dyn SolveArtifacts>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let slot = inner.map.get_mut(key)?;
        let stale = slot.last_used;
        slot.last_used = stamp;
        let shared = Arc::clone(&slot.artifacts);
        inner.order.remove(&stale);
        inner.order.insert(stamp, key.clone());
        Some(shared)
    }

    fn evict_over_capacity(inner: &mut Inner, capacity: usize) {
        while inner.map.len() > capacity {
            let Some((_, coldest)) = inner.order.pop_first() else {
                return;
            };
            inner.map.remove(&coldest);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Jobs never panic while holding this lock (it is released before
        // any solver runs), but recover from poisoning anyway: the map is
        // a cache, so its state is always safe to reuse.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_core::bin_set::BinSet;
    use slade_core::opq_based::OpqBased;
    use slade_core::reliability::theta;
    use slade_core::solver::{PassThroughArtifacts, PreparedSolver};
    use slade_core::SladeError;

    fn key_and_artifacts(t: f64) -> (CacheKey, Arc<dyn SolveArtifacts>) {
        let bins = Arc::new(BinSet::paper_example());
        let solver = OpqBased::default();
        let key = CacheKey {
            algorithm: Algorithm::OpqBased,
            fingerprint: Fingerprint::new(Arc::clone(&bins), theta(t), &solver),
        };
        let artifacts = solver.prepare(&bins, theta(t)).unwrap();
        (key, artifacts)
    }

    #[test]
    fn hit_returns_the_cached_arc() {
        let cache = ArtifactCache::new(4);
        let (key, artifacts) = key_and_artifacts(0.95);
        let first = cache
            .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
            .unwrap();
        let second = cache
            .get_or_try_insert_with::<SladeError>(key, || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn same_fingerprint_under_two_algorithms_is_two_entries() {
        // Greedy and OpqExtended can share a fingerprint digest shape; the
        // Algorithm component must still keep their artifacts apart.
        let cache = ArtifactCache::new(4);
        let (key, artifacts) = key_and_artifacts(0.95);
        let other_key = CacheKey {
            algorithm: Algorithm::OpqExtended,
            fingerprint: key.fingerprint.clone(),
        };
        cache
            .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
            .unwrap();
        let mut recomputed = false;
        let (_, other) = key_and_artifacts(0.95);
        cache
            .get_or_try_insert_with::<SladeError>(other_key, || {
                recomputed = true;
                Ok(other)
            })
            .unwrap();
        assert!(recomputed);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2);
        let (k1, a1) = key_and_artifacts(0.90);
        let (k2, a2) = key_and_artifacts(0.95);
        let (k3, a3) = key_and_artifacts(0.99);
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || Ok(Arc::clone(&a1)))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k2.clone(), || Ok(a2))
            .unwrap();
        // Touch k1 so k2 is now the coldest, then overflow with k3.
        cache
            .get_or_try_insert_with::<SladeError>(k1.clone(), || panic!("k1 is resident"))
            .unwrap();
        cache
            .get_or_try_insert_with::<SladeError>(k3, || Ok(a3))
            .unwrap();
        assert_eq!(cache.len(), 2);
        // k1 survived the eviction (it was touched after k2)...
        cache
            .get_or_try_insert_with::<SladeError>(k1, || panic!("k1 must survive"))
            .unwrap();
        // ...and k2, the coldest at overflow time, was the one evicted.
        let mut recomputed = false;
        let (_, a2_again) = key_and_artifacts(0.95);
        cache
            .get_or_try_insert_with::<SladeError>(k2, || {
                recomputed = true;
                Ok(a2_again)
            })
            .unwrap();
        assert!(recomputed);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ArtifactCache::new(0);
        let (key, artifacts) = key_and_artifacts(0.95);
        let other = Arc::clone(&artifacts);
        cache
            .get_or_try_insert_with::<SladeError>(key.clone(), || Ok(artifacts))
            .unwrap();
        let mut recomputed = false;
        cache
            .get_or_try_insert_with::<SladeError>(key, || {
                recomputed = true;
                Ok(other)
            })
            .unwrap();
        assert!(recomputed);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn pass_through_artifacts_are_never_inserted() {
        let cache = ArtifactCache::new(4);
        let (key, _) = key_and_artifacts(0.95);
        for expected_misses in 1..=2u64 {
            cache
                .get_or_try_insert_with::<SladeError>(key.clone(), || {
                    Ok(Arc::new(PassThroughArtifacts::new(theta(0.95))))
                })
                .unwrap();
            assert!(cache.is_empty());
            assert_eq!(cache.stats().misses, expected_misses);
        }
    }

    #[test]
    fn compute_errors_pass_through_and_cache_nothing() {
        let cache = ArtifactCache::new(4);
        let (key, artifacts) = key_and_artifacts(0.95);
        let err = cache
            .get_or_try_insert_with(key.clone(), || {
                Err::<Arc<dyn SolveArtifacts>, _>(SladeError::EmptyEnumeration)
            })
            .unwrap_err();
        assert_eq!(err, SladeError::EmptyEnumeration);
        assert!(cache.is_empty());
        // The next lookup can still succeed.
        cache
            .get_or_try_insert_with::<SladeError>(key, || Ok(artifacts))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }
}
