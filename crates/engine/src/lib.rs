//! # slade-engine — a concurrent, caching decomposition service layer
//!
//! The solvers in `slade-core` are one-shot functions: one thread, one
//! instance, one plan. A production decomposition service faces a different
//! shape of load — many requesters posting workloads against a shared bin
//! marketplace, with heavy repetition in `(bin menu, threshold)` pairs. This
//! crate closes that gap with three pieces, std-only:
//!
//! * **a fixed worker pool** ([`Engine`]) — `std::thread` workers pulling
//!   jobs from one bounded `mpsc` channel, so [`Engine::submit`] exerts
//!   backpressure instead of queueing unboundedly;
//! * **sharded solves** — heterogeneous requests split into their
//!   [`slade_core::hetero::partition`] threshold buckets and (optionally)
//!   large homogeneous requests into fixed-size chunks, each an independent
//!   job; sub-plans are merged in shard order, so the result is a function
//!   of the request alone, never of thread count or scheduling;
//! * **an artifact cache** ([`ArtifactCache`]) — an LRU keyed by a canonical
//!   [`Fingerprint`] of `(BinSet signature, θ, solver knobs)` memoizing the
//!   OPQ enumeration pool and group-DP tables
//!   ([`slade_core::opq_based::SolveArtifacts`]) behind an `Arc`, so a
//!   repeated `(BinSet, θ)` skips enumeration entirely.
//!
//! ## Determinism
//!
//! Every job is a pure function of the request (solver configurations are
//! data; the randomized Baseline takes its seed from
//! [`EngineRequest::seed`]), sharding is decided at submit time from the
//! request alone, and [`PlanHandle::wait`] merges shard results in shard
//! order. Hence the same request produces byte-identical plans at
//! `threads = 1` and `threads = N`, and a warm-cache solve equals the cold
//! solve for the same fingerprint — both invariants are pinned by this
//! crate's tests.
//!
//! ## Quickstart
//!
//! ```
//! use slade_core::prelude::*;
//! use slade_engine::{Engine, EngineConfig, EngineRequest};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let bins = Arc::new(BinSet::paper_example());
//! let request = EngineRequest::new(
//!     Algorithm::OpqBased,
//!     Workload::homogeneous(4, 0.95).unwrap(),
//!     bins,
//! );
//! let plan = engine.solve(request).unwrap();
//! assert!((plan.total_cost() - 0.68).abs() < 1e-9); // Example 9
//! ```

mod cache;
mod fingerprint;
mod service;

pub use cache::{ArtifactCache, CacheStats};
pub use fingerprint::Fingerprint;
pub use service::{Engine, EngineConfig, EngineError, EngineRequest, PlanHandle};
