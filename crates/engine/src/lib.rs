//! # slade-engine — a concurrent, caching decomposition service layer
//!
//! The solvers in `slade-core` are one-shot functions: one thread, one
//! instance, one plan. A production decomposition service faces a different
//! shape of load — many requesters posting workloads against a shared bin
//! marketplace, with heavy repetition in `(bin menu, threshold)` pairs and
//! workloads that evolve in place. This crate closes that gap, std-only:
//!
//! * **a work-stealing worker pool** ([`Engine`]) — `std::thread` workers,
//!   each draining its own deque LIFO and stealing the oldest job from a
//!   loaded sibling when idle ([`SchedulerMode::WorkSteal`]; the original
//!   single shared FIFO survives as [`SchedulerMode::SharedQueue`] for A/B
//!   benchmarking). Admission is counted against a bound, so
//!   [`Engine::submit`] exerts backpressure instead of queueing
//!   unboundedly, and an idle pool parks — it costs nothing;
//! * **a cross-session plan store** ([`PlanStore`]) — named
//!   [`ResolvedPlan`]s with per-session leases and pending-producer
//!   markers, so a frontend can let one connection resubmit a plan another
//!   connection produced, with conflicts surfaced as typed
//!   [`StoreError`]s instead of races;
//! * **sharded solves** — heterogeneous requests split into their
//!   [`slade_core::hetero::partition`] threshold buckets and (optionally)
//!   large homogeneous requests into fixed-size chunks, each an independent
//!   job; sub-plans are merged in shard order, so the result is a function
//!   of the request alone, never of thread count or scheduling;
//! * **an algorithm-agnostic artifact cache** ([`ArtifactCache`]) — a
//!   sharded concurrent table keyed by `(Algorithm, `[`Fingerprint`]`)`
//!   over type-erased [`slade_core::solver::SolveArtifacts`], whose warm
//!   hits take no process-global lock (shard-local `RwLock` read + relaxed
//!   atomics), with approximate-LRU eviction off the hot path and
//!   single-flight cold misses; the original mutex LRU stays selectable as
//!   [`CacheImpl::MutexLru`] for A/B runs. Every worker routes every
//!   shard through the core's two-phase
//!   [`PreparedSolver`](slade_core::solver::PreparedSolver) pipeline
//!   (`prepare` once per fingerprint, `solve_with` per workload), so
//!   repeated `(BinSet, θ)` pairs skip the expensive prepare step for
//!   **all** algorithms — OPQ enumeration + group DP, the greedy's ladder,
//!   the baseline's scaffolding — not just OpqBased. (OpqExtended requests
//!   are first decomposed into their per-bucket homogeneous shards, which
//!   then run — and cache — as `OpqBased` prepares, maximizing sharing
//!   across the two request types; `OpqExtended`'s own
//!   `HeteroArtifacts` prepare path serves direct library callers that
//!   want per-bucket reuse without an engine);
//! * **incremental deltas** ([`Engine::resubmit`]) — a solved request can be
//!   retained as a [`ResolvedPlan`] and re-solved under a
//!   [`WorkloadDelta`] (grow/shrink `n`, per-task threshold changes,
//!   appends); only the shards whose inputs changed are recomputed, and the
//!   result is byte-identical to a cold solve of the final workload.
//!
//! ## Determinism
//!
//! Every job is a pure function of the request (solver configurations are
//! data; the randomized Baseline takes its seed from
//! [`EngineRequest::seed`]), sharding is decided at submit time from the
//! request alone, and [`PlanHandle::wait`] merges shard results in shard
//! order. Hence the same request produces byte-identical plans at
//! `threads = 1` and `threads = N` — *including under steal-heavy
//! schedules, where jobs run on arbitrary workers in arbitrary order* — a
//! warm-cache solve equals the cold solve for the same fingerprint (for
//! every algorithm), and a delta resubmission equals the cold solve of the
//! resulting workload — all pinned by this crate's tests
//! (`tests/steal_determinism.rs` forces stealing with stalled shards
//! across 100 seeded schedules).
//!
//! A panicking solver cannot wedge a handle: workers catch unwinds at the
//! job boundary and surface them as [`EngineError::WorkerPanicked`].
//!
//! ## Lifecycle
//!
//! Services built on top (the `slade-server` network frontend) share the
//! engine behind an `Arc` and need bounded waits: [`Engine::shutdown`]
//! drains already-queued shards deterministically and then rejects new
//! work with [`EngineError::ShutDown`], and every blocking wait has a
//! timeout-aware twin ([`PlanHandle::wait_timeout`],
//! [`Engine::solve_resolved_timeout`], [`Engine::resubmit_timeout`])
//! returning [`EngineError::Timeout`] — the abandoned shards finish in the
//! pool, so a stuck request costs at most its deadline, never a thread.
//!
//! ## Quickstart
//!
//! ```
//! use slade_core::prelude::*;
//! use slade_engine::{Engine, EngineConfig, EngineRequest, WorkloadDelta};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let bins = Arc::new(BinSet::paper_example());
//! let request = EngineRequest::new(
//!     Algorithm::OpqBased,
//!     Workload::homogeneous(4, 0.95).unwrap(),
//!     bins,
//! );
//! let resolved = engine.solve_resolved(request).unwrap();
//! assert!((resolved.plan().total_cost() - 0.68).abs() < 1e-9); // Example 9
//!
//! // The workload grows: re-solve incrementally from the same artifacts.
//! let grown = engine.resubmit(&resolved, &WorkloadDelta::Resize(1_000)).unwrap();
//! assert_eq!(grown.workload().len(), 1_000);
//! ```

mod cache;
pub mod codec;
mod sched;
mod service;
mod store;

pub use cache::{ArtifactCache, CacheImpl, CacheKey, CacheStats, CACHE_SHARDS};
pub use sched::SchedulerMode;
pub use service::{
    Engine, EngineConfig, EngineError, EngineRequest, PlanHandle, RequestTrace, ResolvedHandle,
    ResolvedPlan, ShardNotify, WorkloadDelta,
};
pub use store::{FinishOutcome, PlanStore, SessionId, StoreError};
// The fingerprint type cache keys are built from now lives in `slade_core`,
// next to the signatures and solver knobs it hashes; re-exported here for
// engine-facing callers.
pub use slade_core::fingerprint::Fingerprint;
