//! An engine-owned, cross-session store of named [`ResolvedPlan`]s.
//!
//! Frontends used to keep plan namespaces per connection: a plan retained
//! on connection A simply did not exist for connection B, and the pending
//! marker that kept a pipelined `resubmit` from racing its producer lived
//! in the same per-connection map. This module promotes both to one shared
//! store with an ownership discipline, so a plan produced on one
//! connection can be claimed and resubmitted from another (load-balanced
//! clients, session failover) without giving up the race protection:
//!
//! * **plans** are stored under caller-chosen string ids, engine-wide;
//! * **leases** — at most one session holds a plan id at a time. Producing
//!   under an id takes the lease implicitly, resubmitting an unleased id
//!   claims it implicitly, and [`PlanStore::claim`] /
//!   [`PlanStore::release`] move it explicitly. A second session touching
//!   a leased id gets [`StoreError::LeaseHeld`] — a typed conflict, not a
//!   silent overwrite;
//! * **lease expiry** — with a TTL configured
//!   ([`PlanStore::set_lease_ttl`]), an idle lease expires once the TTL
//!   has elapsed since its holder's last store operation on the id, and
//!   the next toucher reclaims it — a wedged or vanished client cannot
//!   pin a plan forever. A lease with a producer in flight never expires
//!   (the result still needs the lease to land under); expiries are
//!   counted ([`PlanStore::lease_expiries`]);
//! * **pending producers** — while a solve or resubmit for an id is in
//!   flight, the id is marked pending; anyone else touching it (including
//!   the producing session's own later pipelined requests) gets
//!   [`StoreError::Pending`] until the producer finishes. A failed
//!   producer releases the id;
//! * **session drop** ([`PlanStore::drop_session`]) releases everything
//!   the session held — leases and pending markers — but keeps the stored
//!   plans: plans outlive their producing connection by design.
//!
//! [`PlanStore::finish`] reports a [`FinishOutcome`] instead of silently
//! swallowing a late result: a producer that lost its marker to a
//! `drop_session` while solving either lands its plan unleased (the id is
//! free) or learns the plan was discarded (the id has moved on), so a
//! frontend never has to answer "ok" for a plan that was never stored.
//!
//! For durability, [`PlanStore::restore`] re-inserts a recovered plan at
//! boot (unleased, no producer) and [`PlanStore::snapshot_plans`] lists
//! the retained plans for journal compaction; the journal itself lives in
//! the frontend (`slade-server`), which appends a record per mutation.
//!
//! The store never blocks on the engine: every operation is a short
//! critical section over one mutex, and the actual solving happens outside
//! with only the pending marker held. Plan and lease counts are maintained
//! live, so [`PlanStore::count`], [`PlanStore::leases`], and the
//! `retained` hint in [`StoreError::UnknownPlan`] are O(1) — no operation
//! on the hot path scans the table ([`PlanStore::scans`] counts the ones
//! that do, so a test can pin that claim).
//!
//! ## Lease state machine (per plan id)
//!
//! ```text
//!                 begin_produce(A)
//!    (absent) ───────────────────────▶ leased(A) + pending(A)
//!                                          │ finish(A, Some(plan))
//!                                          ▼
//!              claim(B) after A ──▶   leased(A) + plan
//!              releases/drops/   ◀──       │ release(A) / drop_session(A)
//!              expires                     │ / TTL elapses idle
//!                                          ▼
//!                                     unleased + plan ──▶ begin_resubmit(B)
//!                                                         re-enters leased(B)
//!                                                         + pending(B)
//! ```
//!
//! Invariant: whenever an id is pending, the pending session also holds
//! the lease — producing *is* the strongest form of holding. Expiry
//! preserves it: a pending lease is never expired.

use crate::service::ResolvedPlan;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Identifies one frontend session (connection) to the store. `0` is
/// reserved for "no session" by convention, but the store does not treat
/// any value specially.
pub type SessionId = u64;

/// A typed conflict from the [`PlanStore`]; frontends map these onto
/// structured protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The id names no stored plan. Carries the store's current plan count
    /// so error messages can hint at what *is* retained.
    UnknownPlan {
        /// The id that was looked up.
        id: String,
        /// Plans currently retained in the store.
        retained: usize,
    },
    /// Another session holds the id's lease.
    LeaseHeld {
        /// The contested id.
        id: String,
        /// The session holding the lease.
        owner: SessionId,
    },
    /// A producer (solve or resubmit) for the id is still in flight.
    Pending {
        /// The contested id.
        id: String,
        /// The session whose request is producing the plan.
        producer: SessionId,
        /// The producing request's `seq` tag, when it was pipelined.
        seq: Option<String>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownPlan { id, retained } => {
                write!(
                    f,
                    "unknown plan id `{id}`; the store retains {retained} plan(s)"
                )
            }
            StoreError::LeaseHeld { id, owner } => {
                write!(f, "plan id `{id}` is leased by session {owner}")
            }
            StoreError::Pending { id, producer, .. } => {
                write!(
                    f,
                    "plan id `{id}` is still being produced by session {producer}"
                )
            }
        }
    }
}

/// What happened to the result a producer handed to [`PlanStore::finish`].
///
/// The interesting cases arise when the producing session lost its pending
/// marker to a [`PlanStore::drop_session`] while the solve was in flight;
/// a frontend uses the outcome to answer the client truthfully instead of
/// reporting success for a plan that was never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a producer that lost its id must not report false success"]
pub enum FinishOutcome {
    /// The normal path: the session was the id's pending producer (or had
    /// nothing to roll back) and its result was applied.
    Applied,
    /// The session had lost the pending marker but the id was free, so the
    /// produced plan landed **unleased** — the work is preserved and any
    /// session (including the producer) can claim or resubmit it.
    LandedUnleased,
    /// The session had lost the pending marker and the id has since moved
    /// on (another plan, lease, or producer now owns it); the produced
    /// plan was discarded rather than clobbering newer state.
    Discarded,
}

/// The in-flight producer of a plan id.
#[derive(Debug, Clone)]
struct Producer {
    session: SessionId,
    /// The producing request's `seq` tag, echoed in conflict errors so a
    /// pipelining client can tell *which* of its requests to wait for.
    seq: Option<String>,
}

/// A held lease: the owner plus the instant of the owner's last store
/// operation on the id — the expiry clock when a TTL is configured.
#[derive(Debug, Clone)]
struct Lease {
    owner: SessionId,
    refreshed: Instant,
}

#[derive(Default)]
struct Entry {
    /// The stored plan; `None` while the id's first producer is in flight.
    plan: Option<Arc<ResolvedPlan>>,
    /// The session holding the id, if any.
    lease: Option<Lease>,
    /// Set while a solve/resubmit for the id is in flight.
    pending: Option<Producer>,
}

/// Everything behind the store's one mutex. `plans` and `leased` are live
/// counters maintained by every mutation, so reads never scan the table.
#[derive(Default)]
struct State {
    entries: HashMap<String, Entry>,
    /// Entries whose `plan` is `Some` — kept exact by every mutation.
    plans: usize,
    /// Entries whose `lease` is `Some` — kept exact by every mutation.
    leased: usize,
    /// When set, idle leases expire this long after their last refresh.
    ttl: Option<Duration>,
}

/// The shared store; see the module docs for the ownership discipline.
#[derive(Default)]
pub struct PlanStore {
    state: Mutex<State>,
    /// Operations rejected with [`StoreError::LeaseHeld`] — how often
    /// sessions actually contend for the same plan id.
    lease_conflicts: AtomicU64,
    /// Leases reclaimed because their TTL elapsed.
    lease_expiries: AtomicU64,
    /// Full-table scans performed (diagnostics/compaction paths only);
    /// pinned at zero across hot-path operations by a regression test.
    scans: AtomicU64,
}

/// Takes the id's lease for `session`, refreshing the expiry clock when
/// the session already holds it, and keeps the live lease count exact.
fn set_lease(entry: &mut Entry, session: SessionId, leased: &mut usize) {
    if entry.lease.is_none() {
        *leased += 1;
    }
    entry.lease = Some(Lease {
        owner: session,
        refreshed: Instant::now(),
    });
}

/// Drops the entry's lease, if any, keeping the live lease count exact.
fn clear_lease(entry: &mut Entry, leased: &mut usize) {
    if entry.lease.take().is_some() {
        *leased -= 1;
    }
}

/// The id's *live* lease owner: an expired lease (TTL elapsed since its
/// last refresh, no producer in flight) is reclaimed here — cleared and
/// counted — so every conflict check observes post-expiry state. Pending
/// leases never expire.
fn live_owner(
    entry: &mut Entry,
    ttl: Option<Duration>,
    leased: &mut usize,
    expiries: &AtomicU64,
) -> Option<SessionId> {
    let lease = entry.lease.as_ref()?;
    if entry.pending.is_none() {
        if let Some(ttl) = ttl {
            if lease.refreshed.elapsed() >= ttl {
                clear_lease(entry, leased);
                expiries.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
    }
    Some(entry.lease.as_ref().expect("lease checked above").owner)
}

impl PlanStore {
    /// An empty store. Leases do not expire until a TTL is configured with
    /// [`PlanStore::set_lease_ttl`].
    pub fn new() -> PlanStore {
        PlanStore::default()
    }

    // Store state is plain data, valid at every instruction boundary; a
    // panicking holder cannot leave an entry half-written.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Sets (or clears) the lease TTL: with `Some(ttl)`, an idle lease
    /// expires once `ttl` has elapsed since its holder's last store
    /// operation on the id and becomes reclaimable by any session;
    /// `Some(Duration::ZERO)` expires idle leases immediately (a
    /// deterministic test hook). `None` — the default — keeps leases until
    /// released or dropped. Leases with a producer in flight never expire.
    pub fn set_lease_ttl(&self, ttl: Option<Duration>) {
        self.lock().ttl = ttl;
    }

    /// Builds the [`StoreError::LeaseHeld`] rejection, counting it — every
    /// lease conflict the store ever reports flows through here.
    fn lease_held(&self, id: &str, owner: SessionId) -> StoreError {
        self.lease_conflicts.fetch_add(1, Ordering::Relaxed);
        StoreError::LeaseHeld {
            id: id.to_string(),
            owner,
        }
    }

    /// Marks `id` as being produced by `session`'s in-flight solve, taking
    /// the lease. Call [`PlanStore::finish`] when the solve completes (or
    /// fails). Fails with [`StoreError::Pending`] while another producer is
    /// in flight and [`StoreError::LeaseHeld`] when another session holds
    /// the id (and the lease has not expired).
    pub fn begin_produce(
        &self,
        session: SessionId,
        id: &str,
        seq: Option<&str>,
    ) -> Result<(), StoreError> {
        let mut guard = self.lock();
        let state = &mut *guard;
        let entry = state.entries.entry(id.to_string()).or_default();
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = live_owner(entry, state.ttl, &mut state.leased, &self.lease_expiries) {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        set_lease(entry, session, &mut state.leased);
        entry.pending = Some(Producer {
            session,
            seq: seq.map(str::to_string),
        });
        Ok(())
    }

    /// Fetches `id`'s plan for a resubmit by `session`, claiming the lease
    /// if the id is unleased (or its lease expired) and marking the id
    /// pending until [`PlanStore::finish`]. Fails with
    /// [`StoreError::UnknownPlan`] for an absent id, [`StoreError::Pending`]
    /// while a producer is in flight, and [`StoreError::LeaseHeld`] when
    /// another session holds the id.
    pub fn begin_resubmit(
        &self,
        session: SessionId,
        id: &str,
        seq: Option<&str>,
    ) -> Result<Arc<ResolvedPlan>, StoreError> {
        let mut guard = self.lock();
        let state = &mut *guard;
        let retained = state.plans;
        let Some(entry) = state.entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = live_owner(entry, state.ttl, &mut state.leased, &self.lease_expiries) {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        let Some(plan) = entry.plan.clone() else {
            // A lease without plan or producer only arises if a producer's
            // finish(None) raced a concurrent claim; treat it as unknown.
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        set_lease(entry, session, &mut state.leased);
        entry.pending = Some(Producer {
            session,
            seq: seq.map(str::to_string),
        });
        Ok(plan)
    }

    /// Completes `session`'s in-flight production of `id`: stores the plan
    /// (replacing any previous version) on success, or — when `produced` is
    /// `None` — rolls the marker back, removing the entry entirely if the
    /// failed producer was the id's first.
    ///
    /// The returned [`FinishOutcome`] tells the caller what happened when
    /// the session is *not* the pending producer (it lost the id to a
    /// [`PlanStore::drop_session`] while solving): a produced plan lands
    /// unleased if the id is free, and is discarded — reported, never
    /// silent — if the id has moved on. A `None` result with no marker to
    /// roll back is a harmless no-op (`Applied`).
    pub fn finish(
        &self,
        session: SessionId,
        id: &str,
        produced: Option<Arc<ResolvedPlan>>,
    ) -> FinishOutcome {
        let mut guard = self.lock();
        let state = &mut *guard;
        match state.entries.get_mut(id) {
            Some(entry) if matches!(&entry.pending, Some(p) if p.session == session) => {
                entry.pending = None;
                if let Some(plan) = produced {
                    if entry.plan.replace(plan).is_none() {
                        state.plans += 1;
                    }
                    // Landing the result is a holder operation: refresh the
                    // lease's expiry clock.
                    if let Some(lease) = &mut entry.lease {
                        if lease.owner == session {
                            lease.refreshed = Instant::now();
                        }
                    }
                } else if entry.plan.is_none() {
                    clear_lease(entry, &mut state.leased);
                    state.entries.remove(id);
                }
                FinishOutcome::Applied
            }
            existing => match produced {
                // Nothing to roll back: the marker is already gone.
                None => FinishOutcome::Applied,
                Some(plan) => {
                    if existing.is_some() {
                        // The id has moved on (a newer plan, lease, or
                        // producer); never clobber it with a stale result.
                        return FinishOutcome::Discarded;
                    }
                    state.entries.insert(
                        id.to_string(),
                        Entry {
                            plan: Some(plan),
                            lease: None,
                            pending: None,
                        },
                    );
                    state.plans += 1;
                    FinishOutcome::LandedUnleased
                }
            },
        }
    }

    /// Takes `id`'s lease for `session` (idempotent when already held,
    /// refreshing the expiry clock; an expired lease is reclaimed). Fails
    /// with [`StoreError::UnknownPlan`] for an absent id,
    /// [`StoreError::Pending`] while a producer is in flight, and
    /// [`StoreError::LeaseHeld`] when another session holds a live lease —
    /// claiming never steals.
    pub fn claim(&self, session: SessionId, id: &str) -> Result<(), StoreError> {
        let mut guard = self.lock();
        let state = &mut *guard;
        let retained = state.plans;
        let Some(entry) = state.entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            if producer.session != session {
                return Err(StoreError::Pending {
                    id: id.to_string(),
                    producer: producer.session,
                    seq: producer.seq.clone(),
                });
            }
        }
        if let Some(owner) = live_owner(entry, state.ttl, &mut state.leased, &self.lease_expiries) {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        set_lease(entry, session, &mut state.leased);
        Ok(())
    }

    /// Releases `session`'s lease on `id` so another session can claim it
    /// (idempotent when the id is already unleased or its lease expired).
    /// Fails with [`StoreError::UnknownPlan`] for an absent id,
    /// [`StoreError::Pending`] while a producer is in flight (the producer
    /// must finish first — its result still needs the lease to land under),
    /// and [`StoreError::LeaseHeld`] when the lease belongs to someone
    /// else.
    pub fn release(&self, session: SessionId, id: &str) -> Result<(), StoreError> {
        let mut guard = self.lock();
        let state = &mut *guard;
        let retained = state.plans;
        let Some(entry) = state.entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = live_owner(entry, state.ttl, &mut state.leased, &self.lease_expiries) {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        clear_lease(entry, &mut state.leased);
        Ok(())
    }

    /// Releases everything `session` holds — leases and pending markers —
    /// keeping the stored plans (plans outlive their producing connection).
    /// Entries that never got a plan (the session disconnected mid-produce)
    /// are removed. This is the store's one remaining full-table scan; it
    /// runs once per disconnecting session, never on the request path.
    pub fn drop_session(&self, session: SessionId) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.lock();
        let state = &mut *guard;
        let mut released = 0usize;
        state.entries.retain(|_, entry| {
            if matches!(&entry.pending, Some(p) if p.session == session) {
                entry.pending = None;
            }
            if matches!(&entry.lease, Some(l) if l.owner == session) {
                entry.lease = None;
                released += 1;
            }
            let keep = entry.plan.is_some() || entry.pending.is_some();
            if !keep && entry.lease.take().is_some() {
                // Defensive: a removed entry must not leak its lease count.
                released += 1;
            }
            keep
        });
        state.leased -= released;
    }

    /// Re-inserts a recovered plan at boot — the journal-replay path. The
    /// plan lands unleased with no producer (the sessions that held it
    /// died with the previous process); an existing plan under `id` is
    /// replaced (last journal record wins), leases and markers untouched.
    pub fn restore(&self, id: &str, plan: Arc<ResolvedPlan>) {
        let mut guard = self.lock();
        let state = &mut *guard;
        let entry = state.entries.entry(id.to_string()).or_default();
        if entry.plan.replace(plan).is_none() {
            state.plans += 1;
        }
    }

    /// The retained plans, id-sorted — the journal-compaction snapshot.
    /// Scans the table; compaction is rare and off the request path.
    pub fn snapshot_plans(&self) -> Vec<(String, Arc<ResolvedPlan>)> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let guard = self.lock();
        let mut plans: Vec<(String, Arc<ResolvedPlan>)> = guard
            .entries
            .iter()
            .filter_map(|(id, entry)| entry.plan.clone().map(|plan| (id.clone(), plan)))
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        plans
    }

    /// Plans currently retained (pending-only entries don't count). O(1):
    /// maintained live, never recounted.
    pub fn count(&self) -> usize {
        self.lock().plans
    }

    /// Ids currently leased by some session. O(1): maintained live. An
    /// expired-but-unreclaimed lease still counts until an operation on its
    /// id observes the expiry (expiry is lazy).
    pub fn leases(&self) -> usize {
        self.lock().leased
    }

    /// Operations rejected with [`StoreError::LeaseHeld`] since the store
    /// was created — a monotone contention counter.
    pub fn lease_conflicts(&self) -> u64 {
        self.lease_conflicts.load(Ordering::Relaxed)
    }

    /// Leases reclaimed because their TTL elapsed — a monotone counter.
    pub fn lease_expiries(&self) -> u64 {
        self.lease_expiries.load(Ordering::Relaxed)
    }

    /// Full-table scans performed since the store was created. A
    /// diagnostic: the regression test pins this at zero across
    /// `begin_resubmit`/`claim`/`release` so the O(1) claim stays true.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Test-support snapshot of each entry's ownership state:
    /// `(id, has_plan, lease owner, pending producer)`, id-sorted. Takes
    /// the lock and scans — property tests and diagnostics only. Reading
    /// does not trigger lazy expiry.
    #[doc(hidden)]
    pub fn debug_ownership(&self) -> Vec<(String, bool, Option<SessionId>, Option<SessionId>)> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let guard = self.lock();
        let mut rows: Vec<(String, bool, Option<SessionId>, Option<SessionId>)> = guard
            .entries
            .iter()
            .map(|(id, entry)| {
                (
                    id.clone(),
                    entry.plan.is_some(),
                    entry.lease.as_ref().map(|l| l.owner),
                    entry.pending.as_ref().map(|p| p.session),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}
