//! An engine-owned, cross-session store of named [`ResolvedPlan`]s.
//!
//! Frontends used to keep plan namespaces per connection: a plan retained
//! on connection A simply did not exist for connection B, and the pending
//! marker that kept a pipelined `resubmit` from racing its producer lived
//! in the same per-connection map. This module promotes both to one shared
//! store with an ownership discipline, so a plan produced on one
//! connection can be claimed and resubmitted from another (load-balanced
//! clients, session failover) without giving up the race protection:
//!
//! * **plans** are stored under caller-chosen string ids, engine-wide;
//! * **leases** — at most one session holds a plan id at a time. Producing
//!   under an id takes the lease implicitly, resubmitting an unleased id
//!   claims it implicitly, and [`PlanStore::claim`] /
//!   [`PlanStore::release`] move it explicitly. A second session touching
//!   a leased id gets [`StoreError::LeaseHeld`] — a typed conflict, not a
//!   silent overwrite;
//! * **pending producers** — while a solve or resubmit for an id is in
//!   flight, the id is marked pending; anyone else touching it (including
//!   the producing session's own later pipelined requests) gets
//!   [`StoreError::Pending`] until the producer finishes. A failed
//!   producer releases the id;
//! * **session drop** ([`PlanStore::drop_session`]) releases everything
//!   the session held — leases and pending markers — but keeps the stored
//!   plans: plans outlive their producing connection by design.
//!
//! The store never blocks on the engine: every operation is a short
//! critical section over one mutex, and the actual solving happens outside
//! with only the pending marker held.
//!
//! ## Lease state machine (per plan id)
//!
//! ```text
//!                 begin_produce(A)
//!    (absent) ───────────────────────▶ leased(A) + pending(A)
//!                                          │ finish(A, Some(plan))
//!                                          ▼
//!              claim(B) after A ──▶   leased(A) + plan
//!              releases/drops   ◀──       │ release(A) / drop_session(A)
//!                                          ▼
//!                                     unleased + plan ──▶ begin_resubmit(B)
//!                                                         re-enters leased(B)
//!                                                         + pending(B)
//! ```
//!
//! Invariant: whenever an id is pending, the pending session also holds
//! the lease — producing *is* the strongest form of holding.

use crate::service::ResolvedPlan;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies one frontend session (connection) to the store. `0` is
/// reserved for "no session" by convention, but the store does not treat
/// any value specially.
pub type SessionId = u64;

/// A typed conflict from the [`PlanStore`]; frontends map these onto
/// structured protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The id names no stored plan. Carries the store's current plan count
    /// so error messages can hint at what *is* retained.
    UnknownPlan {
        /// The id that was looked up.
        id: String,
        /// Plans currently retained in the store.
        retained: usize,
    },
    /// Another session holds the id's lease.
    LeaseHeld {
        /// The contested id.
        id: String,
        /// The session holding the lease.
        owner: SessionId,
    },
    /// A producer (solve or resubmit) for the id is still in flight.
    Pending {
        /// The contested id.
        id: String,
        /// The session whose request is producing the plan.
        producer: SessionId,
        /// The producing request's `seq` tag, when it was pipelined.
        seq: Option<String>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownPlan { id, retained } => {
                write!(
                    f,
                    "unknown plan id `{id}`; the store retains {retained} plan(s)"
                )
            }
            StoreError::LeaseHeld { id, owner } => {
                write!(f, "plan id `{id}` is leased by session {owner}")
            }
            StoreError::Pending { id, producer, .. } => {
                write!(
                    f,
                    "plan id `{id}` is still being produced by session {producer}"
                )
            }
        }
    }
}

/// The in-flight producer of a plan id.
#[derive(Debug, Clone)]
struct Producer {
    session: SessionId,
    /// The producing request's `seq` tag, echoed in conflict errors so a
    /// pipelining client can tell *which* of its requests to wait for.
    seq: Option<String>,
}

#[derive(Default)]
struct Entry {
    /// The stored plan; `None` while the id's first producer is in flight.
    plan: Option<Arc<ResolvedPlan>>,
    /// The session holding the id, if any.
    lease: Option<SessionId>,
    /// Set while a solve/resubmit for the id is in flight.
    pending: Option<Producer>,
}

/// The shared store; see the module docs for the ownership discipline.
#[derive(Default)]
pub struct PlanStore {
    entries: Mutex<HashMap<String, Entry>>,
    /// Operations rejected with [`StoreError::LeaseHeld`] — how often
    /// sessions actually contend for the same plan id.
    lease_conflicts: AtomicU64,
}

impl PlanStore {
    /// An empty store.
    pub fn new() -> PlanStore {
        PlanStore::default()
    }

    // Store state is plain data, valid at every instruction boundary; a
    // panicking holder cannot leave an entry half-written.
    fn lock(&self) -> MutexGuard<'_, HashMap<String, Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Builds the [`StoreError::LeaseHeld`] rejection, counting it — every
    /// lease conflict the store ever reports flows through here.
    fn lease_held(&self, id: &str, owner: SessionId) -> StoreError {
        self.lease_conflicts.fetch_add(1, Ordering::Relaxed);
        StoreError::LeaseHeld {
            id: id.to_string(),
            owner,
        }
    }

    /// Marks `id` as being produced by `session`'s in-flight solve, taking
    /// the lease. Call [`PlanStore::finish`] when the solve completes (or
    /// fails). Fails with [`StoreError::Pending`] while another producer is
    /// in flight and [`StoreError::LeaseHeld`] when another session holds
    /// the id.
    pub fn begin_produce(
        &self,
        session: SessionId,
        id: &str,
        seq: Option<&str>,
    ) -> Result<(), StoreError> {
        let mut entries = self.lock();
        let entry = entries.entry(id.to_string()).or_default();
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = entry.lease {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        entry.lease = Some(session);
        entry.pending = Some(Producer {
            session,
            seq: seq.map(str::to_string),
        });
        Ok(())
    }

    /// Fetches `id`'s plan for a resubmit by `session`, claiming the lease
    /// if the id is unleased and marking the id pending until
    /// [`PlanStore::finish`]. Fails with [`StoreError::UnknownPlan`] for an
    /// absent id, [`StoreError::Pending`] while a producer is in flight,
    /// and [`StoreError::LeaseHeld`] when another session holds the id.
    pub fn begin_resubmit(
        &self,
        session: SessionId,
        id: &str,
        seq: Option<&str>,
    ) -> Result<Arc<ResolvedPlan>, StoreError> {
        let mut entries = self.lock();
        let retained = count_plans(&entries);
        let Some(entry) = entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = entry.lease {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        let Some(plan) = entry.plan.clone() else {
            // A lease without plan or producer only arises if a producer's
            // finish(None) raced a concurrent claim; treat it as unknown.
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        entry.lease = Some(session);
        entry.pending = Some(Producer {
            session,
            seq: seq.map(str::to_string),
        });
        Ok(plan)
    }

    /// Completes `session`'s in-flight production of `id`: stores the plan
    /// (replacing any previous version) on success, or — when `produced` is
    /// `None` — rolls the marker back, removing the entry entirely if the
    /// failed producer was the id's first. A finish for an id the session
    /// is not the pending producer of is a no-op (the session lost the id
    /// to a `drop_session` while solving).
    pub fn finish(&self, session: SessionId, id: &str, produced: Option<Arc<ResolvedPlan>>) {
        let mut entries = self.lock();
        let Some(entry) = entries.get_mut(id) else {
            return;
        };
        if !matches!(&entry.pending, Some(p) if p.session == session) {
            return;
        }
        entry.pending = None;
        if let Some(plan) = produced {
            entry.plan = Some(plan);
        } else if entry.plan.is_none() {
            entries.remove(id);
        }
    }

    /// Takes `id`'s lease for `session` (idempotent when already held).
    /// Fails with [`StoreError::UnknownPlan`] for an absent id,
    /// [`StoreError::Pending`] while a producer is in flight, and
    /// [`StoreError::LeaseHeld`] when another session holds the lease —
    /// claiming never steals.
    pub fn claim(&self, session: SessionId, id: &str) -> Result<(), StoreError> {
        let mut entries = self.lock();
        let retained = count_plans(&entries);
        let Some(entry) = entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            if producer.session != session {
                return Err(StoreError::Pending {
                    id: id.to_string(),
                    producer: producer.session,
                    seq: producer.seq.clone(),
                });
            }
        }
        if let Some(owner) = entry.lease {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        entry.lease = Some(session);
        Ok(())
    }

    /// Releases `session`'s lease on `id` so another session can claim it
    /// (idempotent when the id is already unleased). Fails with
    /// [`StoreError::UnknownPlan`] for an absent id, [`StoreError::Pending`]
    /// while a producer is in flight (the producer must finish first — its
    /// result still needs the lease to land under), and
    /// [`StoreError::LeaseHeld`] when the lease belongs to someone else.
    pub fn release(&self, session: SessionId, id: &str) -> Result<(), StoreError> {
        let mut entries = self.lock();
        let retained = count_plans(&entries);
        let Some(entry) = entries.get_mut(id) else {
            return Err(StoreError::UnknownPlan {
                id: id.to_string(),
                retained,
            });
        };
        if let Some(producer) = &entry.pending {
            return Err(StoreError::Pending {
                id: id.to_string(),
                producer: producer.session,
                seq: producer.seq.clone(),
            });
        }
        if let Some(owner) = entry.lease {
            if owner != session {
                return Err(self.lease_held(id, owner));
            }
        }
        entry.lease = None;
        Ok(())
    }

    /// Releases everything `session` holds — leases and pending markers —
    /// keeping the stored plans (plans outlive their producing connection).
    /// Entries that never got a plan (the session disconnected mid-produce)
    /// are removed.
    pub fn drop_session(&self, session: SessionId) {
        let mut entries = self.lock();
        entries.retain(|_, entry| {
            if matches!(&entry.pending, Some(p) if p.session == session) {
                entry.pending = None;
            }
            if entry.lease == Some(session) {
                entry.lease = None;
            }
            entry.plan.is_some() || entry.pending.is_some()
        });
    }

    /// Plans currently retained (pending-only entries don't count).
    pub fn count(&self) -> usize {
        count_plans(&self.lock())
    }

    /// Ids currently leased by some session.
    pub fn leases(&self) -> usize {
        self.lock().values().filter(|e| e.lease.is_some()).count()
    }

    /// Operations rejected with [`StoreError::LeaseHeld`] since the store
    /// was created — a monotone contention counter.
    pub fn lease_conflicts(&self) -> u64 {
        self.lease_conflicts.load(Ordering::Relaxed)
    }
}

fn count_plans(entries: &HashMap<String, Entry>) -> usize {
    entries.values().filter(|e| e.plan.is_some()).count()
}
