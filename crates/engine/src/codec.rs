//! A versioned, bit-exact JSON codec for [`ResolvedPlan`] — the
//! serialization half of plan durability.
//!
//! A [`ResolvedPlan`] is more than its merged plan: resubmission needs the
//! original request (algorithm, workload, bin menu, seed), the per-shard
//! work descriptors, the raw pre-remap shard outputs, and the producing
//! engine's solver knob words. [`encode`] captures all of it in one JSON
//! object; [`decode`] reassembles a plan that **resubmits byte-identically
//! to the original** — the property the server's journal-replay recovery
//! rests on, pinned by this module's tests and the kill-and-restart e2e.
//!
//! Encoding rules, chosen so round trips are exact:
//!
//! * finite `f64`s (thresholds, costs, confidences) travel as JSON
//!   numbers — the shared [`slade_json`] serializer prints shortest
//!   round-trip form, so the parse of the print is the same bit pattern;
//! * full-width `u64`s (the seed, signatures, knob words) travel as
//!   `"0x…"` hex strings — an `f64` JSON number is only exact to 2⁵³;
//! * the workload and bin menu are stored structurally (task counts,
//!   thresholds, `(l, r, c)` triples) and rebuilt through their normal
//!   validating constructors, with FNV signatures stored alongside as an
//!   integrity check against silent corruption;
//! * sub-plans keep their raw shard-local task ids; the merged plan is
//!   stored only when it does not alias `subs[0]` (the unwrapped
//!   single-shard case stores `null` and re-aliases on decode), so the
//!   decoded plan has the same sharing structure as the original.
//!
//! The object carries a version member (`"v"`); [`decode`] rejects
//! versions it does not understand rather than guessing. Decoding is
//! total: malformed or corrupted input — including a journal tail hit by
//! a crash mid-append — returns `Err`, never panics, and a decoded merged
//! plan is audited against its own workload and bin menu before being
//! accepted.

use crate::service::{EngineRequest, ResolvedPlan, ShardWork};
use slade_core::bin_set::BinSet;
use slade_core::fingerprint::KnobSink;
use slade_core::plan::{DecompositionPlan, PlannedBin};
use slade_core::solver::Algorithm;
use slade_core::task::{TaskId, Workload};
use slade_json::{member, Json};
use std::str::FromStr;
use std::sync::Arc;

/// The codec's current (and only) format version.
pub const CODEC_VERSION: u32 = 1;

/// Serializes a resolved plan into one self-contained JSON object.
///
/// The output is deterministic (member order is fixed, floats print in
/// shortest-round-trip form), so `encode(decode(encode(x)))` is the same
/// byte string as `encode(x)` — the journal's replay-idempotence tests
/// compare exactly that.
pub fn encode(resolved: &ResolvedPlan) -> Json {
    let workload = resolved.workload();
    let bins = resolved.bins();
    let merged =
        if !resolved.subs().is_empty() && Arc::ptr_eq(resolved.merged(), &resolved.subs()[0]) {
            // Unwrapped single shard: the merged plan aliases `subs[0]`; store
            // the aliasing, not a second copy.
            Json::Null
        } else {
            encode_plan(resolved.merged())
        };
    Json::Object(vec![
        member("v", Json::number(f64::from(CODEC_VERSION))),
        member("algorithm", Json::string(resolved.algorithm().name())),
        member("seed", hex(resolved.seed())),
        member("workload", encode_workload(workload)),
        member("workload_sig", hex(workload.signature())),
        member(
            "bins",
            Json::Array(
                bins.bins()
                    .iter()
                    .map(|b| {
                        Json::Array(vec![
                            Json::number(f64::from(b.cardinality())),
                            Json::number(b.confidence()),
                            Json::number(b.cost()),
                        ])
                    })
                    .collect(),
            ),
        ),
        member("bins_sig", hex(bins.signature())),
        member(
            "knobs",
            Json::Array(resolved.knob_words().iter().map(|&w| hex(w)).collect()),
        ),
        member(
            "works",
            Json::Array(resolved.works().iter().map(encode_work).collect()),
        ),
        member(
            "subs",
            Json::Array(resolved.subs().iter().map(|s| encode_plan(s)).collect()),
        ),
        member("merged", merged),
        member(
            "reused_shards",
            Json::number(resolved.reused_shards() as f64),
        ),
    ])
}

/// Reassembles a resolved plan from [`encode`]'s output.
///
/// Total over arbitrary input: structural problems, version mismatches,
/// signature mismatches, and plans that fail their own audit all come back
/// as `Err(description)` — a corrupted journal record can never panic the
/// replayer or smuggle in an inconsistent plan.
pub fn decode(json: &Json) -> Result<ResolvedPlan, String> {
    let version = u32_of(req(json, "v")?, "`v`")?;
    if version != CODEC_VERSION {
        return Err(format!(
            "unsupported plan codec version {version} (this build reads {CODEC_VERSION})"
        ));
    }

    let algorithm_name = str_of(req(json, "algorithm")?, "`algorithm`")?;
    let algorithm = Algorithm::from_str(algorithm_name)
        .map_err(|_| format!("unknown algorithm `{algorithm_name}`"))?;
    let seed = hex_of(req(json, "seed")?, "`seed`")?;

    let workload = decode_workload(req(json, "workload")?)?;
    let workload_sig = hex_of(req(json, "workload_sig")?, "`workload_sig`")?;
    if workload.signature() != workload_sig {
        return Err("workload signature mismatch (corrupted record?)".into());
    }

    let mut triples: Vec<(u32, f64, f64)> = Vec::new();
    for bin in array_of(req(json, "bins")?, "`bins`")? {
        let parts = array_of(bin, "bin triple")?;
        if parts.len() != 3 {
            return Err("bin triple must be [cardinality, confidence, cost]".into());
        }
        triples.push((
            u32_of(&parts[0], "bin cardinality")?,
            f64_of(&parts[1], "bin confidence")?,
            f64_of(&parts[2], "bin cost")?,
        ));
    }
    let bins = Arc::new(BinSet::new(triples).map_err(|e| format!("invalid bin set: {e}"))?);
    let bins_sig = hex_of(req(json, "bins_sig")?, "`bins_sig`")?;
    if bins.signature() != bins_sig {
        return Err("bin set signature mismatch (corrupted record?)".into());
    }

    let mut knobs = KnobSink::new();
    for word in array_of(req(json, "knobs")?, "`knobs`")? {
        // `write_u64` records the word verbatim, so this loop reconstructs
        // the producing engine's sink exactly.
        knobs.write_u64(hex_of(word, "knob word")?);
    }

    let works = array_of(req(json, "works")?, "`works`")?
        .iter()
        .map(decode_work)
        .collect::<Result<Vec<ShardWork>, String>>()?;
    let subs = array_of(req(json, "subs")?, "`subs`")?
        .iter()
        .map(|sub| decode_plan(sub).map(Arc::new))
        .collect::<Result<Vec<Arc<DecompositionPlan>>, String>>()?;
    if works.len() != subs.len() || works.is_empty() {
        return Err(format!(
            "shard tables disagree: {} work descriptor(s) vs {} sub-plan(s)",
            works.len(),
            subs.len()
        ));
    }

    let merged = req(json, "merged")?;
    let plan = if matches!(merged, Json::Null) {
        Arc::clone(&subs[0])
    } else {
        Arc::new(decode_plan(merged)?)
    };
    // The merged plan carries global task ids, so it can be audited against
    // the decoded instance; sub-plans keep shard-local ids and cannot.
    plan.validate(&workload, &bins)
        .map_err(|e| format!("decoded plan failed its audit: {e}"))?;

    let reused_shards = u32_of(req(json, "reused_shards")?, "`reused_shards`")? as usize;

    let request = EngineRequest::new(algorithm, workload, bins).with_seed(seed);
    Ok(ResolvedPlan::from_codec_parts(
        request,
        works,
        knobs,
        subs,
        plan,
        reused_shards,
    ))
}

fn encode_workload(workload: &Workload) -> Json {
    if workload.is_homogeneous() {
        Json::Object(vec![
            member("tasks", Json::number(f64::from(workload.len()))),
            member("threshold", Json::number(workload.threshold(0))),
        ])
    } else {
        Json::Object(vec![member(
            "thresholds",
            Json::Array(
                (0..workload.len())
                    .map(|i| Json::number(workload.threshold(i)))
                    .collect(),
            ),
        )])
    }
}

fn decode_workload(json: &Json) -> Result<Workload, String> {
    if let Some(tasks) = json.get("tasks") {
        let n = u32_of(tasks, "workload `tasks`")?;
        let t = f64_of(req(json, "threshold")?, "workload `threshold`")?;
        Workload::homogeneous(n, t).map_err(|e| format!("invalid workload: {e}"))
    } else {
        let thresholds = array_of(req(json, "thresholds")?, "workload `thresholds`")?
            .iter()
            .map(|t| f64_of(t, "workload threshold"))
            .collect::<Result<Vec<f64>, String>>()?;
        // `heterogeneous` collapses an all-equal vector to the homogeneous
        // representation exactly like the original construction did, so the
        // decoded workload is structurally identical, not just equal.
        Workload::heterogeneous(thresholds).map_err(|e| format!("invalid workload: {e}"))
    }
}

fn encode_work(work: &ShardWork) -> Json {
    match work {
        ShardWork::Opq { n, threshold } => Json::Object(vec![
            member("n", Json::number(f64::from(*n))),
            member("threshold", Json::number(*threshold)),
        ]),
        ShardWork::Prepared => Json::string("prepared"),
    }
}

fn decode_work(json: &Json) -> Result<ShardWork, String> {
    match json {
        Json::String(s) if s == "prepared" => Ok(ShardWork::Prepared),
        Json::Object(_) => Ok(ShardWork::Opq {
            n: u32_of(req(json, "n")?, "shard `n`")?,
            threshold: f64_of(req(json, "threshold")?, "shard `threshold`")?,
        }),
        other => Err(format!(
            "shard work must be an object or \"prepared\", got {}",
            other.type_name()
        )),
    }
}

fn encode_plan(plan: &DecompositionPlan) -> Json {
    Json::Object(vec![
        member("algorithm", Json::string(plan.algorithm())),
        member("cost", Json::number(plan.total_cost())),
        member(
            "bins",
            Json::Array(
                plan.bins()
                    .iter()
                    .map(|bin| {
                        Json::Array(vec![
                            Json::number(f64::from(bin.cardinality())),
                            Json::Array(
                                bin.tasks()
                                    .iter()
                                    .map(|&t| Json::number(f64::from(t)))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_plan(json: &Json) -> Result<DecompositionPlan, String> {
    let label = plan_label(str_of(req(json, "algorithm")?, "plan `algorithm`")?)?;
    let cost = f64_of(req(json, "cost")?, "plan `cost`")?;
    let mut bins: Vec<PlannedBin> = Vec::new();
    for posted in array_of(req(json, "bins")?, "plan `bins`")? {
        let pair = array_of(posted, "posted bin")?;
        if pair.len() != 2 {
            return Err("posted bin must be [cardinality, [tasks…]]".into());
        }
        let cardinality = u32_of(&pair[0], "posted-bin cardinality")?;
        let tasks = array_of(&pair[1], "posted-bin tasks")?
            .iter()
            .map(|t| u32_of(t, "task id").map(|id| id as TaskId))
            .collect::<Result<Vec<TaskId>, String>>()?;
        bins.push(PlannedBin::new(cardinality, tasks));
    }
    Ok(DecompositionPlan::from_parts(label, bins, cost))
}

/// Maps a stored plan label back to the `&'static str` the solver registry
/// stamps on plans. Every engine-produced plan is labeled by some
/// registered solver, so an unknown label means corruption.
fn plan_label(name: &str) -> Result<&'static str, String> {
    Algorithm::ALL
        .iter()
        .map(|a| a.solver().name())
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown plan label `{name}`"))
}

fn hex(value: u64) -> Json {
    Json::string(format!("{value:#x}"))
}

fn req<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing member `{key}`"))
}

fn str_of<'a>(json: &'a Json, what: &str) -> Result<&'a str, String> {
    json.as_str()
        .ok_or_else(|| format!("{what} must be a string, got {}", json.type_name()))
}

fn array_of<'a>(json: &'a Json, what: &str) -> Result<&'a [Json], String> {
    json.as_array()
        .ok_or_else(|| format!("{what} must be an array, got {}", json.type_name()))
}

fn f64_of(json: &Json, what: &str) -> Result<f64, String> {
    json.as_f64()
        .ok_or_else(|| format!("{what} must be a number, got {}", json.type_name()))
}

fn u32_of(json: &Json, what: &str) -> Result<u32, String> {
    let x = f64_of(json, what)?;
    if x.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&x) {
        return Err(format!("{what} must be an integer in u32 range, got {x}"));
    }
    Ok(x as u32)
}

fn hex_of(json: &Json, what: &str) -> Result<u64, String> {
    let s = str_of(json, what)?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what} must be a 0x-prefixed hex string, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("{what} is not valid hex: `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Engine, EngineConfig, WorkloadDelta};

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
    }

    fn paper_bins() -> Arc<BinSet> {
        Arc::new(BinSet::paper_example())
    }

    fn requests() -> Vec<EngineRequest> {
        let mut out = vec![
            // Example 9: homogeneous OPQ, single unwrapped shard.
            EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(4, 0.95).unwrap(),
                paper_bins(),
            ),
            // Heterogeneous buckets: multi-shard with remaps and a merged
            // plan distinct from subs[0]. Awkward decimals on purpose.
            EngineRequest::new(
                Algorithm::OpqExtended,
                Workload::heterogeneous(vec![0.95, 0.8, 0.95, 0.1 + 0.2, 0.8, 0.99]).unwrap(),
                paper_bins(),
            ),
            // Prepared pass-through shard.
            EngineRequest::new(
                Algorithm::Greedy,
                Workload::homogeneous(7, 0.9).unwrap(),
                paper_bins(),
            ),
            // Randomized solver: the seed must survive the round trip.
            EngineRequest::new(
                Algorithm::Baseline,
                Workload::homogeneous(5, 0.9).unwrap(),
                paper_bins(),
            )
            .with_seed(0xdead_beef_cafe_f00d),
        ];
        out.push(out[0].clone().with_seed(u64::MAX));
        out
    }

    #[test]
    fn encode_decode_is_the_identity_on_the_encoding() {
        let engine = engine();
        for request in requests() {
            let resolved = engine.solve_resolved(request).unwrap();
            let encoded = encode(&resolved).to_string();
            let decoded = decode(&slade_json::parse(&encoded).unwrap()).unwrap();
            // Bit-exact: re-encoding the decoded plan reproduces the bytes.
            assert_eq!(encode(&decoded).to_string(), encoded);
            assert_eq!(decoded.plan(), resolved.plan());
            assert_eq!(decoded.workload(), resolved.workload());
            assert_eq!(decoded.seed(), resolved.seed());
            assert_eq!(decoded.shards(), resolved.shards());
        }
        engine.shutdown();
    }

    #[test]
    fn decoded_plans_resubmit_byte_identically() {
        let engine = engine();
        for request in requests() {
            let deltas = if request.workload.is_homogeneous() {
                vec![WorkloadDelta::Resize(9), WorkloadDelta::Resize(40)]
            } else {
                // Heterogeneous workloads can only shrink or append (growing
                // needs thresholds), and only the bucketing solver runs them.
                vec![
                    WorkloadDelta::Resize(3),
                    WorkloadDelta::Append(vec![0.5, 0.9]),
                ]
            };
            let original = engine.solve_resolved(request).unwrap();
            let decoded = decode(&encode(&original)).unwrap();
            for delta in &deltas {
                let from_original = engine.resubmit(&original, delta).unwrap();
                let from_decoded = engine.resubmit(&decoded, delta).unwrap();
                assert_eq!(from_decoded.plan(), from_original.plan());
                // Shard reuse works identically across the decode boundary,
                // so recovery loses none of the incremental speedup.
                assert_eq!(from_decoded.reused_shards(), from_original.reused_shards());
                assert_eq!(
                    encode(&from_decoded).to_string(),
                    encode(&from_original).to_string()
                );
            }
        }
        engine.shutdown();
    }

    #[test]
    fn resubmitted_plans_round_trip_with_reused_shards() {
        let engine = engine();
        let request = EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(vec![0.95, 0.8, 0.95, 0.8, 0.99, 0.99]).unwrap(),
            paper_bins(),
        );
        let resolved = engine.solve_resolved(request).unwrap();
        // Appending one more 0.99-task leaves the other buckets untouched.
        let grown = engine
            .resubmit(&resolved, &WorkloadDelta::Append(vec![0.99]))
            .unwrap();
        assert!(grown.reused_shards() > 0, "delta should reuse shards");
        let encoded = encode(&grown).to_string();
        let decoded = decode(&slade_json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.reused_shards(), grown.reused_shards());
        assert_eq!(encode(&decoded).to_string(), encoded);
        engine.shutdown();
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let engine = engine();
        let resolved = engine
            .solve_resolved(EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(4, 0.95).unwrap(),
                paper_bins(),
            ))
            .unwrap();
        engine.shutdown();
        let good = encode(&resolved).to_string();

        // Wrong version, missing members, bad types, tampered payloads.
        for bad in [
            r#"{"v":2}"#.to_string(),
            r#"{"v":1}"#.to_string(),
            "[]".to_string(),
            "null".to_string(),
            good.replace("opq-based", "no-such-algorithm"),
            good.replace("\"workload_sig\":\"0x", "\"workload_sig\":\"0xf"),
            good.replace("\"bins_sig\":\"0x", "\"bins_sig\":\"0xf"),
            good.replace("\"seed\":\"0x0\"", "\"seed\":7"),
            good.replace("\"tasks\":4", "\"tasks\":0"),
            good.replace("\"works\":[", "\"works\":[\"prepared\","),
        ] {
            if let Ok(json) = slade_json::parse(&bad) {
                assert!(decode(&json).is_err(), "accepted corrupted record: {bad}");
            }
        }

        // Every single-byte truncation either fails to parse or to decode —
        // nothing in this pipeline panics on a torn record.
        for cut in 1..good.len() {
            if let Ok(json) = slade_json::parse(&good[..cut]) {
                assert!(decode(&json).is_err(), "accepted truncation at {cut}");
            }
        }
    }
}
