//! The engine: a work-stealing worker pool, request sharding, blocking
//! handles, and incremental workload deltas.

use crate::cache::{ArtifactCache, CacheImpl, CacheKey, CacheStats};
use crate::sched::{Job, JobCtx, Scheduler, SchedulerMode};
use slade_core::baseline::{Baseline, BaselineConfig};
use slade_core::bin_set::BinSet;
use slade_core::fingerprint::Fingerprint;
use slade_core::hetero;
use slade_core::opq_based::OpqBased;
use slade_core::plan::DecompositionPlan;
use slade_core::reliability;
use slade_core::solver::{Algorithm, PreparedSolver};
use slade_core::task::{TaskId, Workload};
use slade_core::SladeError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads in the pool (clamped to at least 1). The default is
    /// the machine's available parallelism.
    pub threads: usize,
    /// Bound on jobs queued but not yet claimed by a worker;
    /// [`Engine::submit`] blocks when it is reached, which is the engine's
    /// backpressure. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Which queueing discipline the worker pool runs. The default,
    /// [`SchedulerMode::WorkSteal`], gives each worker its own deque and
    /// lets idle workers steal; [`SchedulerMode::SharedQueue`] is the
    /// engine's original single-FIFO discipline, kept for A/B comparison.
    /// Plans are byte-identical under either mode.
    pub scheduler: SchedulerMode,
    /// [`ArtifactCache`] capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Which [`ArtifactCache`] implementation the engine runs. The default,
    /// [`CacheImpl::Sharded`], serves warm hits without any process-global
    /// lock; [`CacheImpl::MutexLru`] is the original single-mutex exact
    /// LRU, kept for A/B comparison. Plans are byte-identical under either.
    pub cache_impl: CacheImpl,
    /// When set, homogeneous OPQ requests of at least twice this many tasks
    /// are split into independent chunks of roughly this size, solved in
    /// parallel, and merged. Chunking is decided by the request alone (never
    /// by thread count), so plans stay deterministic; each chunk packs its
    /// own bins, so the merged plan can post up to one extra leftover group
    /// per chunk compared to the unsharded solve. `None` (the default) keeps
    /// every homogeneous request as a single shard, which is cost-identical
    /// to the sequential
    /// [`OpqBased` solve](slade_core::solver::DecompositionSolver::solve).
    pub homogeneous_shard: Option<u32>,
    /// Configuration used for every artifact-accelerated (OPQ) shard; its
    /// knobs enter those shards' cache [`Fingerprint`]s through
    /// [`PreparedSolver::fingerprint_knobs`].
    pub solver: OpqBased,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 256,
            scheduler: SchedulerMode::default(),
            cache_capacity: 64,
            cache_impl: CacheImpl::default(),
            homogeneous_shard: None,
            solver: OpqBased::default(),
        }
    }
}

/// A request span shards record their scheduling provenance into: the
/// engine stamps `shard_start` / `shard_finish` stages (with shard index,
/// worker index, and whether the job was stolen) as each shard runs.
/// Recording is one short mutex around a timestamp and a push — it never
/// blocks a worker behind I/O. Attached via [`EngineRequest::with_trace`].
pub type RequestTrace = Arc<slade_obs::RequestSpan>;

/// One decomposition request, self-contained and cheap to move across
/// threads (the bin menu is shared by `Arc`).
#[derive(Clone)]
pub struct EngineRequest {
    /// The solver to run.
    pub algorithm: Algorithm,
    /// The instance's workload.
    pub workload: Workload,
    /// The instance's bin menu.
    pub bins: Arc<BinSet>,
    /// Per-request seed for randomized solvers (only [`Algorithm::Baseline`]
    /// consumes it today). Deterministic solvers ignore it.
    pub seed: u64,
    /// When set, this solver runs instead of the registry default for
    /// `algorithm` — see [`EngineRequest::with_solver`].
    solver_override: Option<Arc<dyn PreparedSolver + Send + Sync>>,
    /// When set, shard jobs record their stages into this span — see
    /// [`EngineRequest::with_trace`].
    trace: Option<RequestTrace>,
}

impl fmt::Debug for EngineRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineRequest")
            .field("algorithm", &self.algorithm)
            .field("workload", &self.workload)
            .field("bins", &self.bins)
            .field("seed", &self.seed)
            .field(
                "solver_override",
                &self.solver_override.as_ref().map(|s| s.name()),
            )
            .field("trace", &self.trace.as_ref().map(|t| t.id()))
            .finish()
    }
}

impl EngineRequest {
    /// A request with the default seed `0`.
    pub fn new(algorithm: Algorithm, workload: Workload, bins: Arc<BinSet>) -> Self {
        EngineRequest {
            algorithm,
            workload,
            bins,
            seed: 0,
            solver_override: None,
            trace: None,
        }
    }

    /// Sets the seed consumed by randomized solvers.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `solver` instead of the registry default for the request's
    /// algorithm. Override requests are never sharded and never touch the
    /// artifact cache (a custom solver has no registry identity to key
    /// entries under); they exist for embedding experimental solvers — and
    /// for the engine's own fault-injection tests.
    #[must_use]
    pub fn with_solver(mut self, solver: Arc<dyn PreparedSolver + Send + Sync>) -> Self {
        self.solver_override = Some(solver);
        self
    }

    /// Attaches a [`RequestTrace`]: every shard job of this request records
    /// a `shard_start` stage before it computes and a `shard_finish` stage
    /// after (both carrying the shard index, the worker that ran it, and
    /// whether the job was stolen from another worker's deque). Tracing
    /// changes nothing about the plan; an untraced request skips all
    /// recording.
    #[must_use]
    pub fn with_trace(mut self, trace: RequestTrace) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Errors surfaced by [`PlanHandle::wait`] and the resolved-plan API.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A shard's solver failed; the underlying error.
    Solve(SladeError),
    /// A shard's solver panicked inside a worker. The worker caught the
    /// unwind at the job boundary and kept serving; the panic payload (when
    /// it was a string) is carried here instead of wedging the handle.
    WorkerPanicked {
        /// The panic payload, if it was a `&str`/`String` panic.
        message: String,
    },
    /// A shard's worker disappeared before delivering a result (the engine
    /// shut down underneath the handle).
    ShardLost,
    /// The engine had already been [shut down](Engine::shutdown) when the
    /// request was submitted, so no shard was ever queued.
    ShutDown,
    /// A timeout-aware wait ([`PlanHandle::wait_timeout`],
    /// [`Engine::solve_resolved_timeout`], [`Engine::resubmit_timeout`])
    /// gave up before every shard reported. The shards keep running in the
    /// pool; only this wait abandoned them.
    Timeout {
        /// The deadline that elapsed.
        after: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Solve(e) => write!(f, "shard solve failed: {e}"),
            EngineError::WorkerPanicked { message } => {
                write!(f, "a solver panicked while solving a shard: {message}")
            }
            EngineError::ShardLost => {
                write!(f, "a worker disappeared before delivering its shard")
            }
            EngineError::ShutDown => {
                write!(f, "the engine was shut down before the request could run")
            }
            EngineError::Timeout { after } => {
                write!(f, "the solve did not finish within {after:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SladeError> for EngineError {
    fn from(e: SladeError) -> Self {
        EngineError::Solve(e)
    }
}

/// How a shard's bucket-local / chunk-local task ids map back to the
/// request's global ids.
#[derive(Debug, Clone)]
enum ShardRemap {
    /// Shard-local id `j` is global id `base + j`.
    Offset(TaskId),
    /// Shard-local id `j` is global id `members[j]` (threshold buckets).
    Members(Arc<Vec<TaskId>>),
}

/// What one shard computes. Equality is what [`Engine::resubmit`] uses to
/// recognize unchanged work: a shard's *raw* (pre-remap) sub-plan is a pure
/// function of this value (plus the request-level bins/solver state, which
/// resubmission holds fixed).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ShardWork {
    /// A homogeneous OPQ solve of `n` tasks at `threshold`, accelerated by
    /// the artifact cache.
    Opq { n: u32, threshold: f64 },
    /// Run the request's algorithm on its full workload through the
    /// two-phase `prepare`/`solve_with` pipeline (artifact-cached per
    /// `(Algorithm, Fingerprint)`).
    Prepared,
}

struct Shard {
    work: ShardWork,
    remap: ShardRemap,
}

type ShardResult = (usize, Result<DecompositionPlan, EngineError>);

/// A completion callback cloned into every shard job of one request: it runs
/// on the worker thread **after** that shard's result has been delivered to
/// the handle's channel, once per shard. A caller multiplexing many handles
/// on one thread (the `slade-server` session multiplexer) uses it to learn
/// *when* to poll [`PlanHandle::try_wait`] / [`ResolvedHandle::try_wait`]
/// without blocking on any single handle; the callback itself must be cheap
/// and must not panic (a channel send, a condvar notify).
pub type ShardNotify = Arc<dyn Fn() + Send + Sync>;

/// The label the requested algorithm's own solver stamps on its plans —
/// taken from the solver registry itself so it can never drift — so wrapped
/// engine results compare equal to direct `solve` calls (the derived
/// `PartialEq` on [`DecompositionPlan`] includes the label). Only OPQ
/// requests are ever wrapped; every other algorithm runs as a single
/// pass-through shard carrying whatever label its solver chose.
fn plan_label(algorithm: Algorithm) -> &'static str {
    algorithm.solver().name()
}

/// Merges raw shard outputs in shard order under the request's wrap rule;
/// shared by [`PlanHandle::wait`] and the resolved-plan path so the two can
/// never diverge. Consumes the subs, so the unwrapped single-shard fast
/// path is a move, not a clone.
fn merge_subs(
    wrap: Option<&'static str>,
    subs: impl IntoIterator<Item = DecompositionPlan>,
    remaps: &[ShardRemap],
) -> DecompositionPlan {
    let mut subs = subs.into_iter();
    let Some(label) = wrap else {
        return subs
            .next()
            .expect("an unwrapped handle has exactly one shard");
    };
    let mut plan = DecompositionPlan::empty(label);
    for (sub, remap) in subs.zip(remaps) {
        plan.merge(apply_remap(sub, remap));
    }
    plan
}

/// A wait deadline: the instant to give up at, plus the originally requested
/// duration (carried into [`EngineError::Timeout`] for the error message).
type Deadline = (Instant, Duration);

/// `timeout` from now, or `None` (= wait forever) if the addition overflows
/// the `Instant` domain — a practically-infinite timeout means "no deadline".
fn deadline_after(timeout: Duration) -> Option<Deadline> {
    Instant::now().checked_add(timeout).map(|at| (at, timeout))
}

/// One `recv` against an optional deadline; shared by every wait path so
/// blocking and timeout-aware waits can never diverge in their error
/// mapping.
fn recv_shard(
    rx: &Receiver<ShardResult>,
    deadline: Option<Deadline>,
) -> Result<ShardResult, EngineError> {
    match deadline {
        None => rx.recv().map_err(|_| EngineError::ShardLost),
        Some((at, after)) => {
            let remaining = at.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(result) => Ok(result),
                Err(RecvTimeoutError::Timeout) => Err(EngineError::Timeout { after }),
                Err(RecvTimeoutError::Disconnected) => Err(EngineError::ShardLost),
            }
        }
    }
}

/// A blocking handle to one submitted request.
///
/// Dropping the handle without calling [`PlanHandle::wait`] abandons the
/// result; the shards still run to completion (they are already queued) but
/// their plans are discarded.
#[must_use = "a PlanHandle does nothing until wait()ed on"]
pub struct PlanHandle {
    rx: Receiver<ShardResult>,
    remaps: Vec<ShardRemap>,
    /// `None`: a single identity shard whose result is already exactly what
    /// a direct `solve` call would return — pass it through untouched.
    /// `Some(label)`: wrap the merged shards under this label, mirroring
    /// how `OpqExtended` itself wraps its per-bucket `OpqBased` sub-plans —
    /// so engine results compare equal (label included) to the sequential
    /// solver's whenever sharding does not change the plan.
    wrap: Option<&'static str>,
    /// Set when the engine was already shut down at submit time: at least
    /// one shard was never queued, so the handle can only fail.
    shut_down: bool,
    /// Shard results collected so far (by [`PlanHandle::try_wait`] or a
    /// blocking wait), index-aligned with `remaps`.
    subs: Vec<Option<DecompositionPlan>>,
    /// How many shard results have been received into `subs`.
    received: usize,
    /// Set once a result (or error) has been handed out; further
    /// [`PlanHandle::try_wait`] calls return `None`.
    spent: bool,
}

impl PlanHandle {
    /// Blocks until every shard has reported, then merges the sub-plans in
    /// shard order (never in completion order — that is what keeps the
    /// result independent of scheduling).
    pub fn wait(self) -> Result<DecompositionPlan, EngineError> {
        self.collect(None)
    }

    /// Like [`PlanHandle::wait`], but gives up with [`EngineError::Timeout`]
    /// once `timeout` has elapsed across *all* shards. The shards themselves
    /// keep running in the pool (they are already queued); only their
    /// results are abandoned — which is exactly what a network frontend
    /// needs so one stuck request cannot wedge its serving thread.
    pub fn wait_timeout(self, timeout: Duration) -> Result<DecompositionPlan, EngineError> {
        let deadline = deadline_after(timeout);
        self.collect(deadline)
    }

    /// Non-blocking poll: drains whatever shard results have arrived and
    /// returns `Some` exactly once — when the last shard reports (the merged
    /// plan, identical to what [`PlanHandle::wait`] would return) or when a
    /// shard fails. Returns `None` while work is still in flight, and `None`
    /// forever after the result has been handed out (the handle is *spent*).
    ///
    /// Pair it with a [`ShardNotify`] ([`Engine::submit_notify`]) to
    /// multiplex many handles on one thread without polling in a busy loop:
    /// each notification means one more shard result is ready to drain.
    pub fn try_wait(&mut self) -> Option<Result<DecompositionPlan, EngineError>> {
        if self.spent {
            return None;
        }
        if self.shut_down {
            self.spent = true;
            return Some(Err(EngineError::ShutDown));
        }
        let shards = self.remaps.len();
        while self.received < shards {
            match self.rx.try_recv() {
                Ok((index, Ok(plan))) => {
                    self.subs[index] = Some(plan);
                    self.received += 1;
                }
                Ok((_, Err(e))) => {
                    self.spent = true;
                    return Some(Err(e));
                }
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => {
                    self.spent = true;
                    return Some(Err(EngineError::ShardLost));
                }
            }
        }
        self.spent = true;
        let subs: Vec<DecompositionPlan> = self
            .subs
            .drain(..)
            .map(|sub| sub.expect("every shard index reported exactly once"))
            .collect();
        Some(Ok(merge_subs(self.wrap, subs, &self.remaps)))
    }

    fn collect(mut self, deadline: Option<Deadline>) -> Result<DecompositionPlan, EngineError> {
        if self.shut_down {
            return Err(EngineError::ShutDown);
        }
        let shards = self.remaps.len();
        while self.received < shards {
            let (index, result) = recv_shard(&self.rx, deadline)?;
            self.subs[index] = Some(result?);
            self.received += 1;
        }
        let subs = self
            .subs
            .into_iter()
            .map(|sub| sub.expect("every shard index reported exactly once"));
        Ok(merge_subs(self.wrap, subs, &self.remaps))
    }
}

fn apply_remap(mut plan: DecompositionPlan, remap: &ShardRemap) -> DecompositionPlan {
    match remap {
        ShardRemap::Offset(0) => {}
        ShardRemap::Offset(base) => plan.remap_tasks(|t| t + base),
        ShardRemap::Members(members) => plan.remap_tasks(|t| members[t as usize]),
    }
    plan
}

/// An incremental change to a previously solved workload, consumed by
/// [`Engine::resubmit`]. Deltas only reshape the *workload*; the bin menu,
/// algorithm, and seed stay those of the prior request.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadDelta {
    /// Grow or shrink the workload to `n` tasks. Growth replicates the
    /// shared threshold (and therefore requires a homogeneous workload);
    /// shrinking truncates the highest task ids of either kind.
    Resize(u32),
    /// Replace the thresholds of individual tasks (`(task id, new
    /// threshold)`); the workload is re-bucketed accordingly.
    SetThresholds(Vec<(TaskId, f64)>),
    /// Append tasks with the given thresholds after the existing ids.
    Append(Vec<f64>),
}

impl WorkloadDelta {
    /// The workload that results from applying this delta to `workload`.
    pub fn apply(&self, workload: &Workload) -> Result<Workload, SladeError> {
        match self {
            WorkloadDelta::Resize(n) => {
                if workload.is_homogeneous() {
                    Workload::homogeneous(*n, workload.threshold(0))
                } else if *n <= workload.len() {
                    Workload::heterogeneous((0..*n).map(|i| workload.threshold(i)).collect())
                } else {
                    Err(SladeError::InvalidWorkload(format!(
                        "cannot grow a heterogeneous workload of {} tasks to {n} \
                         without thresholds; use WorkloadDelta::Append",
                        workload.len()
                    )))
                }
            }
            WorkloadDelta::SetThresholds(changes) => {
                let mut thresholds: Vec<f64> =
                    (0..workload.len()).map(|i| workload.threshold(i)).collect();
                for &(task, threshold) in changes {
                    let Some(slot) = thresholds.get_mut(task as usize) else {
                        return Err(SladeError::InvalidWorkload(format!(
                            "threshold change targets task {task}, but the workload \
                             has only {} tasks",
                            workload.len()
                        )));
                    };
                    *slot = threshold;
                }
                Workload::heterogeneous(thresholds)
            }
            WorkloadDelta::Append(extra) => {
                let mut thresholds: Vec<f64> =
                    (0..workload.len()).map(|i| workload.threshold(i)).collect();
                thresholds.extend_from_slice(extra);
                Workload::heterogeneous(thresholds)
            }
        }
    }
}

/// A solved request that retains its per-shard results, enabling
/// [`Engine::resubmit`] to re-solve only the shards a [`WorkloadDelta`]
/// actually changes.
#[derive(Debug)]
pub struct ResolvedPlan {
    request: EngineRequest,
    works: Vec<ShardWork>,
    /// The OPQ-shard solver knob words of the engine that produced `subs`
    /// ([`PreparedSolver::fingerprint_knobs`] of `EngineConfig::solver`).
    /// Resubmission on an engine with different knobs must not splice these
    /// sub-plans in, or the byte-identical-to-cold-solve contract breaks.
    solver_knobs: slade_core::fingerprint::KnobSink,
    /// Raw (pre-remap) shard outputs, index-aligned with `works`; behind
    /// `Arc` so chained resubmissions share rather than deep-copy them.
    subs: Vec<Arc<DecompositionPlan>>,
    /// The merged plan; in the unwrapped single-shard case this shares
    /// `subs[0]`'s allocation instead of duplicating it.
    plan: Arc<DecompositionPlan>,
    reused_shards: usize,
}

impl ResolvedPlan {
    /// The merged decomposition plan.
    pub fn plan(&self) -> &DecompositionPlan {
        &self.plan
    }

    /// Consumes the resolved state, keeping only the plan.
    pub fn into_plan(self) -> DecompositionPlan {
        let ResolvedPlan { plan, subs, .. } = self;
        // Release the shard handles first so a plan sharing `subs[0]` can
        // usually be unwrapped instead of cloned.
        drop(subs);
        Arc::try_unwrap(plan).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The workload this plan decomposes (after any deltas).
    pub fn workload(&self) -> &Workload {
        &self.request.workload
    }

    /// The bin menu the plan was solved against (deltas never change it).
    pub fn bins(&self) -> &Arc<BinSet> {
        &self.request.bins
    }

    /// The algorithm that produced the plan.
    pub fn algorithm(&self) -> Algorithm {
        self.request.algorithm
    }

    /// How many shards of this solve were reused verbatim from the prior
    /// resolve instead of being recomputed (always `0` for a fresh
    /// [`Engine::solve_resolved`]).
    pub fn reused_shards(&self) -> usize {
        self.reused_shards
    }

    /// Total shards of this solve.
    pub fn shards(&self) -> usize {
        self.works.len()
    }

    // ---- durable-codec access (crate-private; see `crate::codec`) ----

    /// The request's seed (randomized solvers consume it).
    pub(crate) fn seed(&self) -> u64 {
        self.request.seed
    }

    /// The per-shard work descriptors, index-aligned with `subs`.
    pub(crate) fn works(&self) -> &[ShardWork] {
        &self.works
    }

    /// The producing engine's solver knob words, verbatim.
    pub(crate) fn knob_words(&self) -> &[u64] {
        self.solver_knobs.words()
    }

    /// The raw (pre-remap) shard outputs.
    pub(crate) fn subs(&self) -> &[Arc<DecompositionPlan>] {
        &self.subs
    }

    /// The merged plan's shared handle (to detect the unwrapped
    /// single-shard case, where it aliases `subs[0]`).
    pub(crate) fn merged(&self) -> &Arc<DecompositionPlan> {
        &self.plan
    }

    /// Reassembles a resolved plan from decoded parts — the codec's decode
    /// half. The caller (only `crate::codec`) is responsible for handing
    /// back exactly what the encode half read: index-aligned `works`/`subs`
    /// and a `plan` that aliases `subs[0]` in the unwrapped single-shard
    /// case, so a decoded plan resubmits byte-identically to the original.
    pub(crate) fn from_codec_parts(
        request: EngineRequest,
        works: Vec<ShardWork>,
        solver_knobs: slade_core::fingerprint::KnobSink,
        subs: Vec<Arc<DecompositionPlan>>,
        plan: Arc<DecompositionPlan>,
        reused_shards: usize,
    ) -> ResolvedPlan {
        ResolvedPlan {
            request,
            works,
            solver_knobs,
            subs,
            plan,
            reused_shards,
        }
    }
}

/// Everything a [`ResolvedHandle`] needs besides the live shard channel to
/// assemble its [`ResolvedPlan`]; taken out of the handle exactly once when
/// the last shard reports.
struct ResolvedCore {
    request: EngineRequest,
    works: Vec<ShardWork>,
    remaps: Vec<ShardRemap>,
    wrap: Option<&'static str>,
    solver_knobs: slade_core::fingerprint::KnobSink,
    /// Index-aligned with `works`; shards reused from a prior resolve are
    /// prefilled, queued shards land as their results arrive.
    subs: Vec<Option<Arc<DecompositionPlan>>>,
    reused_shards: usize,
}

impl ResolvedCore {
    /// Merges the collected sub-plans into a [`ResolvedPlan`] — the same
    /// assembly the blocking resolved path has always performed, so the two
    /// can never diverge.
    fn finish(self) -> ResolvedPlan {
        let subs: Vec<Arc<DecompositionPlan>> = self
            .subs
            .into_iter()
            .map(|sub| sub.expect("every shard either reused or reported"))
            .collect();
        let plan = match self.wrap {
            // Unwrapped single shard: the merged plan IS the raw sub-plan —
            // share it instead of deep-copying (resubmit chains hold many
            // of these).
            None => Arc::clone(&subs[0]),
            Some(_) => Arc::new(merge_subs(
                self.wrap,
                subs.iter().map(|sub| (**sub).clone()),
                &self.remaps,
            )),
        };
        ResolvedPlan {
            request: self.request,
            works: self.works,
            solver_knobs: self.solver_knobs,
            subs,
            plan,
            reused_shards: self.reused_shards,
        }
    }
}

/// A non-blocking handle to an in-flight resolved solve
/// ([`Engine::submit_resolved`]) or resubmission
/// ([`Engine::resubmit_submit`]): the [`ResolvedPlan`]-producing twin of
/// [`PlanHandle`], for callers that multiplex many requests on one thread.
#[must_use = "a ResolvedHandle does nothing until wait()ed on"]
pub struct ResolvedHandle {
    rx: Receiver<ShardResult>,
    /// Shards actually queued (not reused); completion = this many receipts.
    outstanding: usize,
    received: usize,
    shut_down: bool,
    /// `Some` until the result (or error) is handed out; `None` = spent.
    core: Option<ResolvedCore>,
}

impl ResolvedHandle {
    /// Blocks until every queued shard has reported; identical result to
    /// [`Engine::solve_resolved`] / [`Engine::resubmit`] for the same
    /// submission.
    pub fn wait(self) -> Result<ResolvedPlan, EngineError> {
        self.collect(None)
    }

    /// Like [`ResolvedHandle::wait`] with a deadline, mirroring
    /// [`Engine::solve_resolved_timeout`]: abandoned shards finish in the
    /// pool.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ResolvedPlan, EngineError> {
        let deadline = deadline_after(timeout);
        self.collect(deadline)
    }

    /// Non-blocking poll; the [`ResolvedPlan`] twin of
    /// [`PlanHandle::try_wait`] with the same spent semantics: `Some` exactly
    /// once, `None` while shards are in flight and forever afterwards.
    pub fn try_wait(&mut self) -> Option<Result<ResolvedPlan, EngineError>> {
        self.core.as_ref()?; // None = spent
        if self.shut_down {
            self.core = None;
            return Some(Err(EngineError::ShutDown));
        }
        while self.received < self.outstanding {
            match self.rx.try_recv() {
                Ok((index, Ok(plan))) => {
                    let core = self.core.as_mut().expect("checked above");
                    core.subs[index] = Some(Arc::new(plan));
                    self.received += 1;
                }
                Ok((_, Err(e))) => {
                    self.core = None;
                    return Some(Err(e));
                }
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => {
                    self.core = None;
                    return Some(Err(EngineError::ShardLost));
                }
            }
        }
        let core = self.core.take().expect("checked above");
        Some(Ok(core.finish()))
    }

    fn collect(mut self, deadline: Option<Deadline>) -> Result<ResolvedPlan, EngineError> {
        if self.shut_down {
            return Err(EngineError::ShutDown);
        }
        while self.received < self.outstanding {
            let (index, result) = recv_shard(&self.rx, deadline)?;
            let core = self.core.as_mut().expect("collect runs on a live handle");
            core.subs[index] = Some(Arc::new(result?));
            self.received += 1;
        }
        let core = self.core.take().expect("collect runs on a live handle");
        Ok(core.finish())
    }
}

/// The concurrent decomposition service; see the crate docs for the design.
///
/// [`Engine::shutdown`] (or dropping the engine) stops the scheduler and
/// joins every worker, so already-queued shards finish first (outstanding
/// [`PlanHandle`]s stay valid across the shutdown).
pub struct Engine {
    sched: Arc<Scheduler>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
    cache: Arc<ArtifactCache>,
    config: EngineConfig,
}

impl Engine {
    /// Spawns the worker pool described by `config`.
    pub fn new(config: EngineConfig) -> Self {
        let threads = config.threads.max(1);
        let sched = Arc::new(Scheduler::new(
            config.scheduler,
            threads,
            config.queue_capacity.max(1),
        ));
        let workers = (0..threads)
            .map(|i| {
                let sched = Arc::clone(&sched);
                thread::Builder::new()
                    .name(format!("slade-worker-{i}"))
                    .spawn(move || worker_loop(&sched, i))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        let cache = Arc::new(ArtifactCache::with_impl(
            config.cache_impl,
            config.cache_capacity,
        ));
        Engine {
            sched,
            workers: Mutex::new(workers),
            threads,
            cache,
            config,
        }
    }

    /// Number of worker threads the pool was spawned with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stops the scheduler and joins every worker, draining already queued
    /// shards first — so the drain is deterministic: everything submitted
    /// before the call completes, and outstanding [`PlanHandle`]s deliver
    /// their results as usual. Requests submitted *after* shutdown fail
    /// with [`EngineError::ShutDown`]. Idempotent, and callable through a
    /// shared `Arc<Engine>` (it only needs `&self`).
    pub fn shutdown(&self) {
        self.sched.shutdown();
        let mut workers = self.workers.lock().unwrap_or_else(|p| p.into_inner());
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Whether [`Engine::shutdown`] has run.
    pub fn is_shut_down(&self) -> bool {
        self.sched.is_shut_down()
    }

    /// Jobs a worker took from another worker's deque — the scheduler's
    /// work-stealing counter. Always `0` under
    /// [`SchedulerMode::SharedQueue`] (one shared queue has no victims).
    pub fn steals(&self) -> u64 {
        self.sched.steals()
    }

    /// Jobs submitted but not yet claimed by a worker — the scheduler's
    /// queue depth at this instant.
    pub fn queue_depth(&self) -> usize {
        self.sched.depth()
    }

    /// The job-queue capacity the scheduler was built with (the submit
    /// backpressure bound), clamped to at least 1 exactly as
    /// [`Engine::new`] clamps it. Together with [`Engine::queue_depth`]
    /// this is the saturation signal health checks page on.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity.max(1)
    }

    /// Worker park episodes since the pool was spawned: times a worker went
    /// to sleep because no work was queued.
    pub fn parks(&self) -> u64 {
        self.sched.parks()
    }

    /// Submitter-to-worker wakeups since the pool was spawned: times a
    /// submission notified a parked worker.
    pub fn wakes(&self) -> u64 {
        self.sched.wakes()
    }

    /// Snapshot of the artifact cache's hit/miss/occupancy counters.
    /// Reads only relaxed atomics — never contends with the solve path.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident cache entries per shard (one element under
    /// [`CacheImpl::MutexLru`]). Diagnostic, for the `metrics` surface;
    /// takes each shard's read lock briefly.
    pub fn cache_shard_occupancy(&self) -> Vec<usize> {
        self.cache.shard_occupancy()
    }

    /// Submits one request, returning a blocking [`PlanHandle`].
    ///
    /// Blocks while the job queue is full (backpressure). Sharding is
    /// decided here, from the request alone.
    pub fn submit(&self, request: EngineRequest) -> PlanHandle {
        self.submit_with(request, None)
    }

    /// [`Engine::submit`] with a per-shard completion callback, for callers
    /// that multiplex many handles via [`PlanHandle::try_wait`]: `notify`
    /// runs on a worker thread after each shard result is delivered, so one
    /// multiplexer thread can sleep on its own channel and poll only the
    /// handle the notification belongs to.
    pub fn submit_notify(&self, request: EngineRequest, notify: ShardNotify) -> PlanHandle {
        self.submit_with(request, Some(notify))
    }

    fn submit_with(&self, request: EngineRequest, notify: Option<ShardNotify>) -> PlanHandle {
        let shards = self.shard(&request);
        let wrap = Self::wrap_of(&shards, &request);
        let (result_tx, result_rx) = channel::<ShardResult>();
        let mut remaps = Vec::with_capacity(shards.len());
        let mut shut_down = false;
        for (index, shard) in shards.into_iter().enumerate() {
            remaps.push(shard.remap);
            shut_down |= !self.enqueue(self.make_job(
                index,
                shard.work,
                &request,
                result_tx.clone(),
                notify.clone(),
            ));
        }
        let subs = (0..remaps.len()).map(|_| None).collect();
        PlanHandle {
            rx: result_rx,
            remaps,
            wrap,
            shut_down,
            subs,
            received: 0,
            spent: false,
        }
    }

    /// Submits every request in order and returns their handles, preserving
    /// order. Shards of different requests interleave freely in the pool;
    /// each handle's result is still deterministic.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = EngineRequest>,
    ) -> Vec<PlanHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Convenience: submit one request and block for its plan.
    pub fn solve(&self, request: EngineRequest) -> Result<DecompositionPlan, EngineError> {
        self.submit(request).wait()
    }

    /// Solves `request` while retaining per-shard results, so follow-up
    /// [`WorkloadDelta`]s can be applied incrementally with
    /// [`Engine::resubmit`]. The plan is identical to [`Engine::solve`]'s.
    pub fn solve_resolved(&self, request: EngineRequest) -> Result<ResolvedPlan, EngineError> {
        self.run_resolved(request, None, None)
    }

    /// [`Engine::solve_resolved`] with a deadline: fails with
    /// [`EngineError::Timeout`] if the shards have not all reported within
    /// `timeout` (they keep running; their results are abandoned).
    pub fn solve_resolved_timeout(
        &self,
        request: EngineRequest,
        timeout: Duration,
    ) -> Result<ResolvedPlan, EngineError> {
        self.run_resolved(request, None, deadline_after(timeout))
    }

    /// Applies `delta` to `prior`'s workload and re-solves, reusing every
    /// shard whose inputs the delta left unchanged (same task count and
    /// threshold for OPQ shards — membership may shift, the raw sub-plan is
    /// id-agnostic — and an untouched workload for pass-through shards).
    ///
    /// The returned plan is **byte-identical to a cold solve** of the
    /// resulting workload: raw shard outputs are deterministic functions of
    /// their inputs, so reuse is indistinguishable from recomputation.
    pub fn resubmit(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
    ) -> Result<ResolvedPlan, EngineError> {
        self.run_resubmit(prior, delta, None)
    }

    /// [`Engine::resubmit`] with a deadline, mirroring
    /// [`Engine::solve_resolved_timeout`].
    pub fn resubmit_timeout(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        timeout: Duration,
    ) -> Result<ResolvedPlan, EngineError> {
        self.run_resubmit(prior, delta, deadline_after(timeout))
    }

    /// The non-blocking twin of [`Engine::solve_resolved`]: shards and
    /// queues the request, returning a [`ResolvedHandle`] to poll or wait
    /// on. The eventual plan is identical to the blocking path's.
    pub fn submit_resolved(&self, request: EngineRequest) -> ResolvedHandle {
        self.submit_resolved_with(request, None, None)
    }

    /// [`Engine::submit_resolved`] with a per-shard completion callback
    /// (see [`Engine::submit_notify`]).
    pub fn submit_resolved_notify(
        &self,
        request: EngineRequest,
        notify: ShardNotify,
    ) -> ResolvedHandle {
        self.submit_resolved_with(request, None, Some(notify))
    }

    /// The non-blocking twin of [`Engine::resubmit`]: applies `delta`,
    /// reuses unchanged shards, queues the rest, and returns a
    /// [`ResolvedHandle`]. Fails immediately (without queueing anything)
    /// when the delta itself is invalid for the prior workload.
    pub fn resubmit_submit(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
    ) -> Result<ResolvedHandle, EngineError> {
        self.resubmit_submit_with(prior, delta, None)
    }

    /// [`Engine::resubmit_submit`] with a per-shard completion callback
    /// (see [`Engine::submit_notify`]).
    pub fn resubmit_submit_notify(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        notify: ShardNotify,
    ) -> Result<ResolvedHandle, EngineError> {
        self.resubmit_submit_with(prior, delta, Some(notify))
    }

    /// [`Engine::resubmit_submit`] carrying an explicit [`RequestTrace`]:
    /// the resubmitted request is cloned from `prior` *inside* the engine,
    /// so a frontend that wants this resubmission's shard stages recorded
    /// must hand the span in here — it cannot attach one to a request it
    /// never constructs.
    pub fn resubmit_submit_traced(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        notify: Option<ShardNotify>,
        trace: Option<RequestTrace>,
    ) -> Result<ResolvedHandle, EngineError> {
        self.resubmit_submit_inner(prior, delta, notify, trace)
    }

    /// [`Engine::resubmit_timeout`] carrying an explicit [`RequestTrace`]
    /// (see [`Engine::resubmit_submit_traced`] for why the span is a
    /// parameter here).
    pub fn resubmit_timeout_traced(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        timeout: Duration,
        trace: Option<RequestTrace>,
    ) -> Result<ResolvedPlan, EngineError> {
        self.resubmit_submit_inner(prior, delta, None, trace)?
            .collect(deadline_after(timeout))
    }

    fn resubmit_submit_with(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        notify: Option<ShardNotify>,
    ) -> Result<ResolvedHandle, EngineError> {
        self.resubmit_submit_inner(prior, delta, notify, None)
    }

    fn resubmit_submit_inner(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        notify: Option<ShardNotify>,
        trace: Option<RequestTrace>,
    ) -> Result<ResolvedHandle, EngineError> {
        let workload = delta.apply(&prior.request.workload)?;
        let mut request = prior.request.clone();
        request.workload = workload;
        request.trace = trace;
        Ok(self.submit_resolved_with(request, Some(prior), notify))
    }

    fn run_resubmit(
        &self,
        prior: &ResolvedPlan,
        delta: &WorkloadDelta,
        deadline: Option<Deadline>,
    ) -> Result<ResolvedPlan, EngineError> {
        self.resubmit_submit_with(prior, delta, None)?
            .collect(deadline)
    }

    /// The knob words of this engine's OPQ-shard solver; raw OPQ sub-plans
    /// are only interchangeable between engines whose words agree.
    fn solver_knobs(&self) -> slade_core::fingerprint::KnobSink {
        let mut knobs = slade_core::fingerprint::KnobSink::new();
        self.config.solver.fingerprint_knobs(&mut knobs);
        knobs
    }

    /// The shared blocking resolved-solve path: submit, then wait against
    /// the deadline. (All assembly lives in the handle, so the blocking and
    /// multiplexed paths cannot diverge.)
    fn run_resolved(
        &self,
        request: EngineRequest,
        prior: Option<&ResolvedPlan>,
        deadline: Option<Deadline>,
    ) -> Result<ResolvedPlan, EngineError> {
        self.submit_resolved_with(request, prior, None)
            .collect(deadline)
    }

    /// The shared resolved-submission path: shard, reuse what `prior`
    /// already computed, queue the rest, and hand back the collecting
    /// handle (which merges in shard order).
    fn submit_resolved_with(
        &self,
        mut request: EngineRequest,
        prior: Option<&ResolvedPlan>,
        notify: Option<ShardNotify>,
    ) -> ResolvedHandle {
        let shards = self.shard(&request);
        let wrap = Self::wrap_of(&shards, &request);
        let solver_knobs = self.solver_knobs();
        let mut works = Vec::with_capacity(shards.len());
        let mut remaps = Vec::with_capacity(shards.len());
        let mut subs: Vec<Option<Arc<DecompositionPlan>>> =
            (0..shards.len()).map(|_| None).collect();
        let (result_tx, result_rx) = channel::<ShardResult>();
        let mut reused_shards = 0;
        let mut outstanding = 0;
        let mut shut_down = false;

        for (index, shard) in shards.into_iter().enumerate() {
            let reusable = prior.and_then(|p| {
                // A prior resolve is only a valid donor when everything that
                // shapes raw sub-plans besides the shard work itself agrees:
                // algorithm, bin menu, and the engine's OPQ solver knobs (a
                // `ResolvedPlan` may come from a differently-configured
                // engine).
                if p.request.algorithm != request.algorithm
                    || !Arc::ptr_eq(&p.request.bins, &request.bins)
                    || p.solver_knobs != solver_knobs
                {
                    return None;
                }
                match &shard.work {
                    // Raw OPQ sub-plans depend only on (n, threshold).
                    ShardWork::Opq { .. } => p.works.iter().position(|w| *w == shard.work),
                    // A pass-through shard recomputes from the full workload
                    // (and, for the baseline, the seed).
                    ShardWork::Prepared => p
                        .works
                        .iter()
                        .position(|w| *w == ShardWork::Prepared)
                        .filter(|_| {
                            p.request.workload == request.workload && p.request.seed == request.seed
                        }),
                }
            });
            if let Some(prior_index) = reusable {
                subs[index] = Some(Arc::clone(
                    &prior.expect("reusable implies prior").subs[prior_index],
                ));
                reused_shards += 1;
            } else if shut_down {
                // A previous shard already failed to queue; don't bother.
            } else if self.enqueue(self.make_job(
                index,
                shard.work.clone(),
                &request,
                result_tx.clone(),
                notify.clone(),
            )) {
                outstanding += 1;
            } else {
                shut_down = true;
            }
            works.push(shard.work);
            remaps.push(shard.remap);
        }

        // The stored request seeds future resubmissions via `prior.request
        // .clone()`. Drop the span first: a clone must never write stages
        // into a trace that finished with an earlier response.
        request.trace = None;

        ResolvedHandle {
            rx: result_rx,
            outstanding,
            received: 0,
            shut_down,
            core: Some(ResolvedCore {
                request,
                works,
                remaps,
                wrap,
                solver_knobs,
                subs,
                reused_shards,
            }),
        }
    }

    /// Queues `job`, returning whether it was accepted (`false` once the
    /// engine is shut down). Blocks while the queue is full (backpressure).
    fn enqueue(&self, job: Job) -> bool {
        self.sched.submit(job)
    }

    /// Pass through untouched when the one shard already produces what a
    /// direct `solve` would: any Prepared shard (`solve_with` reproduces
    /// `solve` byte-identically — the core contract), or a whole-workload
    /// OPQ shard for OpqBased. Everything else is wrapped under the
    /// requested algorithm's label.
    fn wrap_of(shards: &[Shard], request: &EngineRequest) -> Option<&'static str> {
        match shards {
            [Shard {
                work: ShardWork::Prepared,
                remap: ShardRemap::Offset(0),
            }] => None,
            [Shard {
                work: ShardWork::Opq { .. },
                remap: ShardRemap::Offset(0),
            }] if request.algorithm == Algorithm::OpqBased => None,
            _ => Some(plan_label(request.algorithm)),
        }
    }

    /// Splits a request into independent shards (see the crate docs).
    fn shard(&self, request: &EngineRequest) -> Vec<Shard> {
        let pass_through = Shard {
            work: ShardWork::Prepared,
            remap: ShardRemap::Offset(0),
        };
        // Custom solvers have unknown sharding semantics: run them whole.
        let opq_algorithm = request.solver_override.is_none()
            && matches!(
                request.algorithm,
                Algorithm::OpqBased | Algorithm::OpqExtended
            );
        if !opq_algorithm {
            return vec![pass_through];
        }

        if request.workload.is_homogeneous() {
            let n = request.workload.len();
            let threshold = request.workload.threshold(0);
            // `n / 2 >= s` (not `n >= 2 * s`) so huge shard sizes cannot
            // overflow; chunks only form when at least two would result.
            if let Some(target) = self
                .config
                .homogeneous_shard
                .filter(|&s| s >= 1 && n / 2 >= s)
            {
                // Chunks as even as possible: k = ⌈n/target⌉ chunks whose
                // sizes differ by at most one, assigned low-id-first.
                let chunks = n.div_ceil(target);
                let small = n / chunks;
                let extra = n % chunks;
                let mut base: TaskId = 0;
                return (0..chunks)
                    .map(|c| {
                        let size = if c < extra { small + 1 } else { small };
                        let shard = Shard {
                            work: ShardWork::Opq { n: size, threshold },
                            remap: ShardRemap::Offset(base),
                        };
                        base += size;
                        shard
                    })
                    .collect();
            }
            return vec![Shard {
                work: ShardWork::Opq { n, threshold },
                remap: ShardRemap::Offset(0),
            }];
        }

        if request.algorithm == Algorithm::OpqExtended {
            return hetero::partition(&request.workload)
                .into_iter()
                .map(|bucket| Shard {
                    work: ShardWork::Opq {
                        n: bucket.members.len() as u32,
                        threshold: bucket.confidence,
                    },
                    remap: ShardRemap::Members(Arc::new(bucket.members)),
                })
                .collect();
        }

        // OpqBased on a heterogeneous workload: let the solver itself report
        // HeterogeneousUnsupported through the normal result path.
        vec![pass_through]
    }

    /// Builds the closure one worker will run for `work`. Each job is
    /// unwind-safe at its boundary: a panicking solver becomes an
    /// [`EngineError::WorkerPanicked`] result, never a wedged handle. The
    /// optional `notify` runs after the result send, so by the time a
    /// notification is observed the result is ready to `try_recv`.
    fn make_job(
        &self,
        index: usize,
        work: ShardWork,
        request: &EngineRequest,
        result_tx: Sender<ShardResult>,
        notify: Option<ShardNotify>,
    ) -> Job {
        match work {
            ShardWork::Opq { n, threshold } => {
                let bins = Arc::clone(&request.bins);
                let cache = Arc::clone(&self.cache);
                let solver = self.config.solver.clone();
                let trace = request.trace.clone();
                Box::new(move |ctx: JobCtx| {
                    if let Some(trace) = &trace {
                        trace.record_shard("shard_start", index, ctx.worker, ctx.stolen);
                    }
                    let result = guard_panics(AssertUnwindSafe(|| {
                        let theta = reliability::theta(threshold);
                        let key = CacheKey {
                            algorithm: Algorithm::OpqBased,
                            fingerprint: Fingerprint::new(Arc::clone(&bins), theta, &solver),
                        };
                        let artifacts =
                            cache.get_or_try_insert_with(key, || solver.prepare(&bins, theta))?;
                        let workload = Workload::homogeneous(n, threshold)?;
                        Ok(solver.solve_with(artifacts.as_ref(), &workload, &bins)?)
                    }));
                    // Stamp the finish before the send: whoever observes the
                    // result (and therefore "merged") sees it after this.
                    if let Some(trace) = &trace {
                        trace.record_shard("shard_finish", index, ctx.worker, ctx.stolen);
                    }
                    let _ = result_tx.send((index, result));
                    if let Some(notify) = &notify {
                        notify();
                    }
                })
            }
            ShardWork::Prepared => {
                let algorithm = request.algorithm;
                let workload = request.workload.clone();
                let bins = Arc::clone(&request.bins);
                let seed = request.seed;
                let cache = Arc::clone(&self.cache);
                let solver_override = request.solver_override.clone();
                let trace = request.trace.clone();
                Box::new(move |ctx: JobCtx| {
                    if let Some(trace) = &trace {
                        trace.record_shard("shard_start", index, ctx.worker, ctx.stolen);
                    }
                    let result = guard_panics(AssertUnwindSafe(|| {
                        let cacheable = solver_override.is_none();
                        let solver: Arc<dyn PreparedSolver + Send + Sync> = match solver_override {
                            Some(solver) => solver,
                            // The one randomized solver takes the request's
                            // seed; the seed shapes rounding, not artifacts,
                            // so it stays out of the fingerprint.
                            None => match algorithm {
                                Algorithm::Baseline => Arc::new(Baseline {
                                    config: BaselineConfig {
                                        seed,
                                        ..BaselineConfig::default()
                                    },
                                }),
                                other => Arc::from(other.solver()),
                            },
                        };
                        if !workload.is_homogeneous() && !solver.supports_heterogeneous() {
                            // Surface the solver's own rejection without
                            // preparing artifacts it could never use.
                            return Ok(solver.solve(&workload, &bins)?);
                        }
                        let theta = reliability::theta(workload.max_threshold());
                        let artifacts = if cacheable {
                            let key = CacheKey {
                                algorithm,
                                fingerprint: Fingerprint::new(
                                    Arc::clone(&bins),
                                    theta,
                                    solver.as_ref(),
                                ),
                            };
                            cache.get_or_try_insert_with(key, || solver.prepare(&bins, theta))?
                        } else {
                            solver.prepare(&bins, theta)?
                        };
                        Ok(solver.solve_with(artifacts.as_ref(), &workload, &bins)?)
                    }));
                    if let Some(trace) = &trace {
                        trace.record_shard("shard_finish", index, ctx.worker, ctx.stolen);
                    }
                    let _ = result_tx.send((index, result));
                    if let Some(notify) = &notify {
                        notify();
                    }
                })
            }
        }
    }
}

/// Runs `work`, converting an unwind into [`EngineError::WorkerPanicked`].
fn guard_panics(
    work: AssertUnwindSafe<impl FnOnce() -> Result<DecompositionPlan, EngineError>>,
) -> Result<DecompositionPlan, EngineError> {
    match catch_unwind(work) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(EngineError::WorkerPanicked { message })
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(sched: &Scheduler, worker: usize) {
    // Jobs guard their own unwinds (guard_panics), but a panic anywhere
    // else in a job closure must still not take the worker down: swallow
    // the unwind and move to the next job. `None` means the scheduler shut
    // down and every queued job has been claimed.
    while let Some((job, stolen)) = sched.next_job(worker) {
        let ctx = JobCtx { worker, stolen };
        drop(catch_unwind(AssertUnwindSafe(move || job(ctx))));
    }
}

// The engine is shared across threads by services built on top of it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineRequest>();
    assert_send_sync::<ArtifactCache>();
    assert_send_sync::<ResolvedPlan>();
    assert_send_sync::<WorkloadDelta>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use slade_core::solver::DecompositionSolver;

    fn paper_bins() -> Arc<BinSet> {
        Arc::new(BinSet::paper_example())
    }

    #[test]
    fn example9_through_the_engine() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            paper_bins(),
        );
        let plan = engine.solve(request).unwrap();
        assert!((plan.total_cost() - 0.68).abs() < 1e-9);
    }

    #[test]
    fn engine_plan_equals_direct_solve_for_unsharded_requests() {
        let engine = Engine::new(EngineConfig {
            threads: 3,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        for n in [1u32, 100, 2_000] {
            let workload = Workload::homogeneous(n, 0.95).unwrap();
            let direct = OpqBased::default().solve(&workload, &bins).unwrap();
            let request = EngineRequest::new(Algorithm::OpqBased, workload, Arc::clone(&bins));
            assert_eq!(engine.solve(request).unwrap(), direct, "n = {n}");
        }
    }

    #[test]
    fn hetero_requests_shard_across_buckets_and_stay_feasible() {
        let engine = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let workload =
            Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95, 0.11, 0.64]).unwrap();
        let request =
            EngineRequest::new(Algorithm::OpqExtended, workload.clone(), Arc::clone(&bins));
        let plan = engine.solve(request).unwrap();
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible, "unsatisfied: {:?}", audit.unsatisfied);
        // The whole plan — bins, assignment, label — equals the sequential
        // solver's (same buckets in the same order, same sub-solves).
        let direct = Algorithm::OpqExtended.solve(&workload, &bins).unwrap();
        assert_eq!(plan, direct);
    }

    #[test]
    fn engine_plans_carry_the_requested_algorithm_label() {
        let engine = Engine::new(EngineConfig::default());
        let bins = paper_bins();
        // Homogeneous OpqExtended: one OPQ shard internally, but the result
        // must still read (and compare) as the requested algorithm's plan.
        let workload = Workload::homogeneous(4, 0.95).unwrap();
        let request =
            EngineRequest::new(Algorithm::OpqExtended, workload.clone(), Arc::clone(&bins));
        let plan = engine.solve(request).unwrap();
        assert_eq!(plan.algorithm(), "OpqExtended");
        let direct = Algorithm::OpqExtended.solve(&workload, &bins).unwrap();
        assert_eq!(plan, direct);
    }

    #[test]
    fn sharded_homogeneous_requests_are_feasible_and_deterministic() {
        let config = EngineConfig {
            threads: 4,
            homogeneous_shard: Some(64),
            ..EngineConfig::default()
        };
        let bins = paper_bins();
        let workload = Workload::homogeneous(500, 0.95).unwrap();
        let request = EngineRequest::new(Algorithm::OpqBased, workload.clone(), bins.clone());

        let engine = Engine::new(config.clone());
        let plan = engine.solve(request.clone()).unwrap();
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible);

        let again = Engine::new(config).solve(request).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn opq_based_heterogeneous_error_propagates() {
        let engine = Engine::new(EngineConfig::default());
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::heterogeneous(vec![0.5, 0.9]).unwrap(),
            paper_bins(),
        );
        assert_eq!(
            engine.solve(request),
            Err(EngineError::Solve(SladeError::HeterogeneousUnsupported {
                solver: "OpqBased"
            }))
        );
    }

    #[test]
    fn tiny_queue_exerts_backpressure_without_deadlock() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            queue_capacity: 1,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let handles = engine.submit_batch((0..32).map(|i| {
            EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(10 + i, 0.95).unwrap(),
                Arc::clone(&bins),
            )
        }));
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn per_request_seeds_reach_the_baseline() {
        let engine = Engine::new(EngineConfig::default());
        let bins = paper_bins();
        let workload = Workload::homogeneous(40, 0.95).unwrap();
        let plan_a = engine
            .solve(
                EngineRequest::new(Algorithm::Baseline, workload.clone(), bins.clone())
                    .with_seed(7),
            )
            .unwrap();
        let plan_a_again = engine
            .solve(
                EngineRequest::new(Algorithm::Baseline, workload.clone(), bins.clone())
                    .with_seed(7),
            )
            .unwrap();
        assert_eq!(plan_a, plan_a_again);
        assert!(plan_a.validate(&workload, &bins).unwrap().feasible);
    }

    /// A solver that panics on solve: the fault-injection vehicle for the
    /// worker-panic tests.
    #[derive(Debug)]
    struct PanickingSolver;

    impl slade_core::solver::DecompositionSolver for PanickingSolver {
        fn name(&self) -> &'static str {
            "Panicking"
        }

        fn solve(
            &self,
            _workload: &Workload,
            _bins: &BinSet,
        ) -> Result<DecompositionPlan, SladeError> {
            panic!("injected solver panic");
        }
    }

    impl PreparedSolver for PanickingSolver {}

    #[test]
    fn solver_panics_surface_as_worker_panicked_not_a_hang() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let request = EngineRequest::new(
            Algorithm::Greedy,
            Workload::homogeneous(4, 0.95).unwrap(),
            Arc::clone(&bins),
        )
        .with_solver(Arc::new(PanickingSolver));
        match engine.solve(request) {
            Err(EngineError::WorkerPanicked { message }) => {
                assert!(message.contains("injected solver panic"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The worker survived the unwind and keeps serving real requests.
        let plan = engine
            .solve(EngineRequest::new(
                Algorithm::Greedy,
                Workload::homogeneous(4, 0.95).unwrap(),
                bins,
            ))
            .unwrap();
        assert_eq!(plan.algorithm(), "Greedy");
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects_new_requests() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            queue_capacity: 4,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let handles = engine.submit_batch((0..16).map(|i| {
            EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(10 + i, 0.95).unwrap(),
                Arc::clone(&bins),
            )
        }));
        assert!(!engine.is_shut_down());
        engine.shutdown();
        assert!(engine.is_shut_down());
        // Everything submitted before the shutdown still delivers: the drain
        // is deterministic, never lossy.
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
        // New work is rejected explicitly on both submission paths.
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            Arc::clone(&bins),
        );
        assert_eq!(
            engine.submit(request.clone()).wait(),
            Err(EngineError::ShutDown)
        );
        match engine.solve_resolved(request) {
            Err(EngineError::ShutDown) => {}
            other => panic!("expected ShutDown, got {other:?}"),
        }
        // Shutdown is idempotent.
        engine.shutdown();
    }

    /// A solver that blocks until released through a channel: the
    /// fault-injection vehicle for the timeout tests.
    #[derive(Debug)]
    struct BlockingSolver {
        release: Mutex<std::sync::mpsc::Receiver<()>>,
    }

    impl slade_core::solver::DecompositionSolver for BlockingSolver {
        fn name(&self) -> &'static str {
            "Blocking"
        }

        fn solve(
            &self,
            workload: &Workload,
            bins: &BinSet,
        ) -> Result<DecompositionPlan, SladeError> {
            let guard = self.release.lock().unwrap_or_else(|p| p.into_inner());
            // Bounded so a broken test cannot wedge the worker forever.
            let _ = guard.recv_timeout(Duration::from_secs(10));
            slade_core::greedy::Greedy.solve(workload, bins)
        }
    }

    impl PreparedSolver for BlockingSolver {}

    #[test]
    fn wait_timeout_surfaces_a_stuck_solve_without_wedging() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let (release, blocked) = std::sync::mpsc::channel();
        let request = EngineRequest::new(
            Algorithm::Greedy,
            Workload::homogeneous(4, 0.95).unwrap(),
            Arc::clone(&bins),
        )
        .with_solver(Arc::new(BlockingSolver {
            release: Mutex::new(blocked),
        }));
        let handle = engine.submit(request);
        let timeout = Duration::from_millis(40);
        assert_eq!(
            handle.wait_timeout(timeout),
            Err(EngineError::Timeout { after: timeout })
        );
        // Release the stuck solver; the worker survives and keeps serving,
        // and a generous timeout behaves exactly like a plain wait.
        release.send(()).unwrap();
        let plan = engine
            .submit(EngineRequest::new(
                Algorithm::Greedy,
                Workload::homogeneous(4, 0.95).unwrap(),
                bins,
            ))
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(plan.algorithm(), "Greedy");
    }

    #[test]
    fn resolved_timeouts_match_their_blocking_twins_when_not_stuck() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(40, 0.95).unwrap(),
            Arc::clone(&bins),
        );
        let generous = Duration::from_secs(60);
        let blocking = engine.solve_resolved(request.clone()).unwrap();
        let timed = engine.solve_resolved_timeout(request, generous).unwrap();
        assert_eq!(*blocking.plan(), *timed.plan());
        let delta = WorkloadDelta::Resize(60);
        let resubmitted = engine.resubmit(&blocking, &delta).unwrap();
        let resubmitted_timed = engine.resubmit_timeout(&timed, &delta, generous).unwrap();
        assert_eq!(*resubmitted.plan(), *resubmitted_timed.plan());
    }

    #[test]
    fn try_wait_completes_without_blocking_and_matches_wait() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let workload = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
        let request = EngineRequest::new(Algorithm::OpqExtended, workload, Arc::clone(&bins));
        let reference = engine.solve(request.clone()).unwrap();

        let mut handle = engine.submit(request);
        let deadline = Instant::now() + Duration::from_secs(20);
        let plan = loop {
            match handle.try_wait() {
                Some(result) => break result.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "try_wait never completed");
                    thread::yield_now();
                }
            }
        };
        assert_eq!(plan, reference);
        // Spent: the handle hands its result out exactly once.
        assert!(handle.try_wait().is_none());
    }

    #[test]
    fn shard_notify_fires_once_per_shard_after_the_result_is_ready() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        // Four well-separated thresholds = four threshold-bucket shards.
        let workload = Workload::heterogeneous(vec![0.95, 0.72, 0.3, 0.11]).unwrap();
        let request = EngineRequest::new(Algorithm::OpqExtended, workload, Arc::clone(&bins));
        let (ping_tx, ping_rx) = std::sync::mpsc::channel::<()>();
        let notify: ShardNotify = Arc::new(move || {
            let _ = ping_tx.send(());
        });
        let mut handle = engine.submit_notify(request, notify);
        let mut pings = 0;
        let result = loop {
            ping_rx
                .recv_timeout(Duration::from_secs(20))
                .expect("a shard must notify");
            pings += 1;
            if let Some(result) = handle.try_wait() {
                break result;
            }
        };
        assert!(result.is_ok());
        assert_eq!(pings, 4, "one notification per threshold bucket");
    }

    #[test]
    fn submit_resolved_and_resubmit_submit_match_their_blocking_twins() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(40, 0.95).unwrap(),
            Arc::clone(&bins),
        );
        let blocking = engine.solve_resolved(request.clone()).unwrap();
        let submitted = engine.submit_resolved(request).wait().unwrap();
        assert_eq!(*blocking.plan(), *submitted.plan());

        let delta = WorkloadDelta::Resize(60);
        let blocking_re = engine.resubmit(&blocking, &delta).unwrap();
        let mut handle = engine.resubmit_submit(&submitted, &delta).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        let polled = loop {
            match handle.try_wait() {
                Some(result) => break result.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "resubmit handle never completed");
                    thread::yield_now();
                }
            }
        };
        assert_eq!(*blocking_re.plan(), *polled.plan());
        assert_eq!(blocking_re.reused_shards(), polled.reused_shards());
        assert!(handle.try_wait().is_none(), "spent after delivering");

        // An invalid delta fails at submission, before anything queues.
        let hetero_prior = engine
            .solve_resolved(EngineRequest::new(
                Algorithm::OpqExtended,
                Workload::heterogeneous(vec![0.5, 0.9]).unwrap(),
                bins,
            ))
            .unwrap();
        assert!(matches!(
            engine.resubmit_submit(&hetero_prior, &WorkloadDelta::Resize(10)),
            Err(EngineError::Solve(_))
        ));
    }

    #[test]
    fn handles_surface_shutdown_through_try_wait() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        engine.shutdown();
        let bins = paper_bins();
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            bins,
        );
        let mut handle = engine.submit(request.clone());
        assert_eq!(handle.try_wait(), Some(Err(EngineError::ShutDown)));
        assert!(handle.try_wait().is_none());
        let mut resolved = engine.submit_resolved(request);
        match resolved.try_wait() {
            Some(Err(EngineError::ShutDown)) => {}
            other => panic!("expected ShutDown, got {:?}", other.map(|r| r.map(|_| ()))),
        }
    }

    #[test]
    fn delta_apply_validates_and_rewrites_workloads() {
        let homo = Workload::homogeneous(10, 0.9).unwrap();
        let grown = WorkloadDelta::Resize(25).apply(&homo).unwrap();
        assert_eq!(grown.len(), 25);
        assert!(grown.is_homogeneous());

        let hetero = Workload::heterogeneous(vec![0.5, 0.9, 0.7]).unwrap();
        let shrunk = WorkloadDelta::Resize(2).apply(&hetero).unwrap();
        assert_eq!(shrunk.len(), 2);
        assert!(WorkloadDelta::Resize(5).apply(&hetero).is_err());

        let retargeted = WorkloadDelta::SetThresholds(vec![(0, 0.9), (2, 0.9)])
            .apply(&hetero)
            .unwrap();
        assert!(retargeted.is_homogeneous(), "all thresholds now 0.9");
        assert!(WorkloadDelta::SetThresholds(vec![(9, 0.5)])
            .apply(&hetero)
            .is_err());

        let appended = WorkloadDelta::Append(vec![0.6, 0.65]).apply(&homo).unwrap();
        assert_eq!(appended.len(), 12);
        assert_eq!(appended.threshold(11), 0.65);
        assert!(WorkloadDelta::SetThresholds(vec![(0, 1.5)])
            .apply(&homo)
            .is_err());
    }

    /// A solver that announces entry and then blocks until released: lets a
    /// test pin down *both* workers so queued jobs pile up in the deques.
    #[derive(Debug)]
    struct GatedSolver {
        started: std::sync::mpsc::Sender<()>,
        release: Mutex<std::sync::mpsc::Receiver<()>>,
    }

    impl slade_core::solver::DecompositionSolver for GatedSolver {
        fn name(&self) -> &'static str {
            "Gated"
        }

        fn solve(
            &self,
            workload: &Workload,
            bins: &BinSet,
        ) -> Result<DecompositionPlan, SladeError> {
            let _ = self.started.send(());
            let guard = self.release.lock().unwrap_or_else(|p| p.into_inner());
            // Bounded so a broken test cannot wedge the worker forever.
            let _ = guard.recv_timeout(Duration::from_secs(10));
            slade_core::greedy::Greedy.solve(workload, bins)
        }
    }

    impl PreparedSolver for GatedSolver {}

    /// Pins both workers of a two-thread engine behind gates; returns the
    /// blocked handles and the senders that release them.
    fn gate_both_workers(
        engine: &Engine,
        bins: &Arc<BinSet>,
    ) -> (Vec<PlanHandle>, Vec<std::sync::mpsc::Sender<()>>) {
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let mut gated = Vec::new();
        let mut releases = Vec::new();
        for _ in 0..2 {
            let (release_tx, release_rx) = std::sync::mpsc::channel();
            releases.push(release_tx);
            gated.push(
                engine.submit(
                    EngineRequest::new(
                        Algorithm::Greedy,
                        Workload::homogeneous(4, 0.95).unwrap(),
                        Arc::clone(bins),
                    )
                    .with_solver(Arc::new(GatedSolver {
                        started: started_tx.clone(),
                        release: Mutex::new(release_rx),
                    })),
                ),
            );
        }
        for _ in 0..2 {
            started_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("both workers must pick up their gate");
        }
        (gated, releases)
    }

    #[test]
    fn shutdown_while_jobs_are_queued_for_stealing_drains_deterministically() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            queue_capacity: 64,
            homogeneous_shard: Some(8),
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let (gated, releases) = gate_both_workers(&engine, &bins);

        // With both workers pinned, these multi-shard requests sit in the
        // deques — some in the pinned workers' own deques, reachable only
        // by stealing once a worker frees up.
        let queued: Vec<PlanHandle> = engine.submit_batch((0..4).map(|i| {
            EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(20 + 8 * i, 0.95).unwrap(),
                Arc::clone(&bins),
            )
        }));
        engine.shutdown();
        assert!(engine.is_shut_down());
        for release in &releases {
            let _ = release.send(());
        }

        // Everything admitted before the shutdown still delivers, and the
        // drained plans match a fresh single-thread engine's solves.
        for handle in gated {
            assert!(handle.wait().is_ok());
        }
        let reference = Engine::new(EngineConfig {
            threads: 1,
            homogeneous_shard: Some(8),
            ..EngineConfig::default()
        });
        for (i, handle) in queued.into_iter().enumerate() {
            let drained = handle.wait().expect("queued jobs drain, never drop");
            let cold = reference
                .solve(EngineRequest::new(
                    Algorithm::OpqBased,
                    Workload::homogeneous(20 + 8 * i as u32, 0.95).unwrap(),
                    Arc::clone(&bins),
                ))
                .unwrap();
            assert_eq!(drained, cold, "request {i} diverged during the drain");
        }
        assert_eq!(
            engine
                .submit(EngineRequest::new(
                    Algorithm::OpqBased,
                    Workload::homogeneous(4, 0.95).unwrap(),
                    bins,
                ))
                .wait(),
            Err(EngineError::ShutDown)
        );
    }

    #[test]
    fn worksteal_and_shared_queue_produce_identical_plans() {
        let bins = paper_bins();
        let batch = |_: ()| {
            vec![
                EngineRequest::new(
                    Algorithm::OpqBased,
                    Workload::homogeneous(40, 0.95).unwrap(),
                    Arc::clone(&bins),
                ),
                EngineRequest::new(
                    Algorithm::OpqExtended,
                    Workload::heterogeneous(vec![0.95, 0.72, 0.3, 0.11, 0.3, 0.72]).unwrap(),
                    Arc::clone(&bins),
                ),
                EngineRequest::new(
                    Algorithm::Baseline,
                    Workload::homogeneous(30, 0.9).unwrap(),
                    Arc::clone(&bins),
                )
                .with_seed(0xFEED),
            ]
        };
        let solve_all = |mode: SchedulerMode| {
            let engine = Engine::new(EngineConfig {
                threads: 4,
                scheduler: mode,
                homogeneous_shard: Some(16),
                ..EngineConfig::default()
            });
            let plans: Vec<DecompositionPlan> = engine
                .submit_batch(batch(()))
                .into_iter()
                .map(|h| h.wait().unwrap())
                .collect();
            (plans, engine.steals())
        };
        let (stealing, _) = solve_all(SchedulerMode::WorkSteal);
        let (shared, shared_steals) = solve_all(SchedulerMode::SharedQueue);
        assert_eq!(stealing, shared, "scheduler choice leaked into plans");
        assert_eq!(shared_steals, 0, "the shared queue has nothing to steal");
    }

    #[test]
    fn shard_notify_and_try_wait_agree_when_shards_are_stolen() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            queue_capacity: 64,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let (gated, releases) = gate_both_workers(&engine, &bins);

        // Four threshold buckets queued behind two pinned workers: once one
        // gate opens, its worker drains one deque and steals from the other.
        let workload = Workload::heterogeneous(vec![0.95, 0.72, 0.3, 0.11]).unwrap();
        let reference = Algorithm::OpqExtended.solve(&workload, &bins).unwrap();
        let (ping_tx, ping_rx) = std::sync::mpsc::channel::<()>();
        let notify: ShardNotify = Arc::new(move || {
            let _ = ping_tx.send(());
        });
        let mut handle = engine.submit_notify(
            EngineRequest::new(Algorithm::OpqExtended, workload, Arc::clone(&bins)),
            notify,
        );
        assert!(handle.try_wait().is_none(), "nothing can be done yet");
        let _ = releases[0].send(());

        let mut pings = 0;
        let plan = loop {
            ping_rx
                .recv_timeout(Duration::from_secs(20))
                .expect("a shard must notify");
            pings += 1;
            if let Some(result) = handle.try_wait() {
                break result.unwrap();
            }
        };
        assert_eq!(pings, 4, "one notification per threshold bucket");
        assert_eq!(plan, reference, "stolen shards changed the plan");

        let _ = releases[1].send(());
        for handle in gated {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn a_panicking_job_is_caught_even_when_stolen() {
        // Whether the panicking job is stolen or own-popped depends on which
        // pinned worker frees first, so run several rounds: every round must
        // surface WorkerPanicked and keep the pool alive, and across the
        // rounds at least one job must actually have been stolen.
        let bins = paper_bins();
        let mut total_steals = 0u64;
        for round in 0..20 {
            let engine = Engine::new(EngineConfig {
                threads: 2,
                queue_capacity: 16,
                ..EngineConfig::default()
            });
            let (gated, releases) = gate_both_workers(&engine, &bins);
            let doomed = engine.submit(
                EngineRequest::new(
                    Algorithm::Greedy,
                    Workload::homogeneous(4, 0.95).unwrap(),
                    Arc::clone(&bins),
                )
                .with_solver(Arc::new(PanickingSolver)),
            );
            // Alternate which gate opens first so both the own-pop and the
            // steal path run the panicking job across the rounds.
            let _ = releases[round % 2].send(());
            match doomed.wait() {
                Err(EngineError::WorkerPanicked { message }) => {
                    assert!(message.contains("injected solver panic"), "{message}");
                }
                other => panic!("round {round}: expected WorkerPanicked, got {other:?}"),
            }
            let _ = releases[(round + 1) % 2].send(());
            for handle in gated {
                assert!(handle.wait().is_ok());
            }
            // The worker that ran the panic survived the unwind.
            let plan = engine
                .solve(EngineRequest::new(
                    Algorithm::Greedy,
                    Workload::homogeneous(4, 0.95).unwrap(),
                    Arc::clone(&bins),
                ))
                .unwrap();
            assert_eq!(plan.algorithm(), "Greedy");
            total_steals += engine.steals();
        }
        assert!(
            total_steals > 0,
            "20 rounds with pinned workers never stole a job"
        );
    }
}
