//! The engine: a fixed worker pool, request sharding, and blocking handles.

use crate::cache::{ArtifactCache, CacheStats};
use crate::fingerprint::Fingerprint;
use slade_core::baseline::{Baseline, BaselineConfig};
use slade_core::bin_set::BinSet;
use slade_core::hetero;
use slade_core::opq_based::OpqBased;
use slade_core::plan::DecompositionPlan;
use slade_core::reliability;
use slade_core::solver::{Algorithm, DecompositionSolver};
use slade_core::task::{TaskId, Workload};
use slade_core::SladeError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads in the pool (clamped to at least 1). The default is
    /// the machine's available parallelism.
    pub threads: usize,
    /// Bound of the shared job queue; [`Engine::submit`] blocks when it is
    /// full, which is the engine's backpressure. Clamped to at least 1.
    pub queue_capacity: usize,
    /// [`ArtifactCache`] capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// When set, homogeneous OPQ requests of at least twice this many tasks
    /// are split into independent chunks of roughly this size, solved in
    /// parallel, and merged. Chunking is decided by the request alone (never
    /// by thread count), so plans stay deterministic; each chunk packs its
    /// own bins, so the merged plan can post up to one extra leftover group
    /// per chunk compared to the unsharded solve. `None` (the default) keeps
    /// every homogeneous request as a single shard, which is cost-identical
    /// to [`OpqBased::solve`].
    pub homogeneous_shard: Option<u32>,
    /// Configuration used for every artifact-accelerated (OPQ) shard; also
    /// the configuration whose knobs enter the cache [`Fingerprint`].
    pub solver: OpqBased,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 256,
            cache_capacity: 64,
            homogeneous_shard: None,
            solver: OpqBased::default(),
        }
    }
}

/// One decomposition request, self-contained and cheap to move across
/// threads (the bin menu is shared by `Arc`).
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// The solver to run.
    pub algorithm: Algorithm,
    /// The instance's workload.
    pub workload: Workload,
    /// The instance's bin menu.
    pub bins: Arc<BinSet>,
    /// Per-request seed for randomized solvers (only [`Algorithm::Baseline`]
    /// consumes it today). Deterministic solvers ignore it.
    pub seed: u64,
}

impl EngineRequest {
    /// A request with the default seed `0`.
    pub fn new(algorithm: Algorithm, workload: Workload, bins: Arc<BinSet>) -> Self {
        EngineRequest {
            algorithm,
            workload,
            bins,
            seed: 0,
        }
    }

    /// Sets the seed consumed by randomized solvers.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Errors surfaced by [`PlanHandle::wait`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A shard's solver failed; the underlying error.
    Solve(SladeError),
    /// A shard's worker disappeared before delivering a result (it panicked
    /// while solving, or the engine shut down underneath the handle).
    ShardLost,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Solve(e) => write!(f, "shard solve failed: {e}"),
            EngineError::ShardLost => {
                write!(f, "a worker disappeared before delivering its shard")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Solve(e) => Some(e),
            EngineError::ShardLost => None,
        }
    }
}

impl From<SladeError> for EngineError {
    fn from(e: SladeError) -> Self {
        EngineError::Solve(e)
    }
}

/// How a shard's bucket-local / chunk-local task ids map back to the
/// request's global ids.
#[derive(Debug, Clone)]
enum ShardRemap {
    /// Shard-local id `j` is global id `base + j`.
    Offset(TaskId),
    /// Shard-local id `j` is global id `members[j]` (threshold buckets).
    Members(Arc<Vec<TaskId>>),
}

/// What one shard computes.
enum ShardWork {
    /// A homogeneous OPQ solve of `n` tasks at `threshold`, accelerated by
    /// the artifact cache.
    Opq { n: u32, threshold: f64 },
    /// Run the request's algorithm directly on its full workload.
    Direct,
}

struct Shard {
    work: ShardWork,
    remap: ShardRemap,
}

type ShardResult = (usize, Result<DecompositionPlan, SladeError>);
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The label the requested algorithm's own solver stamps on its plans —
/// taken from the solver registry itself so it can never drift — so wrapped
/// engine results compare equal to direct `solve` calls (the derived
/// `PartialEq` on [`DecompositionPlan`] includes the label). Only OPQ
/// requests are ever wrapped; every other algorithm runs as a single
/// pass-through shard carrying whatever label its solver chose.
fn plan_label(algorithm: Algorithm) -> &'static str {
    algorithm.solver().name()
}

/// A blocking handle to one submitted request.
///
/// Dropping the handle without calling [`PlanHandle::wait`] abandons the
/// result; the shards still run to completion (they are already queued) but
/// their plans are discarded.
#[must_use = "a PlanHandle does nothing until wait()ed on"]
pub struct PlanHandle {
    rx: Receiver<ShardResult>,
    remaps: Vec<ShardRemap>,
    /// `None`: a single identity shard whose result is already exactly what
    /// a direct `solve` call would return — pass it through untouched.
    /// `Some(label)`: wrap the merged shards under this label, mirroring
    /// how `OpqExtended` itself wraps its per-bucket `OpqBased` sub-plans —
    /// so engine results compare equal (label included) to the sequential
    /// solver's whenever sharding does not change the plan.
    wrap: Option<&'static str>,
}

impl PlanHandle {
    /// Blocks until every shard has reported, then merges the sub-plans in
    /// shard order (never in completion order — that is what keeps the
    /// result independent of scheduling).
    pub fn wait(self) -> Result<DecompositionPlan, EngineError> {
        let shards = self.remaps.len();
        let mut subs: Vec<Option<DecompositionPlan>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let (index, result) = self.rx.recv().map_err(|_| EngineError::ShardLost)?;
            subs[index] = Some(result?);
        }

        let Some(label) = self.wrap else {
            return Ok(subs
                .into_iter()
                .next()
                .flatten()
                .expect("an unwrapped handle has exactly one shard"));
        };

        let mut plan = DecompositionPlan::empty(label);
        for (sub, remap) in subs.into_iter().zip(&self.remaps) {
            let sub = sub.expect("every shard index reported exactly once");
            plan.merge(apply_remap(sub, remap));
        }
        Ok(plan)
    }
}

fn apply_remap(mut plan: DecompositionPlan, remap: &ShardRemap) -> DecompositionPlan {
    match remap {
        ShardRemap::Offset(0) => {}
        ShardRemap::Offset(base) => plan.remap_tasks(|t| t + base),
        ShardRemap::Members(members) => plan.remap_tasks(|t| members[t as usize]),
    }
    plan
}

/// The concurrent decomposition service; see the crate docs for the design.
///
/// Dropping the engine closes the job queue and joins every worker, so
/// already-queued shards finish first (outstanding [`PlanHandle`]s stay
/// valid during the drop).
pub struct Engine {
    /// `Some` while accepting work; taken on drop to hang up the queue.
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<ArtifactCache>,
    config: EngineConfig,
}

impl Engine {
    /// Spawns the worker pool described by `config`.
    pub fn new(config: EngineConfig) -> Self {
        let (queue, jobs) = sync_channel::<Job>(config.queue_capacity.max(1));
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                thread::Builder::new()
                    .name(format!("slade-worker-{i}"))
                    .spawn(move || worker_loop(&jobs))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        let cache = Arc::new(ArtifactCache::new(config.cache_capacity));
        Engine {
            queue: Some(queue),
            workers,
            cache,
            config,
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the artifact cache's hit/miss/occupancy counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Submits one request, returning a blocking [`PlanHandle`].
    ///
    /// Blocks while the job queue is full (backpressure). Sharding is
    /// decided here, from the request alone.
    pub fn submit(&self, request: EngineRequest) -> PlanHandle {
        let shards = self.shard(&request);
        // Pass through untouched when the one shard already produces what a
        // direct `solve` would: any Direct shard (it literally runs the
        // requested solver), or a whole-workload OPQ shard for OpqBased
        // (solve_with_artifacts reproduces OpqBased::solve exactly).
        // Everything else is wrapped under the requested algorithm's label.
        let wrap = match shards.as_slice() {
            [Shard {
                work: ShardWork::Direct,
                remap: ShardRemap::Offset(0),
            }] => None,
            [Shard {
                work: ShardWork::Opq { .. },
                remap: ShardRemap::Offset(0),
            }] if request.algorithm == Algorithm::OpqBased => None,
            _ => Some(plan_label(request.algorithm)),
        };
        let (result_tx, result_rx) = channel::<ShardResult>();
        let mut remaps = Vec::with_capacity(shards.len());
        let queue = self
            .queue
            .as_ref()
            .expect("the queue is open for the engine's whole lifetime");
        for (index, shard) in shards.into_iter().enumerate() {
            remaps.push(shard.remap);
            let job = self.make_job(index, shard.work, &request, result_tx.clone());
            queue
                .send(job)
                .expect("workers outlive the engine and never hang up the queue");
        }
        PlanHandle {
            rx: result_rx,
            remaps,
            wrap,
        }
    }

    /// Submits every request in order and returns their handles, preserving
    /// order. Shards of different requests interleave freely in the pool;
    /// each handle's result is still deterministic.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = EngineRequest>,
    ) -> Vec<PlanHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Convenience: submit one request and block for its plan.
    pub fn solve(&self, request: EngineRequest) -> Result<DecompositionPlan, EngineError> {
        self.submit(request).wait()
    }

    /// Splits a request into independent shards (see the crate docs).
    fn shard(&self, request: &EngineRequest) -> Vec<Shard> {
        let opq_algorithm = matches!(
            request.algorithm,
            Algorithm::OpqBased | Algorithm::OpqExtended
        );
        if !opq_algorithm {
            return vec![Shard {
                work: ShardWork::Direct,
                remap: ShardRemap::Offset(0),
            }];
        }

        if request.workload.is_homogeneous() {
            let n = request.workload.len();
            let threshold = request.workload.threshold(0);
            // `n / 2 >= s` (not `n >= 2 * s`) so huge shard sizes cannot
            // overflow; chunks only form when at least two would result.
            if let Some(target) = self.config.homogeneous_shard.filter(|&s| s >= 1 && n / 2 >= s)
            {
                // Chunks as even as possible: k = ⌈n/target⌉ chunks whose
                // sizes differ by at most one, assigned low-id-first.
                let chunks = n.div_ceil(target);
                let small = n / chunks;
                let extra = n % chunks;
                let mut base: TaskId = 0;
                return (0..chunks)
                    .map(|c| {
                        let size = if c < extra { small + 1 } else { small };
                        let shard = Shard {
                            work: ShardWork::Opq { n: size, threshold },
                            remap: ShardRemap::Offset(base),
                        };
                        base += size;
                        shard
                    })
                    .collect();
            }
            return vec![Shard {
                work: ShardWork::Opq { n, threshold },
                remap: ShardRemap::Offset(0),
            }];
        }

        if request.algorithm == Algorithm::OpqExtended {
            return hetero::partition(&request.workload)
                .into_iter()
                .map(|bucket| Shard {
                    work: ShardWork::Opq {
                        n: bucket.members.len() as u32,
                        threshold: bucket.confidence,
                    },
                    remap: ShardRemap::Members(Arc::new(bucket.members)),
                })
                .collect();
        }

        // OpqBased on a heterogeneous workload: let the solver itself report
        // HeterogeneousUnsupported through the normal result path.
        vec![Shard {
            work: ShardWork::Direct,
            remap: ShardRemap::Offset(0),
        }]
    }

    /// Builds the closure one worker will run for `work`.
    fn make_job(
        &self,
        index: usize,
        work: ShardWork,
        request: &EngineRequest,
        result_tx: Sender<ShardResult>,
    ) -> Job {
        match work {
            ShardWork::Opq { n, threshold } => {
                let bins = Arc::clone(&request.bins);
                let cache = Arc::clone(&self.cache);
                let solver = self.config.solver.clone();
                Box::new(move || {
                    let theta = reliability::theta(threshold);
                    let key = Fingerprint::new(Arc::clone(&bins), theta, &solver);
                    let result = cache
                        .get_or_try_insert_with(key, || solver.artifacts(&bins, theta))
                        .map(|artifacts| solver.solve_with_artifacts(n, &artifacts, &bins));
                    let _ = result_tx.send((index, result));
                })
            }
            ShardWork::Direct => {
                let algorithm = request.algorithm;
                let workload = request.workload.clone();
                let bins = Arc::clone(&request.bins);
                let seed = request.seed;
                Box::new(move || {
                    let solver: Box<dyn DecompositionSolver + Send + Sync> = match algorithm {
                        // The one randomized solver takes the request's seed.
                        Algorithm::Baseline => Box::new(Baseline {
                            config: BaselineConfig {
                                seed,
                                ..BaselineConfig::default()
                            },
                        }),
                        other => other.solver(),
                    };
                    let _ = result_tx.send((index, solver.solve(&workload, &bins)));
                })
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        drop(self.queue.take()); // hang up; workers drain the queue and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(jobs: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only for the dequeue, never while solving.
        let job = {
            let guard = jobs.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match job {
            // A panicking solver must not take the worker down with it: the
            // unwind drops the shard's result sender (the waiting handle
            // sees `ShardLost`) and the worker moves on to the next job.
            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            Err(_) => return, // queue hung up: engine is shutting down
        }
    }
}

// The engine is shared across threads by services built on top of it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineRequest>();
    assert_send_sync::<ArtifactCache>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_bins() -> Arc<BinSet> {
        Arc::new(BinSet::paper_example())
    }

    #[test]
    fn example9_through_the_engine() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            paper_bins(),
        );
        let plan = engine.solve(request).unwrap();
        assert!((plan.total_cost() - 0.68).abs() < 1e-9);
    }

    #[test]
    fn engine_plan_equals_direct_solve_for_unsharded_requests() {
        let engine = Engine::new(EngineConfig {
            threads: 3,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        for n in [1u32, 100, 2_000] {
            let workload = Workload::homogeneous(n, 0.95).unwrap();
            let direct = OpqBased::default().solve(&workload, &bins).unwrap();
            let request = EngineRequest::new(Algorithm::OpqBased, workload, Arc::clone(&bins));
            assert_eq!(engine.solve(request).unwrap(), direct, "n = {n}");
        }
    }

    #[test]
    fn hetero_requests_shard_across_buckets_and_stay_feasible() {
        let engine = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let workload =
            Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95, 0.11, 0.64]).unwrap();
        let request =
            EngineRequest::new(Algorithm::OpqExtended, workload.clone(), Arc::clone(&bins));
        let plan = engine.solve(request).unwrap();
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible, "unsatisfied: {:?}", audit.unsatisfied);
        // The whole plan — bins, assignment, label — equals the sequential
        // solver's (same buckets in the same order, same sub-solves).
        let direct = Algorithm::OpqExtended.solve(&workload, &bins).unwrap();
        assert_eq!(plan, direct);
    }

    #[test]
    fn engine_plans_carry_the_requested_algorithm_label() {
        let engine = Engine::new(EngineConfig::default());
        let bins = paper_bins();
        // Homogeneous OpqExtended: one OPQ shard internally, but the result
        // must still read (and compare) as the requested algorithm's plan.
        let workload = Workload::homogeneous(4, 0.95).unwrap();
        let request =
            EngineRequest::new(Algorithm::OpqExtended, workload.clone(), Arc::clone(&bins));
        let plan = engine.solve(request).unwrap();
        assert_eq!(plan.algorithm(), "OpqExtended");
        let direct = Algorithm::OpqExtended.solve(&workload, &bins).unwrap();
        assert_eq!(plan, direct);
    }

    #[test]
    fn sharded_homogeneous_requests_are_feasible_and_deterministic() {
        let config = EngineConfig {
            threads: 4,
            homogeneous_shard: Some(64),
            ..EngineConfig::default()
        };
        let bins = paper_bins();
        let workload = Workload::homogeneous(500, 0.95).unwrap();
        let request = EngineRequest::new(Algorithm::OpqBased, workload.clone(), bins.clone());

        let engine = Engine::new(config.clone());
        let plan = engine.solve(request.clone()).unwrap();
        let audit = plan.validate(&workload, &bins).unwrap();
        assert!(audit.feasible);

        let again = Engine::new(config).solve(request).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn opq_based_heterogeneous_error_propagates() {
        let engine = Engine::new(EngineConfig::default());
        let request = EngineRequest::new(
            Algorithm::OpqBased,
            Workload::heterogeneous(vec![0.5, 0.9]).unwrap(),
            paper_bins(),
        );
        assert_eq!(
            engine.solve(request),
            Err(EngineError::Solve(SladeError::HeterogeneousUnsupported {
                solver: "OpqBased"
            }))
        );
    }

    #[test]
    fn tiny_queue_exerts_backpressure_without_deadlock() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            queue_capacity: 1,
            ..EngineConfig::default()
        });
        let bins = paper_bins();
        let handles = engine.submit_batch((0..32).map(|i| {
            EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(10 + i, 0.95).unwrap(),
                Arc::clone(&bins),
            )
        }));
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn per_request_seeds_reach_the_baseline() {
        let engine = Engine::new(EngineConfig::default());
        let bins = paper_bins();
        let workload = Workload::homogeneous(40, 0.95).unwrap();
        let plan_a = engine
            .solve(
                EngineRequest::new(Algorithm::Baseline, workload.clone(), bins.clone())
                    .with_seed(7),
            )
            .unwrap();
        let plan_a_again = engine
            .solve(
                EngineRequest::new(Algorithm::Baseline, workload.clone(), bins.clone())
                    .with_seed(7),
            )
            .unwrap();
        assert_eq!(plan_a, plan_a_again);
        assert!(plan_a.validate(&workload, &bins).unwrap().feasible);
    }
}
