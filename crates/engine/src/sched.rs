//! The engine's job scheduler: per-worker deques with work stealing.
//!
//! The engine's first five iterations fed the worker pool from one bounded
//! `mpsc` channel behind a mutex — correct, but every dequeue contended on
//! one lock and an idle worker could never help a loaded one. This module
//! replaces it, std-only:
//!
//! * **per-worker deques** — submissions are placed round-robin across one
//!   `VecDeque` per worker; a worker drains its own deque LIFO (freshest
//!   job first, the classic locality heuristic) and, when its own deque is
//!   empty, **steals** the oldest job from a victim's deque (FIFO — the
//!   victim keeps its freshest work);
//! * **counting admission** — a shared atomic counter tracks jobs submitted
//!   but not yet claimed. Submitters reserve a slot (blocking at
//!   `capacity`, which is the engine's backpressure) *before* pushing;
//!   workers claim a slot *before* scanning the deques. A claim therefore
//!   guarantees a job is pushed or about to be pushed, so the scan may spin
//!   only across a submitter's reserve→push window, never indefinitely;
//! * **parking** — an idle pool costs nothing: workers park on a condvar
//!   once the claim counter reads zero, and submitters wake exactly one
//!   parked worker per job. The parked/waiting counters are incremented
//!   under the same lock the notifier takes, which (with the SeqCst
//!   counter operations) rules out missed wakeups;
//! * **deterministic drain** — [`Scheduler::shutdown`] sets the flag and
//!   wakes everyone; a worker only exits once the claim counter is zero,
//!   so every job submitted before shutdown runs before the pool dies.
//!
//! Stealing is *legal* because the engine's results never depend on which
//! worker runs which shard: sharding is decided at submit time from the
//! request alone, every job is a pure function of its request, and shard
//! results merge in shard order. The scheduler only changes *when and
//! where* jobs run — the tests in `tests/steal_determinism.rs` pin that
//! plans stay byte-identical under steal-heavy schedules.
//!
//! [`SchedulerMode::SharedQueue`] degenerates the same machinery to a
//! single shared FIFO — the old mpsc pool's discipline — kept so benches
//! can compare old against new on identical workloads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread;

/// One queued unit of work (a shard solve, boxed with its result channel).
/// The worker hands the job its [`JobCtx`] — which worker ran it and how it
/// was dequeued — so jobs can stamp scheduling provenance into request
/// traces without the scheduler knowing what a trace is.
pub(crate) type Job = Box<dyn FnOnce(JobCtx) + Send + 'static>;

/// How a job reached the worker running it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobCtx {
    /// Index of the worker executing the job.
    pub worker: usize,
    /// Whether the job was stolen from another worker's deque.
    pub stolen: bool,
}

/// Which queueing discipline the engine's worker pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Per-worker deques with LIFO self-pop and FIFO stealing (the
    /// default). Plans are byte-identical to [`SchedulerMode::SharedQueue`]
    /// for every request — only scheduling changes.
    #[default]
    WorkSteal,
    /// One shared FIFO all workers pull from — the discipline of the
    /// engine's original bounded-mpsc pool, kept for A/B benchmarking.
    SharedQueue,
}

impl SchedulerMode {
    /// The CLI/stats spelling (`work-steal` / `shared-queue`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::WorkSteal => "work-steal",
            SchedulerMode::SharedQueue => "shared-queue",
        }
    }
}

impl std::str::FromStr for SchedulerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "work-steal" => Ok(SchedulerMode::WorkSteal),
            "shared-queue" => Ok(SchedulerMode::SharedQueue),
            other => Err(format!(
                "unknown scheduler `{other}`; expected work-steal or shared-queue"
            )),
        }
    }
}

/// The work-stealing scheduler shared by every worker of one [`Engine`].
///
/// [`Engine`]: crate::Engine
pub(crate) struct Scheduler {
    /// One deque per worker ([`SchedulerMode::WorkSteal`]) or a single
    /// shared FIFO ([`SchedulerMode::SharedQueue`]).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted (slot reserved) but not yet claimed by a worker.
    queued: AtomicUsize,
    shut_down: AtomicBool,
    /// Guards the park/wake protocol of both condvars below. Counters are
    /// bumped while holding it and notifiers take it before notifying, so a
    /// checked-then-waited thread cannot miss its wakeup.
    sleep: Mutex<()>,
    /// Workers park here when nothing is claimable.
    work: Condvar,
    /// Submitters park here while the queue is at capacity.
    room: Condvar,
    /// Workers currently parked on `work` (notify only when > 0).
    parked: AtomicUsize,
    /// Submitters currently parked on `room` (notify only when > 0).
    waiting_room: AtomicUsize,
    /// Reserve bound for `queued`; submission blocks at the bound.
    capacity: usize,
    /// Round-robin placement cursor for submissions.
    next: AtomicUsize,
    /// Jobs taken from a deque other than the claiming worker's own.
    steals: AtomicU64,
    /// Park episodes: times a worker went to sleep on `work` because the
    /// claim counter read zero (spurious condvar wakeups inside one
    /// episode are not re-counted).
    parks: AtomicU64,
    /// Wakeups: times a submitter notified a parked worker.
    wakes: AtomicU64,
}

/// Locks a mutex, shrugging off poisoning: scheduler state is a deque of
/// boxed closures plus counters, all valid at every instruction boundary.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Scheduler {
    pub(crate) fn new(mode: SchedulerMode, workers: usize, capacity: usize) -> Scheduler {
        let deques = match mode {
            SchedulerMode::WorkSteal => workers.max(1),
            SchedulerMode::SharedQueue => 1,
        };
        Scheduler {
            deques: (0..deques).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            shut_down: AtomicBool::new(false),
            sleep: Mutex::new(()),
            work: Condvar::new(),
            room: Condvar::new(),
            parked: AtomicUsize::new(0),
            waiting_room: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    /// Queues `job`, returning whether it was accepted (`false` once the
    /// scheduler is shut down). Blocks while `capacity` jobs are already
    /// queued — the engine's backpressure.
    pub(crate) fn submit(&self, job: Job) -> bool {
        // Reserve a slot in `queued` before touching any deque.
        loop {
            if self.shut_down.load(Ordering::SeqCst) {
                return false;
            }
            let queued = self.queued.load(Ordering::SeqCst);
            if queued >= self.capacity {
                let mut guard = lock(&self.sleep);
                self.waiting_room.fetch_add(1, Ordering::SeqCst);
                while self.queued.load(Ordering::SeqCst) >= self.capacity
                    && !self.shut_down.load(Ordering::SeqCst)
                {
                    guard = self
                        .room
                        .wait(guard)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                self.waiting_room.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if self
                .queued
                .compare_exchange(queued, queued + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        // A worker only exits once `queued` is zero, so a reservation made
        // before it observed zero pins the pool alive until our push lands.
        // But if the flag was already set when we reserved, the last worker
        // may have exited before the reservation: satisfy the claim protocol
        // with a no-op push (some worker, or nobody, runs it) and reject.
        let (job, accepted): (Job, bool) = if self.shut_down.load(Ordering::SeqCst) {
            (Box::new(|_| {}), false)
        } else {
            (job, true)
        };
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        lock(&self.deques[slot]).push_back(job);
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.sleep);
            self.wakes.fetch_add(1, Ordering::Relaxed);
            self.work.notify_one();
        }
        accepted
    }

    /// Claims and returns the next job for `worker` along with whether it
    /// was stolen, parking while the pool is idle. `None` means the
    /// scheduler has shut down *and* every queued job has been claimed —
    /// the worker should exit.
    pub(crate) fn next_job(&self, worker: usize) -> Option<(Job, bool)> {
        // Claim one queued slot (or park, or exit).
        loop {
            let queued = self.queued.load(Ordering::SeqCst);
            if queued == 0 {
                if self.shut_down.load(Ordering::SeqCst) {
                    return None;
                }
                let mut guard = lock(&self.sleep);
                self.parked.fetch_add(1, Ordering::SeqCst);
                self.parks.fetch_add(1, Ordering::Relaxed);
                while self.queued.load(Ordering::SeqCst) == 0
                    && !self.shut_down.load(Ordering::SeqCst)
                {
                    guard = self
                        .work
                        .wait(guard)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                self.parked.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if self
                .queued
                .compare_exchange(queued, queued - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        // The claim freed a capacity slot; release a blocked submitter.
        if self.waiting_room.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.sleep);
            self.room.notify_all();
        }
        // Find the claimed job: own deque LIFO first, then steal FIFO from
        // victims. A miss on every deque means some submitter is between
        // its reserve and its push — yield and rescan; the push is coming.
        let own = worker % self.deques.len();
        loop {
            if let Some(job) = self.pop(own, true) {
                return Some((job, false));
            }
            for offset in 1..self.deques.len() {
                let victim = (own + offset) % self.deques.len();
                if let Some(job) = self.pop(victim, false) {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some((job, true));
                }
            }
            thread::yield_now();
        }
    }

    /// Pops from deque `index`: LIFO for a worker's own deque (when there
    /// is more than one — the single shared queue stays FIFO, matching the
    /// mpsc pool it emulates), FIFO when stealing.
    fn pop(&self, index: usize, own: bool) -> Option<Job> {
        let mut deque = lock(&self.deques[index]);
        if own && self.deques.len() > 1 {
            deque.pop_back()
        } else {
            deque.pop_front()
        }
    }

    /// Sets the shutdown flag and wakes every parked worker and blocked
    /// submitter. Workers drain the claim counter to zero before exiting,
    /// so everything submitted before this call still runs.
    pub(crate) fn shutdown(&self) {
        self.shut_down.store(true, Ordering::SeqCst);
        let _guard = lock(&self.sleep);
        self.work.notify_all();
        self.room.notify_all();
    }

    pub(crate) fn is_shut_down(&self) -> bool {
        self.shut_down.load(Ordering::SeqCst)
    }

    /// Jobs a worker took from another worker's deque since construction.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Jobs submitted but not yet claimed by a worker — the queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Worker park episodes since construction.
    pub(crate) fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Submitter-to-worker wakeups since construction.
    pub(crate) fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
}
