//! Canonical cache keys for solve artifacts.

use slade_core::bin_set::BinSet;
use slade_core::fingerprint::Fnv1a;
use slade_core::opq::OpqConfig;
use slade_core::opq_based::OpqBased;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The 64-bit digest of one artifact computation's identity: the bin-menu
/// signature, the transformed threshold (bit pattern), and every solver knob
/// that shapes the OPQ pool or the DP tables.
///
/// FNV-1a is not collision-resistant, so the digest alone is never trusted
/// as an identity: the digest is only the *hash* of a cache key, while
/// `Fingerprint`'s `Eq` is decided over the full key material (the cache
/// stores the material in each entry and verifies it on every hit, so a
/// collision costs one spurious probe, never a wrong artifact). Two
/// requests with genuinely equal inputs are served by
/// identical [`SolveArtifacts`](slade_core::opq_based::SolveArtifacts) —
/// artifact computation is deterministic — which is the invariant that makes
/// cache hits indistinguishable from cold solves.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    digest: u64,
    // The full key material, kept for exact equality on hash collisions.
    bins: Arc<BinSet>,
    theta_bits: u64,
    pool_size: usize,
    dp_cap: u32,
    opq: OpqConfig,
}

impl Fingerprint {
    /// Fingerprints an artifact computation for `bins` at transformed
    /// threshold `theta` under `solver`'s configuration.
    pub fn new(bins: Arc<BinSet>, theta: f64, solver: &OpqBased) -> Self {
        let mut h = Fnv1a::new();
        h.write_u64(bins.signature());
        h.write_f64(theta);
        h.write_u64(solver.pool_size as u64);
        h.write_u64(u64::from(solver.dp_cap));
        h.write_u64(
            solver
                .opq
                .max_combination_size
                .map_or(u64::MAX, |s| s as u64),
        );
        h.write_u64(solver.opq.max_expansions as u64);
        Fingerprint {
            digest: h.finish(),
            bins,
            theta_bits: theta.to_bits(),
            pool_size: solver.pool_size,
            dp_cap: solver.dp_cap,
            opq: solver.opq.clone(),
        }
    }

    /// The raw 64-bit digest.
    pub fn as_u64(&self) -> u64 {
        self.digest
    }

    /// Whether `other` carries the same full key material — the bin menu is
    /// compared by content, not by digest, so a digest collision between
    /// distinct instances can never alias their cache entries.
    fn matches(&self, other: &Self) -> bool {
        self.digest == other.digest
            && self.theta_bits == other.theta_bits
            && self.pool_size == other.pool_size
            && self.dp_cap == other.dp_cap
            && self.opq == other.opq
            && *self.bins == *other.bins
    }
}

impl PartialEq for Fingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.matches(other)
    }
}
impl Eq for Fingerprint {}

impl Hash for Fingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_core::reliability::theta;

    #[test]
    fn equal_inputs_fingerprint_equal() {
        let bins = Arc::new(BinSet::paper_example());
        let same_bins = Arc::new(BinSet::paper_example()); // distinct Arc
        let solver = OpqBased::default();
        let a = Fingerprint::new(bins, theta(0.95), &solver);
        let b = Fingerprint::new(same_bins, theta(0.95), &solver);
        assert_eq!(a, b);
        assert_eq!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn every_component_discriminates() {
        let bins = Arc::new(BinSet::paper_example());
        let solver = OpqBased::default();
        let base = Fingerprint::new(Arc::clone(&bins), theta(0.95), &solver);

        assert_ne!(
            base,
            Fingerprint::new(Arc::clone(&bins), theta(0.9501), &solver)
        );

        let other_bins = Arc::new(bins.truncated(2).unwrap());
        assert_ne!(base, Fingerprint::new(other_bins, theta(0.95), &solver));

        let other_solver = OpqBased {
            pool_size: solver.pool_size + 1,
            ..OpqBased::default()
        };
        assert_ne!(
            base,
            Fingerprint::new(Arc::clone(&bins), theta(0.95), &other_solver)
        );

        let other_cap = OpqBased {
            dp_cap: 128,
            ..OpqBased::default()
        };
        assert_ne!(base, Fingerprint::new(bins, theta(0.95), &other_cap));
    }

    #[test]
    fn digest_collisions_do_not_compare_equal() {
        // Forge two fingerprints with the same digest but different key
        // material: equality must still distinguish them (the cache relies
        // on this to survive FNV collisions).
        let bins = Arc::new(BinSet::paper_example());
        let solver = OpqBased::default();
        let a = Fingerprint::new(Arc::clone(&bins), theta(0.95), &solver);
        let mut b = Fingerprint::new(bins, theta(0.90), &solver);
        b.digest = a.digest;
        assert_eq!(a.as_u64(), b.as_u64());
        assert_ne!(a, b);
    }
}
