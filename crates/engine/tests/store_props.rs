//! Plan-store invariants: the O(1) request path (no full-table scans),
//! the [`FinishOutcome`] contract for producers that lost their id, lazy
//! lease expiry, and a seeded property sweep over random op interleavings
//! pinning "a pending id's producer holds its lease" plus the live
//! counters against a ground-truth scan.

use slade_core::prelude::*;
use slade_engine::{
    Engine, EngineConfig, EngineRequest, FinishOutcome, PlanStore, ResolvedPlan, StoreError,
};
use std::sync::Arc;
use std::time::Duration;

/// One small resolved plan per call; distinct `Arc`s on every call so
/// tests can tell "whose plan landed" apart by pointer identity.
fn plan() -> Arc<ResolvedPlan> {
    let engine = Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let request = EngineRequest::new(
        Algorithm::OpqBased,
        Workload::homogeneous(4, 0.95).unwrap(),
        Arc::new(BinSet::paper_example()),
    );
    Arc::new(engine.solve_resolved(request).unwrap())
}

/// Regression for the O(n) `count_plans` scan the request path used to
/// pay: with 1 000 retained plans, `begin_resubmit`/`finish`, `claim`,
/// and `release` must not touch the scan counter at all.
#[test]
fn request_path_performs_no_full_table_scans() {
    let store = PlanStore::new();
    let shared = plan();
    for i in 0..1_000 {
        store.restore(&format!("plan-{i:04}"), Arc::clone(&shared));
    }
    assert_eq!(store.count(), 1_000);
    let baseline = store.scans();

    for i in 0..100 {
        let id = format!("plan-{i:04}");
        store.claim(1, &id).unwrap();
        store.release(1, &id).unwrap();
        let prior = store.begin_resubmit(1, &id, None).unwrap();
        match store.finish(1, &id, Some(prior)) {
            FinishOutcome::Applied => {}
            other => panic!("resubmit by the marker holder must apply, got {other:?}"),
        }
        // Errors must be O(1) too — unknown ids and lease conflicts are
        // the common failure modes on a busy store.
        assert!(matches!(
            store.begin_resubmit(1, "absent", None),
            Err(StoreError::UnknownPlan { .. })
        ));
        // The resubmit left the lease with session 1; a takeover attempt
        // is the O(1) conflict path.
        assert!(matches!(
            store.claim(2, &id),
            Err(StoreError::LeaseHeld { owner: 1, .. })
        ));
        store.release(1, &id).unwrap();
    }

    assert_eq!(
        store.scans(),
        baseline,
        "claim/release/resubmit must never scan the table"
    );
    // The one remaining scan is session teardown, off the request path.
    store.drop_session(1);
    assert_eq!(store.scans(), baseline + 1);
}

/// A producer that lost its id to `drop_session` mid-solve must not
/// report false success: the plan lands *unleased* (and is claimable by
/// anyone) when the id is free.
#[test]
fn lost_producer_lands_unleased_and_claimable() {
    let store = PlanStore::new();
    store.begin_produce(1, "w", None).unwrap();
    store.drop_session(1); // connection died while the solve ran
    assert_eq!(store.leases(), 0);

    let produced = plan();
    assert_eq!(
        store.finish(1, "w", Some(Arc::clone(&produced))),
        FinishOutcome::LandedUnleased
    );
    assert_eq!(store.count(), 1);
    assert_eq!(store.leases(), 0, "a late landing takes no lease");

    // Any other session can pick the plan up.
    store.claim(2, "w").unwrap();
    let prior = store.begin_resubmit(2, "w", None).unwrap();
    assert!(Arc::ptr_eq(&prior, &produced));
    let _ = store.finish(2, "w", Some(prior));
}

/// When the id has moved on (another producer re-landed it), the stale
/// result is discarded — and the caller is told so.
#[test]
fn stale_producer_result_is_discarded_not_clobbered() {
    let store = PlanStore::new();
    store.begin_produce(1, "w", None).unwrap();
    store.drop_session(1);

    // Session 2 takes over the freed id and lands its own plan.
    let winner = plan();
    store.begin_produce(2, "w", None).unwrap();
    assert_eq!(
        store.finish(2, "w", Some(Arc::clone(&winner))),
        FinishOutcome::Applied
    );

    // Session 1's solve finally completes: its result must not clobber.
    assert_eq!(store.finish(1, "w", Some(plan())), FinishOutcome::Discarded);
    let current = store.begin_resubmit(2, "w", None).unwrap();
    assert!(Arc::ptr_eq(&current, &winner), "the takeover's plan stays");
    let _ = store.finish(2, "w", None);

    // A failure (`None`) with no marker left is a harmless no-op.
    assert_eq!(store.finish(1, "w", None), FinishOutcome::Applied);
    assert_eq!(store.count(), 1);
}

/// Lease TTL: an expired lease is reclaimable by another session (lazily,
/// counted), while a *pending* id never expires — the producer's result
/// still needs the lease to land under.
#[test]
fn expired_leases_are_reclaimable_but_pending_ids_never_expire() {
    let store = PlanStore::new();
    store.set_lease_ttl(Some(Duration::ZERO)); // every idle lease is expired
    store.begin_produce(1, "w", None).unwrap();

    // Pending: still owned, no matter the TTL.
    assert!(matches!(
        store.claim(2, "w"),
        Err(StoreError::Pending { producer: 1, .. })
    ));
    assert_eq!(store.finish(1, "w", Some(plan())), FinishOutcome::Applied);
    assert_eq!(store.leases(), 1);

    // Idle now — session 2 reclaims the expired lease without a release.
    store.claim(2, "w").unwrap();
    assert_eq!(store.lease_expiries(), 1);
    let prior = store.begin_resubmit(2, "w", None).unwrap();
    let _ = store.finish(2, "w", Some(prior));

    // With the TTL off, the same takeover is a conflict again.
    store.set_lease_ttl(None);
    assert!(matches!(
        store.claim(3, "w"),
        Err(StoreError::LeaseHeld { owner: 2, .. })
    ));
    assert_eq!(store.lease_conflicts(), 1);
}

/// A tiny deterministic LCG — the property sweep must replay identically
/// run to run, so failures are quotable as a seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Seeded property sweep: random interleavings of every store op across
/// 3 sessions and 6 ids, asserting after each step that (a) a pending
/// id's producer holds its lease, (b) the O(1) `count()`/`leases()`
/// counters match a ground-truth scan, and (c) nothing ever panics.
#[test]
fn random_interleavings_preserve_ownership_invariants() {
    let shared = plan();
    for seed in [7u64, 42, 0xBEEF, 0x5EED] {
        let mut rng = Lcg(seed);
        let store = PlanStore::new();
        for step in 0..1_500 {
            let session = 1 + rng.pick(3);
            let id = format!("id-{}", rng.pick(6));
            match rng.pick(8) {
                0 => {
                    let _ = store.begin_produce(session, &id, None);
                }
                1 => {
                    let _ = store.begin_resubmit(session, &id, None);
                }
                2 => {
                    let _ = store.finish(session, &id, Some(Arc::clone(&shared)));
                }
                3 => {
                    let _ = store.finish(session, &id, None);
                }
                4 => {
                    let _ = store.claim(session, &id);
                }
                5 => {
                    let _ = store.release(session, &id);
                }
                6 => store.drop_session(session),
                _ => store.set_lease_ttl(match rng.pick(3) {
                    0 => None,
                    1 => Some(Duration::ZERO),
                    _ => Some(Duration::from_secs(3_600)),
                }),
            }

            let rows = store.debug_ownership();
            for (id, _, lease, pending) in &rows {
                if let Some(producer) = pending {
                    assert_eq!(
                        lease.as_ref(),
                        Some(producer),
                        "seed {seed} step {step}: pending id `{id}` not leased to its producer"
                    );
                }
            }
            let plans = rows.iter().filter(|(_, has_plan, ..)| *has_plan).count();
            let leased = rows
                .iter()
                .filter(|(_, _, lease, _)| lease.is_some())
                .count();
            assert_eq!(store.count(), plans, "seed {seed} step {step}: plan count");
            assert_eq!(
                store.leases(),
                leased,
                "seed {seed} step {step}: lease count"
            );
        }
    }
}
