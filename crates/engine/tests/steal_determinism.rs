//! Determinism under *forced* work stealing.
//!
//! The 1-vs-8-thread pins in `determinism.rs` exercise the scheduler, but
//! on a fast machine the shards may drain before anyone needs to steal.
//! This suite removes the luck: each schedule interleaves solver-override
//! requests that **stall their worker** (seed-derived stall lengths) with
//! multi-shard requests whose jobs land round-robin in every deque —
//! including the stalled workers' — so the free workers must steal them.
//! Across 100 seeded schedules, every plan from the stealing pool must be
//! byte-identical to a single-thread solve of the same request, and the
//! cumulative steal counter must show that stealing actually happened.

use slade_core::prelude::*;
use slade_core::solver::{DecompositionSolver, PreparedSolver};
use slade_engine::{Engine, EngineConfig, EngineRequest, SchedulerMode};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A solver that sleeps before delegating to Greedy: pins one worker down
/// long enough for its deque to fill with stealable shard jobs. The sleep
/// affects scheduling only — the produced plan is Greedy's, deterministic.
#[derive(Debug)]
struct StallSolver {
    millis: u64,
}

impl DecompositionSolver for StallSolver {
    fn name(&self) -> &'static str {
        "Stall"
    }

    fn solve(&self, workload: &Workload, bins: &BinSet) -> Result<DecompositionPlan, SladeError> {
        thread::sleep(Duration::from_millis(self.millis));
        slade_core::greedy::Greedy.solve(workload, bins)
    }
}

impl PreparedSolver for StallSolver {}

/// Splitmix64: a tiny, dependency-free generator good enough to derive
/// schedules from a seed. Each call advances the state.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One seeded schedule: a few stalling override requests (grabbed first,
/// pinning their workers) followed by a seed-derived mix of chunked
/// homogeneous and bucket-sharded heterogeneous requests.
fn schedule(seed: u64, bins: &Arc<BinSet>) -> Vec<EngineRequest> {
    // Well-separated levels under θ_max so heterogeneous workloads bucket
    // into several shards.
    const LEVELS: [f64; 4] = [0.95, 0.72, 0.3, 0.11];
    let mut rng = seed;
    let mut requests = Vec::new();
    for _ in 0..2 {
        let millis = 1 + next_u64(&mut rng) % 6;
        requests.push(
            EngineRequest::new(
                Algorithm::Greedy,
                Workload::homogeneous(3 + (next_u64(&mut rng) % 5) as u32, 0.95).unwrap(),
                Arc::clone(bins),
            )
            .with_solver(Arc::new(StallSolver { millis })),
        );
    }
    for _ in 0..6 {
        if next_u64(&mut rng) % 2 == 0 {
            // Chunked homogeneous: 24–64 tasks over homogeneous_shard = 8
            // below → 3–8 shard jobs.
            let n = 24 + (next_u64(&mut rng) % 41) as u32;
            requests.push(EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(n, 0.95).unwrap(),
                Arc::clone(bins),
            ));
        } else {
            // Bucket-sharded heterogeneous: 8–20 tasks over the 4 levels.
            let n = 8 + next_u64(&mut rng) % 13;
            let thresholds: Vec<f64> = (0..n)
                .map(|_| LEVELS[(next_u64(&mut rng) % LEVELS.len() as u64) as usize])
                .collect();
            requests.push(EngineRequest::new(
                Algorithm::OpqExtended,
                Workload::heterogeneous(thresholds).unwrap(),
                Arc::clone(bins),
            ));
        }
    }
    requests
}

fn config(threads: usize, scheduler: SchedulerMode) -> EngineConfig {
    EngineConfig {
        threads,
        scheduler,
        queue_capacity: 64,
        // Fresh engines per seed keep solves cold across schedules; within
        // one schedule the cache is live, as in production — byte-identity
        // must hold with or without artifact reuse.
        cache_capacity: 16,
        homogeneous_shard: Some(8),
        ..EngineConfig::default()
    }
}

#[test]
fn steal_heavy_schedules_match_single_thread_plans_across_100_seeds() {
    let bins = Arc::new(BinSet::paper_example());
    let mut total_steals = 0u64;
    for seed in 0..100u64 {
        let stealing = Engine::new(config(4, SchedulerMode::WorkSteal));
        let handles = stealing.submit_batch(schedule(seed, &bins));
        let stolen: Vec<DecompositionPlan> = handles
            .into_iter()
            .map(|h| h.wait().expect("every scheduled request solves"))
            .collect();
        total_steals += stealing.steals();

        let single = Engine::new(config(1, SchedulerMode::WorkSteal));
        let baseline: Vec<DecompositionPlan> = single
            .submit_batch(schedule(seed, &bins))
            .into_iter()
            .map(|h| h.wait().expect("the single-thread baseline solves"))
            .collect();

        assert_eq!(stolen.len(), baseline.len());
        for (i, (a, b)) in stolen.iter().zip(&baseline).enumerate() {
            assert_eq!(a, b, "seed {seed} request {i} diverged under stealing");
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "seed {seed} request {i} rendered bytes diverged"
            );
        }
    }
    // The whole point of the stalls: the schedules must actually have
    // exercised the steal path, not just the own-deque fast path.
    assert!(
        total_steals > 0,
        "100 stall-laden schedules never stole a job"
    );
}

#[test]
fn a_single_thread_pool_never_steals() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(1, SchedulerMode::WorkSteal));
    for handle in engine.submit_batch(schedule(7, &bins)) {
        handle.wait().unwrap();
    }
    assert_eq!(engine.steals(), 0, "one worker has no victims");
}
