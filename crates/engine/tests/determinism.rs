//! The engine's determinism contracts, pinned end to end:
//!
//! 1. the same request batch produces byte-identical plans at `threads = 1`
//!    and `threads = 8`, sharding and all;
//! 2. a warm-cache solve returns a plan identical to the cold solve for the
//!    same fingerprint — for **every** algorithm, not just OpqBased;
//! 3. a [`WorkloadDelta`] resubmission returns a plan byte-identical to a
//!    cold solve of the resulting workload.

use slade_core::prelude::*;
use slade_engine::{Engine, EngineConfig, EngineRequest, WorkloadDelta};
use std::sync::Arc;

/// A mixed batch exercising every sharding path: unsharded and chunked
/// homogeneous OPQ, bucket-sharded heterogeneous OPQ, the direct path
/// (greedy), and the seeded randomized baseline.
fn mixed_batch(bins: &Arc<BinSet>) -> Vec<EngineRequest> {
    let spread: Vec<f64> = (0..60)
        .map(|i| 0.08 + 0.9 * (f64::from(i) / 59.0))
        .collect();
    vec![
        EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            Arc::clone(bins),
        ),
        // Large enough to split into chunks under homogeneous_shard below.
        EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(700, 0.99).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(spread).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Greedy,
            Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86, 0.99, 0.31]).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Baseline,
            Workload::homogeneous(30, 0.9).unwrap(),
            Arc::clone(bins),
        )
        .with_seed(0xC0FFEE),
    ]
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        queue_capacity: 8,
        cache_capacity: 16,
        homogeneous_shard: Some(128),
        ..EngineConfig::default()
    }
}

fn run_batch(threads: usize, bins: &Arc<BinSet>) -> Vec<DecompositionPlan> {
    let engine = Engine::new(config(threads));
    let handles = engine.submit_batch(mixed_batch(bins));
    handles
        .into_iter()
        .map(|h| h.wait().expect("every request in the batch solves"))
        .collect()
}

#[test]
fn unsharded_engine_plans_equal_direct_solver_plans() {
    // The engine's pass-through/wrapper labeling must make its results
    // compare equal — label included — to the sequential solvers whenever
    // sharding does not change the plan (i.e. everything except chunked
    // homogeneous requests).
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let homo = Workload::homogeneous(40, 0.95).unwrap();
    let hetero = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
    let cases = [
        (Algorithm::OpqBased, homo.clone()),
        (Algorithm::OpqExtended, homo.clone()),
        (Algorithm::OpqExtended, hetero.clone()),
        (Algorithm::Greedy, hetero),
        (Algorithm::Relaxed, Workload::homogeneous(9, 0.7).unwrap()),
        (Algorithm::Exact, Workload::homogeneous(3, 0.9).unwrap()),
    ];
    for (algorithm, workload) in cases {
        let direct = algorithm.solve(&workload, &bins).unwrap();
        let via_engine = engine
            .solve(EngineRequest::new(algorithm, workload, Arc::clone(&bins)))
            .unwrap();
        assert_eq!(via_engine, direct, "{algorithm}");
    }
}

#[test]
fn plans_are_byte_identical_at_1_and_8_threads() {
    let bins = Arc::new(BinSet::paper_example());
    let single = run_batch(1, &bins);
    let eight = run_batch(8, &bins);
    assert_eq!(single.len(), eight.len());
    for (i, (a, b)) in single.iter().zip(&eight).enumerate() {
        assert_eq!(a, b, "request {i} diverged between 1 and 8 threads");
        // Structural equality AND the rendered bytes, belt and braces.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "request {i}");
    }
    // The plans are not merely equal to each other but actually feasible.
    for (plan, request) in single.iter().zip(mixed_batch(&bins)) {
        let audit = plan.validate(&request.workload, &bins).unwrap();
        assert!(audit.feasible, "{} infeasible", plan.algorithm());
    }
}

#[test]
fn warm_cache_solve_is_identical_to_cold_solve() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(4));
    let request = EngineRequest::new(
        Algorithm::OpqBased,
        Workload::homogeneous(300, 0.95).unwrap(),
        Arc::clone(&bins),
    );

    let cold = engine.solve(request.clone()).unwrap();
    let after_cold = engine.cache_stats();
    assert!(after_cold.misses >= 1);

    let warm = engine.solve(request).unwrap();
    let after_warm = engine.cache_stats();
    assert_eq!(cold, warm);
    assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
    assert!(
        after_warm.hits > after_cold.hits,
        "second solve must hit the cache: {after_warm:?}"
    );
}

#[test]
fn warm_cache_solves_are_identical_to_cold_for_every_algorithm() {
    // The cache is algorithm-agnostic now: every algorithm's prepared
    // artifacts round-trip through it, and warm results must stay
    // byte-identical to cold ones in all cases.
    let bins = Arc::new(BinSet::paper_example());
    let homo = Workload::homogeneous(60, 0.95).unwrap();
    let hetero = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
    let relaxed = Workload::homogeneous(9, 0.7).unwrap();
    let tiny = Workload::homogeneous(3, 0.9).unwrap();
    let cases = [
        (Algorithm::OpqBased, homo.clone()),
        (Algorithm::OpqExtended, hetero.clone()),
        (Algorithm::Greedy, homo.clone()),
        (Algorithm::Greedy, hetero.clone()),
        (Algorithm::Baseline, homo),
        (Algorithm::Relaxed, relaxed),
        (Algorithm::Exact, tiny),
    ];
    for (algorithm, workload) in cases {
        let engine = Engine::new(config(3));
        let request = EngineRequest::new(algorithm, workload, Arc::clone(&bins));
        let cold = engine.solve(request.clone()).unwrap();
        let warm = engine.solve(request).unwrap();
        assert_eq!(cold, warm, "{algorithm} warm plan diverged from cold");
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"), "{algorithm}");
    }
}

#[test]
fn cacheable_algorithms_hit_the_shared_cache_when_warm() {
    let bins = Arc::new(BinSet::paper_example());
    let homo = Workload::homogeneous(40, 0.95).unwrap();
    let hetero = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
    for (algorithm, workload) in [
        (Algorithm::OpqBased, homo.clone()),
        (Algorithm::OpqExtended, hetero),
        (Algorithm::Greedy, homo.clone()),
        (Algorithm::Baseline, homo),
    ] {
        let engine = Engine::new(config(2));
        let request = EngineRequest::new(algorithm, workload, Arc::clone(&bins));
        engine.solve(request.clone()).unwrap();
        let cold = engine.cache_stats();
        engine.solve(request).unwrap();
        let warm = engine.cache_stats();
        assert!(
            warm.hits > cold.hits,
            "{algorithm} second solve must hit the cache: {warm:?}"
        );
        assert_eq!(warm.misses, cold.misses, "{algorithm} warmed twice");
    }
}

#[test]
fn resize_resubmit_equals_cold_solve_of_final_workload() {
    let bins = Arc::new(BinSet::paper_example());
    for algorithm in [Algorithm::OpqBased, Algorithm::Greedy, Algorithm::Baseline] {
        let engine = Engine::new(config(3));
        let request = EngineRequest::new(
            algorithm,
            Workload::homogeneous(300, 0.95).unwrap(),
            Arc::clone(&bins),
        )
        .with_seed(11);
        let resolved = engine.solve_resolved(request).unwrap();
        assert_eq!(resolved.reused_shards(), 0);
        for n in [500u32, 120, 300] {
            let resubmitted = engine
                .resubmit(&resolved, &WorkloadDelta::Resize(n))
                .unwrap();
            let cold = engine
                .solve(
                    EngineRequest::new(
                        algorithm,
                        Workload::homogeneous(n, 0.95).unwrap(),
                        Arc::clone(&bins),
                    )
                    .with_seed(11),
                )
                .unwrap();
            assert_eq!(*resubmitted.plan(), cold, "{algorithm} n = {n}");
            assert_eq!(
                format!("{:?}", resubmitted.plan()),
                format!("{cold:?}"),
                "{algorithm} n = {n}"
            );
        }
        // A no-op resize reuses everything.
        let unchanged = engine
            .resubmit(&resolved, &WorkloadDelta::Resize(300))
            .unwrap();
        assert_eq!(unchanged.reused_shards(), unchanged.shards());
        assert_eq!(*unchanged.plan(), *resolved.plan());
    }
}

#[test]
fn rethreshold_resubmit_rebuckets_and_reuses_untouched_buckets() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(4));
    // Four well-separated θ levels under θ_max = θ(0.95); moving one task
    // between the two bottom buckets leaves every other bucket's (n, θ)
    // shard unchanged.
    let thresholds = vec![0.95, 0.95, 0.72, 0.72, 0.3, 0.3, 0.11, 0.11];
    let request = EngineRequest::new(
        Algorithm::OpqExtended,
        Workload::heterogeneous(thresholds.clone()).unwrap(),
        Arc::clone(&bins),
    );
    let resolved = engine.solve_resolved(request).unwrap();
    let shards = resolved.shards();
    assert!(shards >= 3, "spread must bucket into several shards");

    let delta = WorkloadDelta::SetThresholds(vec![(6, 0.3)]);
    let resubmitted = engine.resubmit(&resolved, &delta).unwrap();
    // Only the buckets whose (size, ceiling) changed were re-solved.
    assert!(
        resubmitted.reused_shards() >= shards - 2,
        "expected most buckets reused: {} of {}",
        resubmitted.reused_shards(),
        resubmitted.shards()
    );
    let mut final_thresholds = thresholds;
    final_thresholds[6] = 0.3;
    let cold = engine
        .solve(EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(final_thresholds).unwrap(),
            Arc::clone(&bins),
        ))
        .unwrap();
    assert_eq!(*resubmitted.plan(), cold);
    assert_eq!(format!("{:?}", resubmitted.plan()), format!("{cold:?}"));
}

#[test]
fn resubmit_never_splices_sub_plans_from_a_differently_configured_engine() {
    // A ResolvedPlan can outlive the engine that produced it. Handing it to
    // an engine whose OPQ solver knobs differ must recompute every shard —
    // splicing the foreign sub-plans in would break the
    // byte-identical-to-cold-solve contract.
    let bins = Arc::new(BinSet::paper_example());
    let tight = Engine::new(EngineConfig {
        threads: 2,
        solver: OpqBased {
            pool_size: 2,
            dp_cap: 8,
            ..OpqBased::default()
        },
        ..EngineConfig::default()
    });
    let default_knobs = Engine::new(config(2));
    let request = EngineRequest::new(
        Algorithm::OpqBased,
        Workload::homogeneous(300, 0.95).unwrap(),
        Arc::clone(&bins),
    );
    let from_tight = tight.solve_resolved(request.clone()).unwrap();

    // No-op delta: on the SAME engine everything is reused...
    let same = tight
        .resubmit(&from_tight, &WorkloadDelta::Resize(300))
        .unwrap();
    assert_eq!(same.reused_shards(), same.shards());

    // ...but a differently-knobbed engine must not reuse a single shard,
    // and must return ITS OWN cold plan.
    let cross = default_knobs
        .resubmit(&from_tight, &WorkloadDelta::Resize(300))
        .unwrap();
    assert_eq!(
        cross.reused_shards(),
        0,
        "foreign sub-plans were spliced in"
    );
    let cold = default_knobs.solve(request).unwrap();
    assert_eq!(*cross.plan(), cold);
}

#[test]
fn append_resubmit_equals_cold_solve_and_chains() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(2));
    let request = EngineRequest::new(
        Algorithm::OpqExtended,
        Workload::heterogeneous(vec![0.95, 0.5, 0.3]).unwrap(),
        Arc::clone(&bins),
    );
    let resolved = engine.solve_resolved(request).unwrap();
    // Chain two deltas: append tasks, then re-threshold one of them.
    let appended = engine
        .resubmit(&resolved, &WorkloadDelta::Append(vec![0.5, 0.95]))
        .unwrap();
    let retargeted = engine
        .resubmit(&appended, &WorkloadDelta::SetThresholds(vec![(3, 0.3)]))
        .unwrap();
    let final_workload = Workload::heterogeneous(vec![0.95, 0.5, 0.3, 0.3, 0.95]).unwrap();
    assert_eq!(retargeted.workload(), &final_workload);
    let cold = engine
        .solve(EngineRequest::new(
            Algorithm::OpqExtended,
            final_workload.clone(),
            Arc::clone(&bins),
        ))
        .unwrap();
    assert_eq!(*retargeted.plan(), cold);
    assert!(cold.validate(&final_workload, &bins).unwrap().feasible);
}

#[test]
fn requests_sharing_a_fingerprint_share_cached_artifacts() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(2));
    // Same menu and threshold, different sizes: one artifact computation.
    for n in [10u32, 100, 1_000, 40] {
        engine
            .solve(EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(n, 0.95).unwrap(),
                Arc::clone(&bins),
            ))
            .unwrap();
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    // 11 shard lookups in total: n = 10, 100, 40 are single shards, and
    // n = 1000 splits into ⌈1000/128⌉ = 8 chunks under homogeneous_shard.
    assert_eq!(stats.hits, 10, "{stats:?}");
    assert_eq!(stats.entries, 1, "{stats:?}");
}
