//! The engine's two determinism contracts, pinned end to end:
//!
//! 1. the same request batch produces byte-identical plans at `threads = 1`
//!    and `threads = 8`, sharding and all;
//! 2. a warm-cache solve returns a plan identical to the cold solve for the
//!    same fingerprint.

use slade_core::prelude::*;
use slade_engine::{Engine, EngineConfig, EngineRequest};
use std::sync::Arc;

/// A mixed batch exercising every sharding path: unsharded and chunked
/// homogeneous OPQ, bucket-sharded heterogeneous OPQ, the direct path
/// (greedy), and the seeded randomized baseline.
fn mixed_batch(bins: &Arc<BinSet>) -> Vec<EngineRequest> {
    let spread: Vec<f64> = (0..60)
        .map(|i| 0.08 + 0.9 * (f64::from(i) / 59.0))
        .collect();
    vec![
        EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(4, 0.95).unwrap(),
            Arc::clone(bins),
        ),
        // Large enough to split into chunks under homogeneous_shard below.
        EngineRequest::new(
            Algorithm::OpqBased,
            Workload::homogeneous(700, 0.99).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(spread).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Greedy,
            Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86, 0.99, 0.31]).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Baseline,
            Workload::homogeneous(30, 0.9).unwrap(),
            Arc::clone(bins),
        )
        .with_seed(0xC0FFEE),
    ]
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        queue_capacity: 8,
        cache_capacity: 16,
        homogeneous_shard: Some(128),
        ..EngineConfig::default()
    }
}

fn run_batch(threads: usize, bins: &Arc<BinSet>) -> Vec<DecompositionPlan> {
    let engine = Engine::new(config(threads));
    let handles = engine.submit_batch(mixed_batch(bins));
    handles
        .into_iter()
        .map(|h| h.wait().expect("every request in the batch solves"))
        .collect()
}

#[test]
fn unsharded_engine_plans_equal_direct_solver_plans() {
    // The engine's pass-through/wrapper labeling must make its results
    // compare equal — label included — to the sequential solvers whenever
    // sharding does not change the plan (i.e. everything except chunked
    // homogeneous requests).
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let homo = Workload::homogeneous(40, 0.95).unwrap();
    let hetero = Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap();
    let cases = [
        (Algorithm::OpqBased, homo.clone()),
        (Algorithm::OpqExtended, homo.clone()),
        (Algorithm::OpqExtended, hetero.clone()),
        (Algorithm::Greedy, hetero),
        (Algorithm::Relaxed, Workload::homogeneous(9, 0.7).unwrap()),
        (Algorithm::Exact, Workload::homogeneous(3, 0.9).unwrap()),
    ];
    for (algorithm, workload) in cases {
        let direct = algorithm.solve(&workload, &bins).unwrap();
        let via_engine = engine
            .solve(EngineRequest::new(algorithm, workload, Arc::clone(&bins)))
            .unwrap();
        assert_eq!(via_engine, direct, "{algorithm}");
    }
}

#[test]
fn plans_are_byte_identical_at_1_and_8_threads() {
    let bins = Arc::new(BinSet::paper_example());
    let single = run_batch(1, &bins);
    let eight = run_batch(8, &bins);
    assert_eq!(single.len(), eight.len());
    for (i, (a, b)) in single.iter().zip(&eight).enumerate() {
        assert_eq!(a, b, "request {i} diverged between 1 and 8 threads");
        // Structural equality AND the rendered bytes, belt and braces.
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "request {i}");
    }
    // The plans are not merely equal to each other but actually feasible.
    for (plan, request) in single.iter().zip(mixed_batch(&bins)) {
        let audit = plan.validate(&request.workload, &bins).unwrap();
        assert!(audit.feasible, "{} infeasible", plan.algorithm());
    }
}

#[test]
fn warm_cache_solve_is_identical_to_cold_solve() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(4));
    let request = EngineRequest::new(
        Algorithm::OpqBased,
        Workload::homogeneous(300, 0.95).unwrap(),
        Arc::clone(&bins),
    );

    let cold = engine.solve(request.clone()).unwrap();
    let after_cold = engine.cache_stats();
    assert!(after_cold.misses >= 1);

    let warm = engine.solve(request).unwrap();
    let after_warm = engine.cache_stats();
    assert_eq!(cold, warm);
    assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
    assert!(
        after_warm.hits > after_cold.hits,
        "second solve must hit the cache: {after_warm:?}"
    );
}

#[test]
fn requests_sharing_a_fingerprint_share_cached_artifacts() {
    let bins = Arc::new(BinSet::paper_example());
    let engine = Engine::new(config(2));
    // Same menu and threshold, different sizes: one artifact computation.
    for n in [10u32, 100, 1_000, 40] {
        engine
            .solve(EngineRequest::new(
                Algorithm::OpqBased,
                Workload::homogeneous(n, 0.95).unwrap(),
                Arc::clone(&bins),
            ))
            .unwrap();
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    // 11 shard lookups in total: n = 10, 100, 40 are single shards, and
    // n = 1000 splits into ⌈1000/128⌉ = 8 chunks under homogeneous_shard.
    assert_eq!(stats.hits, 10, "{stats:?}");
    assert_eq!(stats.entries, 1, "{stats:?}");
}
