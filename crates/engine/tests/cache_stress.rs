//! Seeded multi-threaded stress for the [`ArtifactCache`], pinning the
//! invariants the sharded rewrite must not bend:
//!
//! 1. under concurrent get/insert/evict at capacity pressure, no entry is
//!    lost or aliased — every resident key still maps to the artifacts *its*
//!    compute produced, the relaxed entry counter agrees with actual shard
//!    occupancy, and every lookup is accounted as exactly one hit or miss;
//! 2. single-flight actually deduplicates: N workers racing one cold
//!    fingerprint run the (counting) compute once, round after round;
//! 3. plans stay byte-identical warm-vs-cold and 1-vs-8-thread under both
//!    [`CacheImpl`]s — including under forced single-flight races, where
//!    chunked shards of one request hit the same cold fingerprint from
//!    every worker at once.

use slade_core::prelude::*;
use slade_core::reliability::theta;
use slade_core::solver::SolveArtifacts;
use slade_engine::{
    ArtifactCache, CacheImpl, CacheKey, Engine, EngineConfig, EngineRequest, Fingerprint,
    CACHE_SHARDS,
};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const BOTH_IMPLS: [CacheImpl; 2] = [CacheImpl::Sharded, CacheImpl::MutexLru];

/// Fake artifacts tagged with the key index that computed them, so the
/// integrity sweep can detect cross-key aliasing.
#[derive(Debug)]
struct Tagged {
    theta: f64,
    key_index: usize,
}

impl SolveArtifacts for Tagged {
    fn theta(&self) -> f64 {
        self.theta
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// xorshift64* — a tiny seeded PRNG so the schedule-shaping choices (which
/// key each op touches) are reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Distinct cache keys: one per threshold, each with the threshold's own
/// fingerprint (distinct θ ⇒ distinct digest material).
fn stress_keys(count: usize) -> Vec<(CacheKey, f64)> {
    let bins = Arc::new(BinSet::paper_example());
    let solver = slade_core::opq_based::OpqBased::default();
    (0..count)
        .map(|i| {
            let t = 0.50 + 0.49 * (i as f64 / (count - 1) as f64);
            let key = CacheKey {
                algorithm: Algorithm::OpqBased,
                fingerprint: Fingerprint::new(Arc::clone(&bins), theta(t), &solver),
            };
            (key, theta(t))
        })
        .collect()
}

#[test]
fn concurrent_get_insert_evict_is_consistent_at_capacity_pressure() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 2_000;
    const KEYS: usize = 48;
    const CAPACITY: usize = 8; // far fewer than KEYS: constant eviction

    for cache_impl in BOTH_IMPLS {
        let cache = Arc::new(ArtifactCache::with_impl(cache_impl, CAPACITY));
        let keys = Arc::new(stress_keys(KEYS));
        thread::scope(|scope| {
            for worker in 0..THREADS {
                let cache = Arc::clone(&cache);
                let keys = Arc::clone(&keys);
                scope.spawn(move || {
                    let mut rng = Rng(0x5EED_0000 + worker as u64);
                    for _ in 0..OPS_PER_THREAD {
                        let index = (rng.next() as usize) % keys.len();
                        let (key, key_theta) = &keys[index];
                        let artifacts = cache
                            .get_or_try_insert_with::<SladeError>(key.clone(), || {
                                Ok(Arc::new(Tagged {
                                    theta: *key_theta,
                                    key_index: index,
                                }))
                            })
                            .unwrap();
                        // Whatever we got back — freshly computed, cached,
                        // or adopted from a single-flight leader — it must
                        // be THIS key's artifacts.
                        let tagged = artifacts
                            .as_any()
                            .downcast_ref::<Tagged>()
                            .expect("stress artifacts are Tagged");
                        assert_eq!(tagged.key_index, index, "aliased entry");
                    }
                });
            }
        });

        let stats = cache.stats();
        // Every lookup is exactly one hit or one miss — no double counting,
        // none dropped (waiters served by a leader count as hits).
        assert_eq!(
            stats.hits + stats.misses,
            (THREADS * OPS_PER_THREAD) as u64,
            "{cache_impl:?}: {stats:?}"
        );
        // The relaxed entry counter agrees with actual occupancy.
        let occupancy: usize = cache.shard_occupancy().iter().sum();
        assert_eq!(stats.entries, occupancy, "{cache_impl:?}: {stats:?}");
        // Capacity is enforced: exactly under the LRU, within the
        // documented one-entry-per-shard overshoot under the sharded table.
        let bound = match cache_impl {
            CacheImpl::Sharded => CAPACITY + CACHE_SHARDS,
            CacheImpl::MutexLru => CAPACITY,
        };
        assert!(
            stats.entries <= bound,
            "{cache_impl:?}: {} entries > bound {bound}",
            stats.entries
        );
        assert!(stats.evictions > 0, "{cache_impl:?} must have evicted");
        assert!(stats.hits > 0 && stats.misses > 0, "{cache_impl:?}");

        // Integrity sweep: every still-resident key answers with its own
        // artifacts (lost entries would recompute; aliased ones would
        // carry a foreign tag). The probe's compute returns `Err`, so a
        // miss inserts nothing — the sweep observes the cache without
        // perturbing it (a computing probe would evict the very survivors
        // it is about to visit and see an arbitrarily cold cache).
        let mut resident = 0;
        for (index, (key, key_theta)) in keys.iter().enumerate() {
            match cache.get_or_try_insert_with::<SladeError>(key.clone(), || {
                Err(SladeError::InvalidWorkload("probe only".into()))
            }) {
                Ok(artifacts) => {
                    resident += 1;
                    let tagged = artifacts.as_any().downcast_ref::<Tagged>().unwrap();
                    assert_eq!(tagged.key_index, index, "{cache_impl:?} aliased");
                    assert_eq!(tagged.theta, *key_theta, "{cache_impl:?}");
                }
                Err(SladeError::InvalidWorkload(_)) => {}
                Err(other) => panic!("{cache_impl:?}: unexpected probe error {other:?}"),
            }
        }
        assert_eq!(
            resident, occupancy,
            "{cache_impl:?}: every counted entry answers warm"
        );
    }
}

#[test]
fn single_flight_computes_once_per_cold_key_round_after_round() {
    const RACERS: usize = 8;
    const ROUNDS: usize = 12;

    let cache = Arc::new(ArtifactCache::with_impl(CacheImpl::Sharded, ROUNDS * 2));
    let keys = stress_keys(ROUNDS);
    let computes = Arc::new(AtomicUsize::new(0));

    for (index, (key, key_theta)) in keys.iter().enumerate() {
        let barrier = Arc::new(Barrier::new(RACERS));
        thread::scope(|scope| {
            for _ in 0..RACERS {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                let key = key.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let artifacts = cache
                        .get_or_try_insert_with::<SladeError>(key, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open so the other racers
                            // must park on it rather than win by luck.
                            thread::sleep(std::time::Duration::from_millis(10));
                            Ok(Arc::new(Tagged {
                                theta: *key_theta,
                                key_index: index,
                            }))
                        })
                        .unwrap();
                    let tagged = artifacts.as_any().downcast_ref::<Tagged>().unwrap();
                    assert_eq!(tagged.key_index, index);
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            index + 1,
            "round {index}: every cold key computes exactly once"
        );
    }

    let stats = cache.stats();
    assert_eq!(stats.misses as usize, ROUNDS, "{stats:?}");
    assert_eq!(stats.hits as usize, ROUNDS * (RACERS - 1), "{stats:?}");
    assert_eq!(
        stats.singleflight_waits as usize,
        ROUNDS * (RACERS - 1),
        "{stats:?}"
    );
}

/// A mixed batch of every algorithm, including a chunked homogeneous OPQ
/// request whose shards all share one fingerprint — the forced
/// single-flight race (8 workers, one cold key).
fn mixed_batch(bins: &Arc<BinSet>) -> Vec<EngineRequest> {
    vec![
        EngineRequest::new(
            Algorithm::OpqBased,
            // ⌈700/64⌉ = 11 chunks, all with the same (menu, θ) fingerprint.
            Workload::homogeneous(700, 0.95).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::OpqExtended,
            Workload::heterogeneous(vec![0.3, 0.55, 0.72, 0.9, 0.95]).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Greedy,
            Workload::heterogeneous(vec![0.5, 0.6, 0.7, 0.86, 0.99, 0.31]).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Baseline,
            Workload::homogeneous(30, 0.9).unwrap(),
            Arc::clone(bins),
        )
        .with_seed(0xC0FFEE),
        EngineRequest::new(
            Algorithm::Relaxed,
            Workload::homogeneous(9, 0.7).unwrap(),
            Arc::clone(bins),
        ),
        EngineRequest::new(
            Algorithm::Exact,
            Workload::homogeneous(3, 0.9).unwrap(),
            Arc::clone(bins),
        ),
    ]
}

fn config(threads: usize, cache_impl: CacheImpl) -> EngineConfig {
    EngineConfig {
        threads,
        cache_capacity: 16,
        cache_impl,
        homogeneous_shard: Some(64),
        ..EngineConfig::default()
    }
}

#[test]
fn plans_are_byte_identical_across_impls_threads_and_warmth() {
    let bins = Arc::new(BinSet::paper_example());
    // The reference: single-threaded, mutex LRU, cold — the most boring
    // possible schedule.
    let reference: Vec<DecompositionPlan> = {
        let engine = Engine::new(config(1, CacheImpl::MutexLru));
        mixed_batch(&bins)
            .into_iter()
            .map(|r| engine.solve(r).unwrap())
            .collect()
    };

    for cache_impl in BOTH_IMPLS {
        let engine = Engine::new(config(8, cache_impl));
        // Cold, 8 threads: the chunked request forces 11 same-fingerprint
        // shards through the cold path at once — under the sharded impl
        // that is a guaranteed single-flight pile-up.
        let cold: Vec<DecompositionPlan> = engine
            .submit_batch(mixed_batch(&bins))
            .into_iter()
            .map(|h| h.wait().unwrap())
            .collect();
        // Warm: same batch again, artifacts now resident.
        let warm: Vec<DecompositionPlan> = engine
            .submit_batch(mixed_batch(&bins))
            .into_iter()
            .map(|h| h.wait().unwrap())
            .collect();

        for (i, ((cold, warm), reference)) in cold.iter().zip(&warm).zip(&reference).enumerate() {
            assert_eq!(cold, reference, "{cache_impl:?} request {i} cold");
            assert_eq!(warm, reference, "{cache_impl:?} request {i} warm");
            assert_eq!(
                format!("{cold:?}"),
                format!("{reference:?}"),
                "{cache_impl:?} request {i} bytes"
            );
        }

        let stats = engine.cache_stats();
        assert_eq!(stats.cache_impl, cache_impl);
        if cache_impl == CacheImpl::Sharded {
            assert!(
                stats.singleflight_waits > 0,
                "the chunked request must have raced the cold key: {stats:?}"
            );
        }
    }
}

#[test]
fn forced_single_flight_race_still_matches_the_direct_solver() {
    // Belt and braces on the interchangeable-winner argument: the racing
    // chunks' merged plan equals the sequential solver's answer exactly.
    let bins = Arc::new(BinSet::paper_example());
    let workload = Workload::homogeneous(40, 0.95).unwrap();
    let direct = Algorithm::OpqBased.solve(&workload, &bins).unwrap();
    for _ in 0..5 {
        let engine = Engine::new(EngineConfig {
            threads: 8,
            cache_capacity: 16,
            cache_impl: CacheImpl::Sharded,
            ..EngineConfig::default()
        });
        let via_engine = engine
            .solve(EngineRequest::new(
                Algorithm::OpqBased,
                workload.clone(),
                Arc::clone(&bins),
            ))
            .unwrap();
        assert_eq!(via_engine, direct);
    }
}
