//! # slade-lp — linear-programming substrate for SLADE
//!
//! The SLADE paper's baseline algorithm (§4.3) reduces task decomposition to a
//! *covering integer program* (CIP) and solves it with "existing methods",
//! citing Vazirani's *Approximation Algorithms*: solve the LP relaxation and
//! apply randomized rounding. This crate provides that substrate from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's rule,
//!   suitable for small and medium LPs and used to compute exact LP bounds in
//!   tests and small benchmark instances.
//! * [`covering`] — sparse covering-LP machinery that scales to hundreds of
//!   thousands of rows: a width-independent multiplicative-weights fractional
//!   solver (Young-style), the classic greedy set-multicover heuristic, and
//!   randomized rounding with greedy repair.
//! * [`dense`] — a minimal dense-matrix helper backing the simplex tableau.
//!
//! The crate is self-contained (no solver dependencies) and deterministic:
//! every randomized routine takes a caller-provided RNG.
//!
//! ## Example
//!
//! ```
//! use slade_lp::simplex::{LinearProgram, Constraint, Relation, LpOutcome};
//!
//! // minimize x + 2y  subject to  x + y >= 2,  y >= 0.5
//! let lp = LinearProgram::minimize(vec![1.0, 2.0])
//!     .with(Constraint::new(vec![1.0, 1.0], Relation::Ge, 2.0))
//!     .with(Constraint::new(vec![0.0, 1.0], Relation::Ge, 0.5));
//! match lp.solve().unwrap() {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - 2.5).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

pub mod covering;
pub mod dense;
pub mod simplex;

pub use covering::{CoveringProblem, CoveringSolution, SparseColumn};
pub use simplex::{Constraint, LinearProgram, LpError, LpOutcome, LpSolution, Relation};

/// Numerical tolerance shared by the solvers in this crate.
///
/// Chosen so that textbook-sized examples with exact rational answers are
/// recognized as optimal while staying far above accumulated f64 pivot noise.
pub const EPSILON: f64 = 1e-9;
