//! Sparse covering programs: `min c·y  s.t.  U y >= v,  y >= 0` (optionally
//! integral `y`).
//!
//! This is the exact shape the SLADE baseline produces (§4.3 of the paper):
//! one row per atomic task with demand `v_i = -ln(1 - t_i)`, one column per
//! *combination instance* (a concrete bin filled with concrete tasks), entry
//! `u_ij = -ln(1 - r_l)` when task `i` is in instance `j`, and unbounded
//! integer multiplicities (a bin instance may be re-posted to more workers).
//!
//! Three solvers are provided:
//!
//! * [`CoveringProblem::greedy_multicover`] — integral lazy greedy
//!   (the classic `H_n`-approximate set-multicover algorithm, implemented with
//!   lazy evaluation so it scales to hundreds of thousands of rows);
//! * [`CoveringProblem::fractional_greedy`] — fractional greedy with
//!   saturation-sized steps; every step saturates at least one row, so it
//!   terminates in at most `n_rows` steps and yields an `ln n`-approximate
//!   fractional solution usable as an LP surrogate at scale;
//! * [`CoveringProblem::randomized_rounding`] — Vazirani-style randomized
//!   rounding of a fractional solution (scale by an inflation factor, round
//!   randomly, then greedily repair any uncovered demand).
//!
//! For small instances, [`CoveringProblem::to_linear_program`] exports the
//! exact LP relaxation for the [`crate::simplex`] solver.

use crate::simplex::{Constraint, LinearProgram, Relation};
use crate::EPSILON;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A column of a covering program: a cost plus sparse `(row, weight)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseColumn {
    /// Cost of using this column once.
    pub cost: f64,
    /// `(row index, contribution weight)` pairs; rows must be in range and
    /// weights strictly positive.
    pub entries: Vec<(u32, f64)>,
}

impl SparseColumn {
    /// Creates a column.
    pub fn new(cost: f64, entries: Vec<(u32, f64)>) -> Self {
        SparseColumn { cost, entries }
    }
}

/// Errors from building or solving covering programs.
#[derive(Debug, Clone, PartialEq)]
pub enum CoveringError {
    /// A column references a row index `>= n_rows`.
    RowOutOfRange {
        /// Offending column.
        column: usize,
        /// Offending row index.
        row: u32,
    },
    /// A demand, cost, or weight was non-finite or non-positive where
    /// positivity is required.
    InvalidValue(&'static str),
    /// No combination of columns can satisfy every demand.
    Infeasible,
    /// A solution vector had the wrong length.
    SolutionLength {
        /// Provided length.
        got: usize,
        /// Expected length (number of columns).
        expected: usize,
    },
}

impl fmt::Display for CoveringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoveringError::RowOutOfRange { column, row } => {
                write!(f, "column {column} references out-of-range row {row}")
            }
            CoveringError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            CoveringError::Infeasible => write!(f, "covering program is infeasible"),
            CoveringError::SolutionLength { got, expected } => {
                write!(f, "solution has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CoveringError {}

/// A (fractional or integral) solution to a covering program.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveringSolution {
    /// Multiplicity per column (integral solvers return whole numbers).
    pub counts: Vec<f64>,
    /// Total cost `c · counts`.
    pub cost: f64,
}

/// A sparse covering program.
#[derive(Debug, Clone)]
pub struct CoveringProblem {
    demands: Vec<f64>,
    columns: Vec<SparseColumn>,
}

impl CoveringProblem {
    /// Builds and validates a covering program.
    ///
    /// Demands must be strictly positive and finite; weights strictly
    /// positive; costs nonnegative; row indices in range.
    pub fn new(demands: Vec<f64>, columns: Vec<SparseColumn>) -> Result<Self, CoveringError> {
        if !demands.iter().all(|v| v.is_finite() && *v > 0.0) {
            return Err(CoveringError::InvalidValue(
                "demands must be positive and finite",
            ));
        }
        let n = demands.len() as u32;
        for (j, col) in columns.iter().enumerate() {
            if !col.cost.is_finite() || col.cost < 0.0 {
                return Err(CoveringError::InvalidValue(
                    "column costs must be nonnegative and finite",
                ));
            }
            for &(row, w) in &col.entries {
                if row >= n {
                    return Err(CoveringError::RowOutOfRange { column: j, row });
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(CoveringError::InvalidValue(
                        "column weights must be positive and finite",
                    ));
                }
            }
        }
        Ok(CoveringProblem { demands, columns })
    }

    /// Number of rows (constraints).
    pub fn n_rows(&self) -> usize {
        self.demands.len()
    }

    /// Number of columns (variables).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The demand vector.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// The columns.
    pub fn columns(&self) -> &[SparseColumn] {
        &self.columns
    }

    /// Residual demand per row under multiplicities `counts`.
    pub fn residuals(&self, counts: &[f64]) -> Result<Vec<f64>, CoveringError> {
        if counts.len() != self.columns.len() {
            return Err(CoveringError::SolutionLength {
                got: counts.len(),
                expected: self.columns.len(),
            });
        }
        let mut res = self.demands.clone();
        for (col, &y) in self.columns.iter().zip(counts) {
            if y > 0.0 {
                for &(row, w) in &col.entries {
                    res[row as usize] -= w * y;
                }
            }
        }
        for r in &mut res {
            if *r < 0.0 {
                *r = 0.0;
            }
        }
        Ok(res)
    }

    /// Whether `counts` satisfies every demand (within tolerance).
    pub fn is_satisfied(&self, counts: &[f64]) -> Result<bool, CoveringError> {
        Ok(self
            .residuals(counts)?
            .iter()
            .all(|&r| r <= 1e-7 * (1.0 + r.abs())))
    }

    /// Total cost of `counts`.
    pub fn cost_of(&self, counts: &[f64]) -> f64 {
        self.columns
            .iter()
            .zip(counts)
            .map(|(c, &y)| c.cost * y)
            .sum()
    }

    /// Exports the LP relaxation for the dense simplex solver.
    ///
    /// Only sensible for small instances (the tableau is dense).
    pub fn to_linear_program(&self) -> LinearProgram {
        let costs: Vec<f64> = self.columns.iter().map(|c| c.cost).collect();
        let mut lp = LinearProgram::minimize(costs);
        for (i, &v) in self.demands.iter().enumerate() {
            let mut coeffs = vec![0.0; self.columns.len()];
            for (j, col) in self.columns.iter().enumerate() {
                for &(row, w) in &col.entries {
                    if row as usize == i {
                        coeffs[j] += w;
                    }
                }
            }
            lp.push(Constraint::new(coeffs, Relation::Ge, v));
        }
        lp
    }

    /// Integral lazy-greedy set-multicover.
    ///
    /// Repeatedly applies the column with the best cost-effectiveness ratio
    /// `cost_j / Σ_i min(u_ij, residual_i)`. Effectiveness is monotone
    /// non-increasing as residuals shrink, so stale heap keys are lower
    /// bounds on the true ratio and lazy re-evaluation is sound.
    pub fn greedy_multicover(&self) -> Result<CoveringSolution, CoveringError> {
        let mut residual = self.demands.clone();
        let mut counts = vec![0.0; self.columns.len()];
        self.lazy_greedy_into(&mut residual, &mut counts)?;
        let cost = self.cost_of(&counts);
        Ok(CoveringSolution { counts, cost })
    }

    /// Fractional greedy covering.
    ///
    /// At each step the best-ratio column is applied with the largest step
    /// that does not overshoot any of its unsaturated rows, so every step
    /// saturates at least one row and the loop runs at most `n_rows` times.
    /// The result is a feasible fractional solution within an `ln n` factor
    /// of the LP optimum — the scalable stand-in for the exact LP relaxation
    /// in the SLADE baseline.
    pub fn fractional_greedy(&self) -> Result<CoveringSolution, CoveringError> {
        let mut residual = self.demands.clone();
        let mut counts = vec![0.0; self.columns.len()];
        let mut heap = self.build_heap(&residual);
        let mut stamps = vec![0u32; self.columns.len()];

        while residual.iter().any(|&r| r > EPSILON) {
            let j = self.pop_best(&mut heap, &mut stamps, &residual)?;
            // Largest step that keeps every covered row's contribution useful:
            // stop when the first currently-unsaturated covered row saturates.
            let mut step = f64::INFINITY;
            for &(row, w) in &self.columns[j].entries {
                let r = residual[row as usize];
                if r > EPSILON {
                    step = step.min(r / w);
                }
            }
            debug_assert!(step.is_finite() && step > 0.0);
            counts[j] += step;
            for &(row, w) in &self.columns[j].entries {
                let r = &mut residual[row as usize];
                *r = (*r - w * step).max(0.0);
            }
            // The column may still be useful later; reinsert with fresh key.
            if let Some(key) = self.ratio(j, &residual) {
                stamps[j] += 1;
                heap.push(HeapEntry {
                    ratio: key,
                    col: j,
                    stamp: stamps[j],
                });
            }
        }
        let cost = self.cost_of(&counts);
        Ok(CoveringSolution { counts, cost })
    }

    /// Randomized rounding with greedy repair (Vazirani, *Approximation
    /// Algorithms*, covering chapters).
    ///
    /// Each fractional `y_j` is inflated by `inflation`, split into an
    /// integral floor plus a Bernoulli trial on the fractional remainder, and
    /// any residual demand is repaired with the integral lazy greedy.
    ///
    /// `inflation` is typically `O(ln n_rows)`; [`suggested_inflation`] gives
    /// the standard choice.
    pub fn randomized_rounding<R: Rng + ?Sized>(
        &self,
        fractional: &[f64],
        inflation: f64,
        rng: &mut R,
    ) -> Result<CoveringSolution, CoveringError> {
        if fractional.len() != self.columns.len() {
            return Err(CoveringError::SolutionLength {
                got: fractional.len(),
                expected: self.columns.len(),
            });
        }
        if !inflation.is_finite() || inflation < 1.0 {
            return Err(CoveringError::InvalidValue("inflation must be >= 1"));
        }
        let mut counts: Vec<f64> = fractional
            .iter()
            .map(|&y| {
                let scaled = y * inflation;
                let floor = scaled.floor();
                let frac = scaled - floor;
                let extra = if frac > 0.0 && rng.random::<f64>() < frac {
                    1.0
                } else {
                    0.0
                };
                floor + extra
            })
            .collect();
        let mut residual = self.residuals(&counts)?;
        self.lazy_greedy_into(&mut residual, &mut counts)?;
        let cost = self.cost_of(&counts);
        Ok(CoveringSolution { counts, cost })
    }

    /// Core lazy-greedy loop adding *integral* multiplicities to `counts`
    /// until `residual` is fully covered.
    fn lazy_greedy_into(
        &self,
        residual: &mut [f64],
        counts: &mut [f64],
    ) -> Result<(), CoveringError> {
        if residual.iter().all(|&r| r <= EPSILON) {
            return Ok(());
        }
        let mut heap = self.build_heap(residual);
        let mut stamps = vec![0u32; self.columns.len()];
        while residual.iter().any(|&r| r > EPSILON) {
            let j = self.pop_best(&mut heap, &mut stamps, residual)?;
            counts[j] += 1.0;
            for &(row, w) in &self.columns[j].entries {
                let r = &mut residual[row as usize];
                *r = (*r - w).max(0.0);
            }
            if let Some(key) = self.ratio(j, residual) {
                stamps[j] += 1;
                heap.push(HeapEntry {
                    ratio: key,
                    col: j,
                    stamp: stamps[j],
                });
            }
        }
        Ok(())
    }

    /// Cost-effectiveness ratio of column `j` under `residual`; `None` when
    /// the column no longer contributes.
    fn ratio(&self, j: usize, residual: &[f64]) -> Option<f64> {
        let col = &self.columns[j];
        let eff: f64 = col
            .entries
            .iter()
            .map(|&(row, w)| w.min(residual[row as usize]))
            .sum();
        if eff > EPSILON {
            Some(col.cost / eff)
        } else {
            None
        }
    }

    fn build_heap(&self, residual: &[f64]) -> BinaryHeap<HeapEntry> {
        let mut heap = BinaryHeap::with_capacity(self.columns.len());
        for j in 0..self.columns.len() {
            if let Some(ratio) = self.ratio(j, residual) {
                heap.push(HeapEntry {
                    ratio,
                    col: j,
                    stamp: 0,
                });
            }
        }
        heap
    }

    /// Pops the truly-best column under lazy re-evaluation.
    fn pop_best(
        &self,
        heap: &mut BinaryHeap<HeapEntry>,
        stamps: &mut [u32],
        residual: &[f64],
    ) -> Result<usize, CoveringError> {
        while let Some(top) = heap.pop() {
            if top.stamp != stamps[top.col] {
                continue; // superseded entry
            }
            let Some(fresh) = self.ratio(top.col, residual) else {
                continue; // column no longer useful
            };
            if fresh <= top.ratio + EPSILON {
                // Key was (still) accurate enough: ratios only grow, so if the
                // recomputed key does not exceed the stale one the column is
                // still at least as good as everything below it in the heap.
                return Ok(top.col);
            }
            // Ratio degraded; reinsert with the fresh key and keep looking.
            stamps[top.col] += 1;
            heap.push(HeapEntry {
                ratio: fresh,
                col: top.col,
                stamp: stamps[top.col],
            });
        }
        Err(CoveringError::Infeasible)
    }
}

/// Standard inflation factor for randomized rounding: `ln(n) + 2` — enough
/// to make per-row failure probability `O(1/n)` before repair.
pub fn suggested_inflation(n_rows: usize) -> f64 {
    (n_rows.max(2) as f64).ln() + 2.0
}

/// Min-heap entry over f64 ratios (BinaryHeap is a max-heap, so order is
/// reversed). `stamp` invalidates superseded entries.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    ratio: f64,
    col: usize,
    stamp: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ratio == other.ratio && self.col == other.col
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller ratio = "greater" so it pops first. Ties by column
        // index for determinism.
        other
            .ratio
            .partial_cmp(&self.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.col.cmp(&self.col))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpOutcome;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two rows, three columns; column 2 covers both rows cheaply.
    fn small_problem() -> CoveringProblem {
        CoveringProblem::new(
            vec![1.0, 1.0],
            vec![
                SparseColumn::new(1.0, vec![(0, 1.0)]),
                SparseColumn::new(1.0, vec![(1, 1.0)]),
                SparseColumn::new(1.5, vec![(0, 1.0), (1, 1.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn greedy_picks_the_shared_column() {
        let p = small_problem();
        let sol = p.greedy_multicover().unwrap();
        assert!(p.is_satisfied(&sol.counts).unwrap());
        // Shared column ratio 0.75 beats 1.0; one use suffices.
        assert_eq!(sol.counts, vec![0.0, 0.0, 1.0]);
        assert!((sol.cost - 1.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_handles_multicover_demands() {
        // Demand 3 on a single row with unit weights: needs 3 copies.
        let p =
            CoveringProblem::new(vec![3.0], vec![SparseColumn::new(2.0, vec![(0, 1.0)])]).unwrap();
        let sol = p.greedy_multicover().unwrap();
        assert_eq!(sol.counts, vec![3.0]);
        assert!((sol.cost - 6.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_detects_infeasible() {
        let p = CoveringProblem::new(
            vec![1.0, 1.0],
            vec![SparseColumn::new(1.0, vec![(0, 1.0)])], // row 1 uncoverable
        )
        .unwrap();
        assert_eq!(p.greedy_multicover(), Err(CoveringError::Infeasible));
    }

    #[test]
    fn fractional_greedy_is_feasible_and_cheap() {
        let p = small_problem();
        let sol = p.fractional_greedy().unwrap();
        assert!(p.is_satisfied(&sol.counts).unwrap());
        // Fractional optimum here is 1.5 (one unit of shared column).
        assert!(sol.cost <= 2.0 + 1e-9, "cost = {}", sol.cost);
    }

    #[test]
    fn fractional_greedy_takes_saturating_steps() {
        // Demand 2.5 with weight 1: single column should step 2.5 exactly.
        let p =
            CoveringProblem::new(vec![2.5], vec![SparseColumn::new(1.0, vec![(0, 1.0)])]).unwrap();
        let sol = p.fractional_greedy().unwrap();
        assert!((sol.counts[0] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn rounding_is_feasible_and_bounded() {
        let p = small_problem();
        let frac = p.fractional_greedy().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let sol = p
            .randomized_rounding(&frac.counts, suggested_inflation(p.n_rows()), &mut rng)
            .unwrap();
        assert!(p.is_satisfied(&sol.counts).unwrap());
        for &c in &sol.counts {
            assert_eq!(c.fract(), 0.0, "rounded counts must be integral");
        }
    }

    #[test]
    fn rounding_rejects_bad_inflation() {
        let p = small_problem();
        let frac = vec![0.0, 0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            p.randomized_rounding(&frac, 0.5, &mut rng),
            Err(CoveringError::InvalidValue(_))
        ));
    }

    #[test]
    fn lp_relaxation_lower_bounds_greedy() {
        let p = small_problem();
        let lp = p.to_linear_program();
        let LpOutcome::Optimal(lp_sol) = lp.solve().unwrap() else {
            panic!("LP should be feasible and bounded");
        };
        let greedy = p.greedy_multicover().unwrap();
        assert!(lp_sol.objective <= greedy.cost + 1e-9);
        // Known LP optimum: 1.5 via the shared column.
        assert!((lp_sol.objective - 1.5).abs() < 1e-8);
    }

    #[test]
    fn residuals_clamp_at_zero() {
        let p = small_problem();
        let res = p.residuals(&[5.0, 0.0, 0.0]).unwrap();
        assert_eq!(res, vec![0.0, 1.0]);
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(CoveringProblem::new(vec![0.0], vec![]).is_err());
        assert!(CoveringProblem::new(vec![1.0], vec![SparseColumn::new(-1.0, vec![])]).is_err());
        assert!(
            CoveringProblem::new(vec![1.0], vec![SparseColumn::new(1.0, vec![(3, 1.0)])]).is_err()
        );
        assert!(
            CoveringProblem::new(vec![1.0], vec![SparseColumn::new(1.0, vec![(0, 0.0)])]).is_err()
        );
    }

    #[test]
    fn solution_length_mismatch_is_reported() {
        let p = small_problem();
        assert!(matches!(
            p.residuals(&[1.0]),
            Err(CoveringError::SolutionLength {
                got: 1,
                expected: 3
            })
        ));
    }

    #[test]
    fn larger_randomized_instance_all_solvers_agree_on_feasibility() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(42);
        let n_rows = 60usize;
        let demands: Vec<f64> = (0..n_rows).map(|_| rng.random_range(0.5..3.0)).collect();
        let mut columns = Vec::new();
        // Singleton columns guarantee feasibility.
        for i in 0..n_rows {
            columns.push(SparseColumn::new(
                rng.random_range(0.5..2.0),
                vec![(i as u32, rng.random_range(0.5..1.5))],
            ));
        }
        // Random wide columns.
        for _ in 0..40 {
            let k = rng.random_range(2..6);
            let mut rows: Vec<u32> = (0..k).map(|_| rng.random_range(0..n_rows as u32)).collect();
            rows.sort_unstable();
            rows.dedup();
            let entries = rows
                .into_iter()
                .map(|r| (r, rng.random_range(0.5..1.5)))
                .collect();
            columns.push(SparseColumn::new(rng.random_range(0.5..3.0), entries));
        }
        let p = CoveringProblem::new(demands, columns).unwrap();
        let greedy = p.greedy_multicover().unwrap();
        assert!(p.is_satisfied(&greedy.counts).unwrap());
        let frac = p.fractional_greedy().unwrap();
        assert!(p.is_satisfied(&frac.counts).unwrap());
        let rounded = p
            .randomized_rounding(&frac.counts, suggested_inflation(n_rows), &mut rng)
            .unwrap();
        assert!(p.is_satisfied(&rounded.counts).unwrap());
        // Fractional solution should not cost more than the integral greedy
        // by a large margin (both are ln-approximations of the same LP).
        assert!(frac.cost <= greedy.cost * 2.0 + 1.0);
    }

    #[test]
    fn suggested_inflation_grows_with_rows() {
        assert!(suggested_inflation(10) < suggested_inflation(10_000));
        assert!(suggested_inflation(0) >= 2.0);
    }
}
