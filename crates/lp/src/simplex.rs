//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! The solver handles the general form
//!
//! ```text
//! minimize (or maximize)  c · x
//! subject to              a_i · x  {<=, >=, =}  b_i     for each constraint i
//!                         x >= 0
//! ```
//!
//! Internally every constraint is normalized to a nonnegative right-hand side,
//! slack/surplus variables are added, and artificial variables provide the
//! initial basis for phase 1. Bland's rule (smallest-index entering and
//! leaving variable) guarantees termination even on degenerate instances, at
//! the cost of some speed — acceptable for the instance sizes SLADE's baseline
//! feeds it (a few hundred rows/columns; larger instances route through the
//! multiplicative-weights covering solver instead).

use crate::dense::DenseMatrix;
use crate::EPSILON;
use std::fmt;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a · x <= b`
    Le,
    /// `a · x >= b`
    Ge,
    /// `a · x == b`
    Eq,
}

/// One linear constraint `coeffs · x  relation  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients over the structural variables.
    pub coeffs: Vec<f64>,
    /// The comparison relating `coeffs · x` to `rhs`.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }
}

/// A linear program over nonnegative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    maximize: bool,
}

/// Errors raised while building or solving an LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A constraint's coefficient vector length differs from the objective's.
    DimensionMismatch {
        /// Index of the offending constraint.
        constraint: usize,
        /// Length of that constraint's coefficient vector.
        got: usize,
        /// Expected length (number of structural variables).
        expected: usize,
    },
    /// A coefficient, bound, or cost was NaN or infinite.
    NotFinite,
    /// The pivot loop exceeded its iteration budget (should be unreachable
    /// with Bland's rule; kept as a defensive guard).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch {
                constraint,
                got,
                expected,
            } => write!(
                f,
                "constraint {constraint} has {got} coefficients, expected {expected}"
            ),
            LpError::NotFinite => write!(f, "LP contains NaN or infinite data"),
            LpError::IterationLimit => write!(f, "simplex exceeded its iteration budget"),
        }
    }
}

impl std::error::Error for LpError {}

/// Outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// An optimal primal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Values of the structural variables.
    pub variables: Vec<f64>,
    /// Objective value at `variables` (in the original min/max sense).
    pub objective: f64,
}

impl LinearProgram {
    /// Starts a minimization problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            maximize: false,
        }
    }

    /// Starts a maximization problem with the given objective coefficients.
    pub fn maximize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            maximize: true,
        }
    }

    /// Adds a constraint (builder style).
    #[must_use]
    pub fn with(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Adds a constraint in place.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of structural variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the program with two-phase simplex.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.validate()?;
        Solver::new(self).run()
    }

    fn validate(&self) -> Result<(), LpError> {
        let n = self.objective.len();
        if !self.objective.iter().all(|v| v.is_finite()) {
            return Err(LpError::NotFinite);
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != n {
                return Err(LpError::DimensionMismatch {
                    constraint: i,
                    got: c.coeffs.len(),
                    expected: n,
                });
            }
            if !c.rhs.is_finite() || !c.coeffs.iter().all(|v| v.is_finite()) {
                return Err(LpError::NotFinite);
            }
        }
        Ok(())
    }
}

/// Internal tableau-based solver state.
struct Solver {
    /// Tableau: one row per constraint; columns = all variables + rhs.
    tab: DenseMatrix,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Reduced-cost row (length = total columns incl. rhs slot for objective).
    obj: Vec<f64>,
    /// Structural variable count.
    n_struct: usize,
    /// First artificial column index (artificials occupy a contiguous tail).
    art_start: usize,
    /// Total variable count (structural + slack/surplus + artificial).
    n_total: usize,
    /// True objective costs per tableau column (minimization sense).
    costs: Vec<f64>,
    /// Sign to convert internal minimization back to the user's sense.
    sense: f64,
}

impl Solver {
    fn new(lp: &LinearProgram) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_variables();

        // Count auxiliary variables: one slack/surplus per inequality, one
        // artificial per Ge/Eq row (after rhs normalization).
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
        for c in &lp.constraints {
            let (coeffs, rel, rhs) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (c.coeffs.iter().map(|v| -v).collect(), flipped, -c.rhs)
            } else {
                (c.coeffs.clone(), c.relation, c.rhs)
            };
            rows.push((coeffs, rel, rhs));
        }

        let n_slack = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
            .count();

        let slack_start = n;
        let art_start = n + n_slack;
        let n_total = n + n_slack + n_art;
        let rhs_col = n_total;

        let mut tab = DenseMatrix::zeros(m, n_total + 1);
        let mut basis = vec![0usize; m];
        let mut next_slack = slack_start;
        let mut next_art = art_start;

        for (i, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            for (j, &v) in coeffs.iter().enumerate() {
                tab.set(i, j, v);
            }
            tab.set(i, rhs_col, *rhs);
            match rel {
                Relation::Le => {
                    tab.set(i, next_slack, 1.0);
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    tab.set(i, next_slack, -1.0);
                    next_slack += 1;
                    tab.set(i, next_art, 1.0);
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    tab.set(i, next_art, 1.0);
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        // Internal costs are always minimization; flip sign for maximize.
        let sense = if lp.maximize { -1.0 } else { 1.0 };
        let mut costs = vec![0.0; n_total];
        for (j, &c) in lp.objective.iter().enumerate() {
            costs[j] = sense * c;
        }

        Solver {
            tab,
            basis,
            obj: vec![0.0; n_total + 1],
            n_struct: n,
            art_start,
            n_total,
            costs,
            sense,
        }
    }

    fn run(mut self) -> Result<LpOutcome, LpError> {
        // ---- Phase 1: minimize the sum of artificials. ----
        if self.art_start < self.n_total {
            let phase1: Vec<f64> = (0..self.n_total)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            self.load_objective(&phase1);
            match self.pivot_loop(&phase1, /*ban_artificials=*/ false)? {
                PivotResult::Optimal => {}
                PivotResult::Unbounded => {
                    // Phase-1 objective is bounded below by 0; unbounded here
                    // would indicate a tableau bug.
                    unreachable!("phase-1 objective cannot be unbounded");
                }
            }
            let phase1_value = self.objective_value(&phase1);
            if phase1_value > 1e-7 {
                return Ok(LpOutcome::Infeasible);
            }
            self.evict_artificials();
        }

        // ---- Phase 2: minimize the true costs, artificials banned. ----
        let costs = self.costs.clone();
        self.load_objective(&costs);
        match self.pivot_loop(&costs, /*ban_artificials=*/ true)? {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => return Ok(LpOutcome::Unbounded),
        }

        let mut variables = vec![0.0; self.n_struct];
        let rhs_col = self.n_total;
        for (row, &bv) in self.basis.iter().enumerate() {
            if bv < self.n_struct {
                variables[bv] = self.tab.get(row, rhs_col).max(0.0);
            }
        }
        let objective = self.sense * self.objective_value(&costs);
        Ok(LpOutcome::Optimal(LpSolution {
            variables,
            objective,
        }))
    }

    /// Recomputes the reduced-cost row `r_j = c_j - c_B B^{-1} A_j` for the
    /// current tableau (which stores `B^{-1} A`).
    fn load_objective(&mut self, costs: &[f64]) {
        let rhs_col = self.n_total;
        self.obj[..self.n_total].copy_from_slice(costs);
        self.obj[self.n_total] = 0.0;
        for (row, &bv) in self.basis.iter().enumerate() {
            let cb = costs[bv];
            if cb != 0.0 {
                for j in 0..=rhs_col {
                    self.obj[j] -= cb * self.tab.get(row, j);
                }
            }
        }
    }

    /// Current objective value `c_B B^{-1} b`.
    fn objective_value(&self, costs: &[f64]) -> f64 {
        let rhs_col = self.n_total;
        self.basis
            .iter()
            .enumerate()
            .map(|(row, &bv)| costs[bv] * self.tab.get(row, rhs_col))
            .sum()
    }

    /// Runs Bland-rule pivots until optimal or unbounded.
    fn pivot_loop(&mut self, costs: &[f64], ban_artificials: bool) -> Result<PivotResult, LpError> {
        let rhs_col = self.n_total;
        let col_limit = if ban_artificials {
            self.art_start
        } else {
            self.n_total
        };
        // Bland's rule terminates in at most C(n_total, m) pivots; the budget
        // below is a defensive guard orders of magnitude past practical runs.
        let budget = 50_000usize.saturating_add(200 * (self.n_total + self.basis.len()));
        for _ in 0..budget {
            // Entering variable: smallest index with negative reduced cost.
            let entering = (0..col_limit).find(|&j| self.obj[j] < -EPSILON);
            let Some(enter) = entering else {
                return Ok(PivotResult::Optimal);
            };
            // Leaving row: minimum ratio, ties by smallest basic index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..self.basis.len() {
                let a = self.tab.get(row, enter);
                if a > EPSILON {
                    let ratio = self.tab.get(row, rhs_col) / a;
                    let better = ratio < best_ratio - EPSILON
                        || (ratio < best_ratio + EPSILON
                            && leave.is_some_and(|l| self.basis[row] < self.basis[l]));
                    if better || leave.is_none() {
                        best_ratio = ratio;
                        leave = Some(row);
                    }
                }
            }
            let Some(leave) = leave else {
                return Ok(PivotResult::Unbounded);
            };
            self.pivot(leave, enter);
            // Keep the reduced-cost row in sync incrementally.
            let factor = self.obj[enter];
            if factor != 0.0 {
                for j in 0..=rhs_col {
                    self.obj[j] -= factor * self.tab.get(leave, j);
                }
            }
        }
        // Fall back to a full recompute once, then give up.
        self.load_objective(costs);
        if (0..col_limit).all(|j| self.obj[j] >= -EPSILON) {
            return Ok(PivotResult::Optimal);
        }
        Err(LpError::IterationLimit)
    }

    /// Gaussian pivot: make column `enter` the unit vector of row `leave`.
    fn pivot(&mut self, leave: usize, enter: usize) {
        let pivot_val = self.tab.get(leave, enter);
        debug_assert!(pivot_val.abs() > EPSILON, "pivot on (near-)zero element");
        self.tab.scale_row(leave, 1.0 / pivot_val);
        for row in 0..self.basis.len() {
            if row != leave {
                let factor = self.tab.get(row, enter);
                self.tab.axpy_rows(leave, row, factor);
            }
        }
        self.basis[leave] = enter;
    }

    /// After phase 1, pivots basic artificial variables out of the basis
    /// whenever possible; rows where that is impossible are redundant (the
    /// artificial sits at value zero and every real coefficient is zero), so
    /// they are left in place — they can never pivot again because the
    /// artificial columns are banned in phase 2.
    fn evict_artificials(&mut self) {
        for row in 0..self.basis.len() {
            if self.basis[row] >= self.art_start {
                let enter = (0..self.art_start).find(|&j| self.tab.get(row, j).abs() > EPSILON);
                if let Some(enter) = enter {
                    self.pivot(row, enter);
                }
            }
        }
    }
}

enum PivotResult {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_opt(lp: &LinearProgram) -> LpSolution {
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  z = 36
        let lp = LinearProgram::maximize(vec![3.0, 5.0])
            .with(Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0))
            .with(Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0))
            .with(Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 36.0).abs() < 1e-8);
        assert!((sol.variables[0] - 2.0).abs() < 1e-8);
        assert!((sol.variables[1] - 6.0).abs() < 1e-8);
    }

    #[test]
    fn covering_minimization() {
        // min x + 2y s.t. x + y >= 2, y >= 0.5  =>  x=1.5, y=0.5, z=2.5
        let lp = LinearProgram::minimize(vec![1.0, 2.0])
            .with(Constraint::new(vec![1.0, 1.0], Relation::Ge, 2.0))
            .with(Constraint::new(vec![0.0, 1.0], Relation::Ge, 0.5));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 2.5).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1  =>  x=2, y=1, z=3
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .with(Constraint::new(vec![1.0, 2.0], Relation::Eq, 4.0))
            .with(Constraint::new(vec![1.0, -1.0], Relation::Eq, 1.0));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 3.0).abs() < 1e-8);
        assert!((sol.variables[0] - 2.0).abs() < 1e-8);
        assert!((sol.variables[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x >= 3 written as -x <= -3.
        let lp = LinearProgram::minimize(vec![1.0]).with(Constraint::new(
            vec![-1.0],
            Relation::Le,
            -3.0,
        ));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let lp = LinearProgram::minimize(vec![1.0])
            .with(Constraint::new(vec![1.0], Relation::Le, 1.0))
            .with(Constraint::new(vec![1.0], Relation::Ge, 2.0));
        assert_eq!(lp.solve().unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // max x with only x >= 1.
        let lp =
            LinearProgram::maximize(vec![1.0]).with(Constraint::new(vec![1.0], Relation::Ge, 1.0));
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_instance_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let lp = LinearProgram::maximize(vec![1.0, 1.0])
            .with(Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0))
            .with(Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0))
            .with(Constraint::new(vec![0.0, 1.0], Relation::Le, 1.0))
            .with(Constraint::new(vec![1.0, 1.0], Relation::Le, 2.0));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // Same equation twice: phase 1 leaves a zero-value artificial basic.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .with(Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0))
            .with(Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0]).with(Constraint::new(
            vec![1.0],
            Relation::Ge,
            1.0,
        ));
        assert!(matches!(
            lp.solve(),
            Err(LpError::DimensionMismatch {
                constraint: 0,
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn rejects_nan() {
        let lp = LinearProgram::minimize(vec![f64::NAN]);
        assert_eq!(lp.solve(), Err(LpError::NotFinite));
    }

    #[test]
    fn zero_constraint_problem_is_trivially_optimal() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0]);
        let sol = solve_opt(&lp);
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.variables, vec![0.0, 0.0]);
    }

    #[test]
    fn mixed_relations() {
        // min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3 => x=3, y=1, z=9
        let lp = LinearProgram::minimize(vec![2.0, 3.0])
            .with(Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0))
            .with(Constraint::new(vec![1.0, 0.0], Relation::Le, 3.0))
            .with(Constraint::new(vec![0.0, 1.0], Relation::Le, 3.0));
        let sol = solve_opt(&lp);
        assert!((sol.objective - 9.0).abs() < 1e-8);
    }

    #[test]
    fn covering_lp_lower_bound_matches_hand_computation() {
        // SLADE-shaped covering LP: two tasks, bins contributing weights.
        // min 0.1 y1 + 0.18 y2 (y1 covers task1 w=2.302, y2 covers both w=1.897)
        // s.t. task1: 2.302 y1 + 1.897 y2 >= 2.996; task2: 1.897 y2 >= 2.996
        let lp = LinearProgram::minimize(vec![0.1, 0.18])
            .with(Constraint::new(vec![2.302, 1.897], Relation::Ge, 2.996))
            .with(Constraint::new(vec![0.0, 1.897], Relation::Ge, 2.996));
        let sol = solve_opt(&lp);
        // y2 = 2.996/1.897 = 1.5793..., task1 already oversatisfied, y1 = 0.
        assert!(sol.variables[0].abs() < 1e-8);
        assert!((sol.variables[1] - 2.996 / 1.897).abs() < 1e-8);
    }

    #[test]
    fn larger_random_like_instance_is_consistent_with_feasibility() {
        // 6 vars, 5 constraints with a known feasible point; check optimality
        // by verifying the reported solution satisfies all constraints and
        // costs no more than that feasible point.
        let lp = LinearProgram::minimize(vec![1.0, 2.0, 1.5, 3.0, 0.5, 2.5])
            .with(Constraint::new(
                vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
                Relation::Ge,
                3.0,
            ))
            .with(Constraint::new(
                vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
                Relation::Ge,
                2.0,
            ))
            .with(Constraint::new(
                vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
                Relation::Ge,
                1.0,
            ))
            .with(Constraint::new(
                vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0],
                Relation::Ge,
                1.0,
            ))
            .with(Constraint::new(
                vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0],
                Relation::Ge,
                1.0,
            ));
        let sol = solve_opt(&lp);
        // Feasible reference point: x = (1, 1, 1, 0, 2, 1) costing 8.0.
        assert!(sol.objective <= 8.0 + 1e-8);
        // Verify feasibility of the returned point.
        let x = &sol.variables;
        assert!(x[0] + x[2] + x[4] >= 3.0 - 1e-7);
        assert!(x[1] + x[3] + x[5] >= 2.0 - 1e-7);
        assert!(x[0] + x[1] >= 1.0 - 1e-7);
        assert!(x[2] + x[3] >= 1.0 - 1e-7);
        assert!(x[4] + x[5] >= 1.0 - 1e-7);
    }
}
