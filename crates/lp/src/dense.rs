//! Minimal dense row-major matrix used by the simplex tableau.
//!
//! This is deliberately small: the simplex solver needs contiguous rows for
//! cache-friendly pivoting and nothing else. Values are `f64`; the matrix is
//! not generic because the only consumer is the LP solver.

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a nested vector; every inner vector must have the
    /// same length.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in &rows {
            assert_eq!(row.len(), ncols, "ragged rows in DenseMatrix::from_rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a whole row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow a whole row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Borrows two distinct rows, one immutably and one mutably.
    ///
    /// Used by the pivot kernel: `target -= factor * pivot_row` without
    /// cloning the pivot row.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "two_rows_mut requires distinct rows");
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..a * cols + cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            let blo = &mut lo[b * cols..b * cols + cols];
            (&mut hi[..cols], blo)
        }
    }

    /// `row[b] -= factor * row[a]` as a fused kernel.
    pub fn axpy_rows(&mut self, a: usize, b: usize, factor: f64) {
        if factor == 0.0 {
            return;
        }
        let (src, dst) = self.two_rows_mut(a, b);
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d -= factor * *s;
        }
    }

    /// Scales row `r` by `factor`.
    pub fn scale_row(&mut self, r: usize, factor: f64) {
        for v in self.row_mut(r) {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn set_then_get() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(1, 1, 7.5);
        assert_eq!(m.get(1, 1), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn axpy_subtracts_scaled_row() {
        let mut m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![10.0, 20.0]]);
        m.axpy_rows(0, 1, 2.0);
        assert_eq!(m.row(1), &[8.0, 16.0]);
        // factor 0 is a no-op
        m.axpy_rows(0, 1, 0.0);
        assert_eq!(m.row(1), &[8.0, 16.0]);
    }

    #[test]
    fn axpy_works_in_both_row_orders() {
        let mut m = DenseMatrix::from_rows(vec![vec![1.0, 1.0], vec![4.0, 5.0]]);
        m.axpy_rows(1, 0, 1.0);
        assert_eq!(m.row(0), &[-3.0, -4.0]);
    }

    #[test]
    fn scale_row_multiplies_in_place() {
        let mut m = DenseMatrix::from_rows(vec![vec![2.0, -4.0]]);
        m.scale_row(0, 0.5);
        assert_eq!(m.row(0), &[1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_rows_mut_rejects_same_row() {
        let mut m = DenseMatrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }
}
