//! The workspace's one JSON implementation: parser **and** serializer.
//!
//! The offline build environment has no serde; this crate implements the
//! full JSON value grammar (RFC 8259) — objects, arrays, strings with
//! escapes, numbers, booleans, null — with byte positions in error
//! messages, plus the matching compact serializer ([`Json`]'s [`Display`]).
//! The CLI's `batch` subcommand, the `slade-server` wire protocol, and the
//! engine's durable plan codec all parse and print through it, so none of
//! them can drift apart. (It started life as `slade_server::json` and was
//! lifted into its own crate when the engine's journal codec needed the
//! same serializer without a dependency on the server.)
//!
//! Numbers are `f64`, which is exact for every integer a request can
//! legitimately carry (task counts fit `u32`, seeds of interest fit 2⁵³;
//! full-width `u64` values such as knob words travel as hex strings, not
//! numbers). Serialization uses Rust's shortest-round-trip float
//! formatting, so a value survives `parse(format!("{json}"))`
//! **bit-identically** — the property the server's byte-identical plan
//! contract and the journal's replay contract both rest on.
//!
//! [`Display`]: std::fmt::Display

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (requests are tiny,
/// so lookup is a linear scan).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if the value is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// A number value.
    ///
    /// # Panics
    /// Panics on non-finite input — the serializer has no representation
    /// for NaN or infinity (RFC 8259 has none either), and the parser on
    /// the other end rejects them, so constructing one is always a bug.
    pub fn number(x: f64) -> Json {
        assert!(x.is_finite(), "JSON cannot represent {x}");
        Json::Number(x)
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }
}

/// Builds one object member; sugar keeping literal objects readable.
pub fn member(key: &str, value: Json) -> (String, Json) {
    (key.to_string(), value)
}

/// The compact serializer: no whitespace, object members in insertion
/// order, strings through [`escape`], and numbers in Rust's
/// shortest-round-trip decimal form (integers without a trailing `.0`) —
/// so `parse(x.to_string()) == x` bit-for-bit for every finite value.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(x) => {
                debug_assert!(x.is_finite(), "serializing non-finite number {x}");
                // Integers in the f64-exact range print without a fraction;
                // everything else uses Display's shortest form that parses
                // back to the same f64. -0.0 must take the Display branch
                // (printing "-0"): the integer cast would print "0", which
                // parses back as +0.0 and breaks the bit-identity contract.
                let negative_zero = *x == 0.0 && x.is_sign_negative();
                if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 && !negative_zero {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::String(s) => write!(f, "\"{}\"", escape(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{value}", escape(key))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Maximum container nesting depth. The parser recurses per level, so an
/// unbounded `[[[[…` would overflow the thread stack; 128 levels is far
/// beyond any legitimate batch request while keeping recursion trivially
/// safe.
const MAX_DEPTH: usize = 128;

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    /// Runs one container parser a level deeper, enforcing [`MAX_DEPTH`].
    fn nested(&mut self, inner: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // RFC 8259 leaves duplicate-key behavior undefined; silently
            // keeping one value would drop user input, so reject instead
            // (consistent with the batch parser's unknown-field strictness).
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key `{key}`"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!(
                                "invalid escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape `{hex}`"))?;
        self.pos += 4;
        // Surrogate pairs are not supported — the batch request schema is
        // ASCII identifiers and numbers; reject rather than mis-decode.
        char::from_u32(code).ok_or_else(|| format!("unpaired surrogate \\u{hex}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        let number = text
            .parse::<f64>()
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        // `"1e999".parse::<f64>()` happily returns infinity; no batch field
        // means anything at that magnitude, so reject instead of letting an
        // overflow masquerade as a valid value downstream.
        if !number.is_finite() {
            return Err(format!("number `{text}` overflows f64 at byte {start}"));
        }
        Ok(Json::Number(number))
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_batch_request_line() {
        let line = r#"{"algorithm": "opq-based", "tasks": 100, "threshold": 0.95,
                       "bins": [[1, 0.9, 0.1], [3, 0.8, 0.24]], "seed": 7}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("opq-based"));
        assert_eq!(v.get("tasks").unwrap().as_f64(), Some(100.0));
        assert_eq!(v.get("threshold").unwrap().as_f64(), Some(0.95));
        let bins = v.get("bins").unwrap().as_array().unwrap();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[1].as_array().unwrap()[2].as_f64(), Some(0.24));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_scalars_and_structure() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse(" { } ").unwrap(), Json::Object(vec![]));
        assert_eq!(
            parse(r#""a\nbA\"""#).unwrap(),
            Json::String("a\nbA\"".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#"{"a": }"#,
            "\"unterminated",
            r#""\q""#,
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let err = parse(r#"{"tasks": 5, "tasks": 500000}"#).unwrap_err();
        assert!(err.contains("`tasks`"), "{err}");
        // Same key at different nesting levels is fine.
        assert!(parse(r#"{"a": {"a": 1}}"#).is_ok());
    }

    #[test]
    fn overflowing_exponents_are_rejected_not_infinities() {
        for bad in ["1e999", "-1e999", "1e309", "123456789e4000"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("overflows"), "{bad}: {err}");
        }
        // The largest finite magnitudes still parse.
        assert_eq!(parse("1e308").unwrap(), Json::Number(1e308));
        assert_eq!(
            parse("-1.7976931348623157e308").unwrap(),
            Json::Number(f64::MIN)
        );
        // Underflow to zero is a finite value, not an error.
        assert_eq!(parse("1e-999").unwrap(), Json::Number(0.0));
    }

    #[test]
    fn deep_nesting_is_rejected_before_the_stack_gives_out() {
        // 128 levels are fine; 129 are not — and 100k must error, not crash.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        for levels in [MAX_DEPTH + 1, 100_000] {
            let too_deep = format!("{}0{}", "[".repeat(levels), "]".repeat(levels));
            let err = parse(&too_deep).unwrap_err();
            assert!(err.contains("nesting deeper"), "{levels}: {err}");
        }
        // Mixed object/array nesting counts against the same budget.
        let mixed = format!("{}0{}", r#"{"a":["#.repeat(70), "]}".repeat(70));
        assert!(parse(&mixed).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn lone_surrogates_in_strings_are_rejected() {
        for bad in [r#""\ud800""#, r#""\udfff""#, r#""a\ud834b""#] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
        // Non-surrogate BMP escapes still decode.
        assert_eq!(parse(r#""é""#).unwrap(), Json::String("é".into()));
    }

    #[test]
    fn duplicate_keys_across_nesting_levels_are_distinct() {
        // The same key may recur at different depths and in sibling objects;
        // only true duplicates within one object are rejected.
        assert!(parse(r#"{"a": {"a": {"a": 1}}, "b": {"a": 2}}"#).is_ok());
        assert!(parse(r#"[{"a": 1}, {"a": 2}]"#).is_ok());
        let err = parse(r#"{"a": {"b": 1, "b": 2}}"#).unwrap_err();
        assert!(err.contains("`b`"), "{err}");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let encoded = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&encoded).unwrap(), Json::String(nasty.into()));
    }

    #[test]
    fn serializer_is_compact_and_stable() {
        let value = Json::Object(vec![
            member("ok", Json::Bool(true)),
            member("op", Json::string("solve")),
            member("tasks", Json::number(4.0)),
            member("cost", Json::number(0.68)),
            member("none", Json::Null),
            member(
                "bins",
                Json::Array(vec![Json::number(1.0), Json::number(0.9)]),
            ),
            member("we\"ird", Json::string("a\nb")),
        ]);
        assert_eq!(
            value.to_string(),
            "{\"ok\":true,\"op\":\"solve\",\"tasks\":4,\"cost\":0.68,\
             \"none\":null,\"bins\":[1,0.9],\"we\\\"ird\":\"a\\nb\"}"
        );
    }

    #[test]
    fn serialized_values_parse_back_bit_identically() {
        // Shortest-round-trip float printing: the parse of the print is the
        // original value, bit for bit — including awkward decimals, tiny
        // magnitudes, and integers at the edge of f64 exactness.
        let numbers = [
            0.68,
            0.1 + 0.2, // 0.30000000000000004
            1e-300,
            -1.7976931348623157e308,
            9.007_199_254_740_991e15,
            4.0,
            -0.25,
            -0.0, // serializes as "-0", not "0": the sign bit must survive
            f64::from(u32::MAX),
        ];
        for &x in &numbers {
            let printed = Json::number(x).to_string();
            let Json::Number(back) = parse(&printed).unwrap() else {
                panic!("{printed} did not parse as a number");
            };
            assert_eq!(x.to_bits(), back.to_bits(), "{x} round-tripped as {back}");
        }
        // Structures round-trip too (object member order is preserved).
        let doc = r#"{"a":[1,2.5,"x"],"b":{"c":false},"d":null}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.to_string(), doc);
        assert_eq!(parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    #[should_panic(expected = "JSON cannot represent")]
    fn non_finite_numbers_are_rejected_at_construction() {
        let _ = Json::number(f64::NAN);
    }
}
